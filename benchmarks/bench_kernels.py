"""Kernel cost: vectorized NumPy fast paths vs the scalar oracles.

Shape criteria (absolute numbers are machine-dependent, shapes are
not): every vectorized kernel is at least as fast as its scalar twin at
the benchmark sizes, the batched LCS beats the per-ligand vectorized
kernel (one padded DP amortizes the per-call setup), and chunked
scheduler dispatch beats one-task-per-ligand (the per-task bookkeeping
is paid once per chunk).

Run as a script (``python benchmarks/bench_kernels.py``) it delegates to
:func:`repro.kernels.bench.run_kernels_bench` — the same measurement
behind ``python -m repro bench kernels`` — and writes the
``BENCH_kernels.json`` trajectory point.
"""

from __future__ import annotations

from repro import kernels
from repro.drugdesign.ligands import DEFAULT_PROTEIN, generate_ligands
from repro.kernels import lcs as lcs_kernels
from repro.kernels import stencil as stencil_kernels
from repro.kernels.bench import render_point, run_kernels_bench
from repro.stats.bootstrap import bootstrap_ci

_LIGANDS = generate_ligands(120, 7, seed=500)
_SAMPLE = [4.0 + 0.001 * i for i in range(124)]
_ROD = [float((i * 37) % 100) for i in range(512)]


def test_lcs_scalar_baseline(benchmark):
    """Baseline: the per-ligand scalar DP over the Assignment-5 sweep."""
    scores = benchmark(
        lambda: [
            lcs_kernels.lcs_score_python(lig, DEFAULT_PROTEIN)
            for lig in _LIGANDS
        ]
    )
    assert max(scores) >= 1


def test_lcs_batched_kernel(benchmark):
    """The padded batch kernel must reproduce the scalar scores."""
    scores = benchmark(
        lambda: lcs_kernels.lcs_scores_numpy(_LIGANDS, DEFAULT_PROTEIN)
    )
    assert scores == [
        lcs_kernels.lcs_score_python(lig, DEFAULT_PROTEIN) for lig in _LIGANDS
    ]


def test_stencil_scalar_baseline(benchmark):
    out = benchmark(lambda: stencil_kernels.heat_steps_python(_ROD, 0.25, 50))
    assert len(out) == len(_ROD)


def test_stencil_vectorized_kernel(benchmark):
    """The slice kernel must be bit-identical to the per-cell loop."""
    out = benchmark(lambda: stencil_kernels.heat_steps_numpy(_ROD, 0.25, 50))
    assert out == stencil_kernels.heat_steps_python(_ROD, 0.25, 50)


def test_bootstrap_scalar_baseline(benchmark):
    def run():
        with kernels.use_backend("python"):
            return bootstrap_ci(_SAMPLE, "mean", n_resamples=500, seed=3)

    ci = benchmark(run)
    assert ci.low <= ci.estimate <= ci.high


def test_bootstrap_matrix_kernel(benchmark):
    """The (B, n) matrix kernel must give the bit-identical CI."""

    def run():
        with kernels.use_backend("numpy"):
            return bootstrap_ci(_SAMPLE, "mean", n_resamples=500, seed=3)

    ci = benchmark(run)
    with kernels.use_backend("python"):
        oracle = bootstrap_ci(_SAMPLE, "mean", n_resamples=500, seed=3)
    assert (ci.low, ci.estimate, ci.high) == (
        oracle.low, oracle.estimate, oracle.high
    )


def test_bootstrap_median_scalar_baseline(benchmark):
    from repro.stats.descriptive import median

    def run():
        # A callable statistic keeps the loop: one full sort per resample.
        return bootstrap_ci(_SAMPLE, median, n_resamples=500, seed=3)

    ci = benchmark(run)
    assert ci.low <= ci.estimate <= ci.high


def test_bootstrap_median_partition_kernel(benchmark):
    """The partition kernel must give the bit-identical median CI."""
    from repro.stats.descriptive import median

    def run():
        with kernels.use_backend("numpy"):
            return bootstrap_ci(_SAMPLE, "median", n_resamples=500, seed=3)

    ci = benchmark(run)
    oracle = bootstrap_ci(_SAMPLE, median, n_resamples=500, seed=3)
    assert (ci.low, ci.estimate, ci.high) == (
        oracle.low, oracle.estimate, oracle.high
    )


def main(out_path: str = "BENCH_kernels.json", quick: bool = False) -> dict:
    point = run_kernels_bench(quick=quick, out_path=out_path)
    print(render_point(point))
    return point


if __name__ == "__main__":
    main()
