"""Assignment 5's MapReduce examples: throughput + semantics under faults.

Benchmarks the engine on a synthetic corpus across worker counts and with
fault injection; shape criteria: output equals the sequential reference
in every configuration, the combiner cuts shuffle volume, and
re-execution recovers every injected failure.
"""

import random

from repro.mapreduce import (
    MapReduceEngine,
    MapReduceSpec,
    TaskFailure,
    inverted_index_job,
    word_count_job,
)

_WORDS = ("map", "reduce", "shard", "worker", "key", "value", "shuffle", "sort")


def _corpus(n_docs=200, words_per_doc=40, seed=9):
    rng = random.Random(seed)
    return [
        (f"doc{i:04d}", " ".join(rng.choice(_WORDS) for _ in range(words_per_doc)))
        for i in range(n_docs)
    ]


CORPUS = _corpus()
REFERENCE = MapReduceEngine(n_workers=1).run_sequential(word_count_job(), CORPUS)


def test_word_count_throughput(benchmark):
    engine = MapReduceEngine(n_workers=4)
    result = benchmark(engine.run, word_count_job(), CORPUS)
    assert result.output == REFERENCE.output
    total = sum(result.as_dict().values())
    assert total == 200 * 40


def test_word_count_single_worker(benchmark):
    engine = MapReduceEngine(n_workers=1)
    result = benchmark(engine.run, word_count_job(), CORPUS)
    assert result.output == REFERENCE.output


def test_word_count_with_fault_injection(benchmark):
    failures = [TaskFailure("map", i, 0) for i in range(4)] + [
        TaskFailure("reduce", 0, 0)
    ]

    def run():
        return MapReduceEngine(n_workers=4, failures=failures).run(
            word_count_job(), CORPUS
        )

    result = benchmark(run)
    assert result.output == REFERENCE.output
    assert result.retries == 5


def test_combiner_shuffle_reduction(benchmark):
    spec_no_combiner = MapReduceSpec(
        name="wc_nocomb",
        mapper=word_count_job().mapper,
        reducer=word_count_job().reducer,
    )
    engine = MapReduceEngine(n_workers=4)
    with_combiner = engine.run(word_count_job(), CORPUS, n_map_tasks=8)
    without = benchmark(engine.run, spec_no_combiner, CORPUS, 8)
    print()
    print(f"intermediate pairs: combiner={with_combiner.intermediate_pairs} "
          f"vs none={without.intermediate_pairs}")
    assert with_combiner.intermediate_pairs < without.intermediate_pairs / 10
    assert with_combiner.as_dict() == without.as_dict()


def test_inverted_index(benchmark):
    engine = MapReduceEngine(n_workers=4)
    result = benchmark(engine.run, inverted_index_job(), CORPUS[:50])
    index = result.as_dict()
    for word, docs in index.items():
        assert docs == tuple(sorted(set(docs), key=repr))
