"""Robustness of the reproduction: seed sensitivity and reliability.

The tables must not depend on one lucky random seed.  This bench
recalibrates and regenerates the study across several seeds and checks
that the headline shapes hold for every one of them — plus the internal
consistency (Cronbach's alpha) of the generated survey data.
"""

import pytest

from repro.core import PBLStudy
from repro.core.targets import PAPER
from repro.survey import Category, wave_reliability

SEEDS = (2018, 7, 42, 1, 555)


def _headline(seed: int) -> dict:
    result = PBLStudy(seed=seed, execute_programs=False,
                      simulate_teamwork=False).run()
    analysis = result.analysis
    return {
        "emphasis_diff": analysis.ttest_emphasis.mean_difference,
        "growth_diff": analysis.ttest_growth.mean_difference,
        "emphasis_p": analysis.ttest_emphasis.p_value,
        "growth_p": analysis.ttest_growth.p_value,
        "d_emphasis": analysis.cohens_d_emphasis.d,
        "d_growth": analysis.cohens_d_growth.d,
        "min_r": min(c.r for c in analysis.pearson.values()),
        "max_r_err": max(
            abs(analysis.pearson[key].r - target)
            for key, target in PAPER.table4_r.items()
        ),
        "top_growth": result.analysis.growth_ranking["first_half"][0].name,
    }


def test_seed_sensitivity(benchmark):
    headline = benchmark(_headline, SEEDS[0])

    print()
    rows = {SEEDS[0]: headline}
    for seed in SEEDS[1:]:
        rows[seed] = _headline(seed)
    for seed, row in rows.items():
        print(f"  seed {seed}: d_e={row['d_emphasis']:.2f} "
              f"d_g={row['d_growth']:.2f} max|r err|={row['max_r_err']:.3f} "
              f"top growth={row['top_growth']}")

    for seed, row in rows.items():
        # The shapes that constitute the paper's findings, per seed.
        assert row["emphasis_diff"] < 0, seed
        assert row["growth_diff"] < 0, seed
        assert row["emphasis_p"] < 0.05 and row["growth_p"] < 0.05, seed
        assert 0.4 <= row["d_emphasis"] <= 0.65, seed
        assert 0.7 <= row["d_growth"] <= 1.0, seed
        assert row["min_r"] > 0.3, seed
        assert row["max_r_err"] < 0.08, seed
        assert row["top_growth"] == "Teamwork", seed


def test_generated_data_reliability(benchmark, study_result):
    wave = study_result.waves["first_half"]
    alphas = benchmark(wave_reliability, wave, Category.PERSONAL_GROWTH)

    print()
    for element, result in alphas.items():
        print(f"  {element}: {result}")
    assert all(r.alpha > 0.6 for r in alphas.values())
