"""Ablations of the design choices DESIGN.md calls out.

1. loop schedule choice (static block vs cyclic vs dynamic vs guided) on
   balanced and imbalanced work;
2. team-formation criteria on/off (balanced formation vs random);
3. survey-model calibration on/off (uncalibrated knobs miss the paper's
   statistics — evidence the tables are regenerated, not hard-coded);
4. copula correlation attenuation (Likert discretisation shrinks r, which
   is why calibration must overshoot the latent correlation);
5. master-worker vs fork-join and barrier vs reduction (Assignment 4's
   comparison questions) as measured behaviours.
"""

import numpy as np

from repro.cohort import balance_report, form_teams, make_paper_sections, random_teams
from repro.core.targets import PAPER, simulation_targets
from repro.openmp import OpenMP, Reduction, Schedule
from repro.openmp.loops import run_parallel_for
from repro.patternlets import run_barrier_demo, run_master_worker
from repro.rpi import SimulatedPi
from repro.simulation import ModelKnobs, ResponseModel, calibrate
from repro.simulation.model import WAVES


def test_ablation_schedule_choice(benchmark):
    pi = SimulatedPi()
    imbalanced = [float(i) / 10 for i in range(2000)]
    schedules = {
        "static(block)": Schedule.static(),
        "static(chunk=1)": Schedule.static(chunk=1),
        "dynamic(1)": Schedule.dynamic(1),
        "dynamic(8)": Schedule.dynamic(8),
        "guided": Schedule.guided(),
    }

    def sweep():
        return {name: pi.cost_loop(imbalanced, s) for name, s in schedules.items()}

    results = benchmark(sweep)
    print()
    for name, costed in results.items():
        print(f"  {name:16s} {costed.elapsed_us:10.1f} us  "
              f"speedup {costed.speedup:.2f}  imbalance {costed.load_imbalance:.2f}")
    # Block-static is the outlier; all alternatives fix the imbalance.
    worst = results["static(block)"].elapsed_us
    for name in ("static(chunk=1)", "dynamic(1)", "dynamic(8)", "guided"):
        assert results[name].elapsed_us < worst * 0.75, name


def test_ablation_team_formation(benchmark):
    section, _ = make_paper_sections()

    def both():
        return (
            balance_report(form_teams(section.students, 13)),
            balance_report(random_teams(section.students, 13, seed=3)),
        )

    formed, random_ = benchmark(both)
    print()
    print(f"  formed: {formed}")
    print(f"  random: {random_}")
    assert formed["ability_range"] < random_["ability_range"] / 5
    assert formed["solo_female_teams"] == 0.0


def test_ablation_calibration_off(benchmark):
    """Uncalibrated knobs must NOT reproduce Table 4 — the pipeline is not
    hard-coded to the paper's numbers."""
    targets = simulation_targets(PAPER)
    model = ResponseModel(targets.skills, targets.n_students, seed=2018)

    naive = model.observed(ModelKnobs.initial(targets))
    result = benchmark(calibrate, model, targets)
    calibrated = model.observed(result.knobs)

    target_r = np.array([
        [targets.pearson_r[(s, w)] for w in WAVES] for s in targets.skills
    ])
    naive_err = float(np.abs(naive["pearson_r"] - target_r).max())
    calibrated_err = float(np.abs(calibrated["pearson_r"] - target_r).max())
    print()
    print(f"  max |r error|: uncalibrated={naive_err:.3f} calibrated={calibrated_err:.3f}")
    assert calibrated_err <= 0.025
    assert naive_err > calibrated_err * 1.5


def test_ablation_discretisation_attenuates_r(benchmark):
    """Same latent correlation, observed r shrinks after Likert rounding —
    the reason calibration overshoots c_q above the target r."""
    rng = np.random.default_rng(0)
    latent_r = 0.7
    n = 5000

    def attenuation():
        x = rng.standard_normal(n)
        y = latent_r * x + np.sqrt(1 - latent_r**2) * rng.standard_normal(n)
        lx = np.clip(np.rint(4.0 + 0.4 * x), 1, 5)
        ly = np.clip(np.rint(4.0 + 0.4 * y), 1, 5)
        return np.corrcoef(x, y)[0, 1], np.corrcoef(lx, ly)[0, 1]

    continuous_r, discrete_r = benchmark(attenuation)
    print()
    print(f"  latent r={continuous_r:.3f} -> Likert r={discrete_r:.3f}")
    assert discrete_r < continuous_r


def test_ablation_masterworker_vs_forkjoin(benchmark):
    """Assignment 4: in fork-join all threads compute; in master-worker the
    master coordinates and computes nothing."""
    tasks = list(range(60))

    def both():
        mw = run_master_worker(tasks, lambda x: x * x, num_threads=4)
        fj, _trace = run_parallel_for(
            OpenMP(4), len(tasks), lambda i, ctx: None, Schedule.static(),
            reduction=Reduction.SUM, value=lambda i: tasks[i] ** 2,
        )
        return mw, fj

    mw, fj_sum = benchmark(both)
    assert mw.master_did_no_tasks              # master-worker asymmetry
    assert sum(mw.results) == fj_sum           # same answer either way


def test_ablation_barrier_vs_reduction(benchmark):
    """Assignment 4: a barrier orders time but moves no data; a reduction
    combines data (and implies the ordering it needs)."""

    def both():
        barrier = run_barrier_demo(num_threads=4)
        total, _ = run_parallel_for(
            OpenMP(4), 100, lambda i, ctx: None, Schedule.static(),
            reduction=Reduction.SUM, value=lambda i: i,
        )
        return barrier, total

    barrier, total = benchmark(both)
    assert barrier.barrier_respected           # ordering, no value
    assert total == sum(range(100))            # value, combined
