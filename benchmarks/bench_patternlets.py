"""The Assignments 2–4 programs: runtime execution + simulated-Pi shapes.

Times each patternlet on the real thread runtime, and checks the
performance *shapes* Assignment 3's scheduling questions are about on the
simulated Pi: balanced loops near-linear, block-static poor on triangular
work, chunked/dynamic fixing it, dynamic chunk overhead visible.
"""

import math

from repro.openmp import Schedule
from repro.patternlets import (
    run_barrier_demo,
    run_fork_join,
    run_master_worker,
    run_race_demo,
    run_reduction_loop,
    run_scheduling_demo,
    run_spmd,
    trapezoid_parallel,
)
from repro.rpi import SimulatedPi


def test_fork_join_and_spmd(benchmark):
    demo = benchmark(run_fork_join, 4)
    assert len(demo.during) == 4
    assert run_spmd(4).thread_ids == (0, 1, 2, 3)


def test_race_demo(benchmark):
    demo = benchmark(run_race_demo, 4, 100)
    print()
    print(demo.render())
    assert demo.racy_races_detected > 0
    assert demo.private_total == demo.expected_total


def test_reduction_loop(benchmark):
    demo = benchmark(run_reduction_loop, 4, 500)
    assert demo.reduction_matches_sequential


def test_trapezoid(benchmark):
    result = benchmark(trapezoid_parallel, math.sin, 0.0, math.pi, 1 << 12, 4)
    assert abs(result.value - 2.0) < 1e-5


def test_barrier_and_master_worker(benchmark):
    demo = benchmark(run_barrier_demo, 4)
    assert demo.barrier_respected
    mw = run_master_worker(list(range(40)), lambda x: x * x, 4)
    assert mw.results == tuple(x * x for x in range(40))


def test_scheduling_demo_shapes(benchmark):
    demo = benchmark(run_scheduling_demo, 4, 12)
    print()
    for key in ("static,1", "static,2", "static,3"):
        print(demo.traces[key].render())
    assert set(demo.traces) == {
        f"{kind},{chunk}" for kind in ("static", "dynamic") for chunk in (1, 2, 3)
    }


def test_simulated_speedup_shapes(benchmark):
    """The three shapes Assignment 3 teaches, as assertions."""
    pi = SimulatedPi()
    balanced = [10.0] * 1000
    triangular = [float(i) / 10 for i in range(1000)]

    curve = benchmark(pi.speedup_curve, balanced)
    print()
    print("balanced loop speedup:", [round(c.speedup, 2) for c in curve])
    assert curve[-1].speedup > 3.0

    block = pi.cost_loop(triangular, Schedule.static())
    cyclic = pi.cost_loop(triangular, Schedule.static(chunk=1))
    dynamic = pi.cost_loop(triangular, Schedule.dynamic(4))
    print("triangular:", block, cyclic, dynamic, sep="\n  ")
    assert block.load_imbalance > 0.5
    assert cyclic.elapsed_us < block.elapsed_us
    assert dynamic.elapsed_us < block.elapsed_us

    d1 = pi.cost_loop(balanced, Schedule.dynamic(1))
    d8 = pi.cost_loop(balanced, Schedule.dynamic(8))
    assert d8.elapsed_us < d1.elapsed_us  # chunking amortises the counter
