"""Model benches: thermal throttling, distributed sort, pipeline, SIMT.

Each asserts its defining qualitative shape — the lab observations the
course content predicts.
"""

import random

from repro.arch.gpu import SIMTMachine
from repro.arch.pipeline import Instr, Op, run_pipeline
from repro.mapreduce import MapReduceEngine, distributed_sort_job
from repro.rpi import ThermalConfig, ThermalModel


def test_thermal_throttling(benchmark):
    def sustained_load():
        model = ThermalModel()
        return model.run(active_cores=4, seconds=300)

    trace = benchmark(sustained_load)
    first = next(s for s in trace if s.throttled)
    print()
    print(f"  4-core load: throttles at t={first.t_seconds:.0f}s "
          f"({first.temperature_c:.1f}C), settles at "
          f"{trace[-1].temperature_c:.1f}C @ {trace[-1].clock_ghz} GHz")
    assert trace[-1].throttled
    # A heatsink (halved thermal resistance) keeps full clock.
    heatsink = ThermalModel(config=ThermalConfig(thermal_resistance=4.0))
    heatsink.run(4, 600)
    assert not heatsink.throttled


def test_distributed_sort(benchmark):
    rng = random.Random(17)
    values = [rng.uniform(0, 1000) for _ in range(2000)]
    records = list(enumerate(values))
    job = distributed_sort_job(boundaries=[250.0, 500.0, 750.0])
    engine = MapReduceEngine(n_workers=4)

    result = benchmark(engine.run, job, records)
    flat = [
        key
        for bucket in result.per_reduce_outputs
        for key, count in bucket
        for _ in range(count)
    ]
    assert flat == sorted(values)
    sizes = [sum(c for _k, c in bucket) for bucket in result.per_reduce_outputs]
    print()
    print(f"  bucket sizes (range partitioning): {sizes}")
    assert sum(sizes) == len(values)


def test_pipeline_cpi(benchmark):
    program = []
    for i in range(0, 200, 4):
        program += [
            Instr(Op.LOAD, dest=1, sources=(2,)),
            Instr(Op.ALU, dest=3, sources=(1,)),     # load-use bubble
            Instr(Op.ALU, dest=4, sources=(3,)),
            Instr(Op.STORE, dest=None, sources=(4,)),
        ]

    def all_three():
        return (
            run_pipeline(program, pipelined=False),
            run_pipeline(program, forwarding=False),
            run_pipeline(program, forwarding=True),
        )

    unpipelined, stalled, forwarded = benchmark(all_three)
    print()
    print(f"  CPI: unpipelined {unpipelined.cpi:.2f}, no-forwarding "
          f"{stalled.cpi:.2f}, forwarding {forwarded.cpi:.2f}")
    assert forwarded.cpi < stalled.cpi < unpipelined.cpi
    assert forwarded.cpi < 1.6   # one bubble per 4 instructions + fill


def test_simt_divergence(benchmark):
    gpu = SIMTMachine(warp_width=8)

    def three_kernels():
        uniform = gpu.run_kernel(4096, lambda i: 0, lambda i, k: i * 2)
        diverged = gpu.run_kernel(4096, lambda i: i % 2, lambda i, k: i * 2)
        sorted_keys = gpu.run_kernel(4096, lambda i: i // 2048, lambda i, k: i * 2)
        return uniform, diverged, sorted_keys

    uniform, diverged, sorted_keys = benchmark(three_kernels)
    print()
    print(f"  warp instructions: uniform {uniform.warp_instructions}, "
          f"divergent {diverged.warp_instructions}, "
          f"key-sorted {sorted_keys.warp_instructions}")
    assert diverged.warp_instructions == 2 * uniform.warp_instructions
    assert sorted_keys.warp_instructions == uniform.warp_instructions
    assert uniform.output == diverged.output == sorted_keys.output
