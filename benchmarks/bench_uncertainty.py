"""Uncertainty of the reproduced statistics: bootstrap CIs + power.

Puts error bars on the headline numbers: bootstrap CIs around the
regenerated Cohen's d values and the weakest/strongest Table-4
correlations (the paper's point estimates must fall inside), and the
design's statistical power (the paper's N = 124 was amply powered for
both reported effects — the reproduction inherits that).

Also runs the §V distributed-memory stencil as a regression bench.
"""

from repro.mpi import heat_mpi, heat_sequential
from repro.stats import (
    bootstrap_paired_ci,
    cohens_d_paper,
    paired_t_power,
    pearson,
    required_n_paired_t,
)
from repro.survey.scales import Category
from repro.survey.scoring import cohort_scores


def test_bootstrap_cis_cover_paper_values(benchmark, study_result):
    waves = study_result.waves
    emphasis1 = cohort_scores(waves["first_half"], Category.CLASS_EMPHASIS)
    emphasis2 = cohort_scores(waves["second_half"], Category.CLASS_EMPHASIS)
    growth1 = cohort_scores(waves["first_half"], Category.PERSONAL_GROWTH)
    growth2 = cohort_scores(waves["second_half"], Category.PERSONAL_GROWTH)

    def cis():
        d_emphasis = bootstrap_paired_ci(
            emphasis1.overall, emphasis2.overall,
            lambda a, b: cohens_d_paper(list(a), list(b)).d, seed=11,
        )
        d_growth = bootstrap_paired_ci(
            growth1.overall, growth2.overall,
            lambda a, b: cohens_d_paper(list(a), list(b)).d, seed=11,
        )
        r_weak = bootstrap_paired_ci(
            emphasis1.per_skill["Teamwork"], growth1.per_skill["Teamwork"],
            lambda a, b: pearson(list(a), list(b)).r, seed=11,
        )
        r_strong = bootstrap_paired_ci(
            emphasis2.per_skill["Evaluation and Decision Making"],
            growth2.per_skill["Evaluation and Decision Making"],
            lambda a, b: pearson(list(a), list(b)).r, seed=11,
        )
        return d_emphasis, d_growth, r_weak, r_strong

    d_emphasis, d_growth, r_weak, r_strong = benchmark.pedantic(
        cis, rounds=1, iterations=1
    )
    print()
    print(f"  d (emphasis): {d_emphasis}  paper 0.50")
    print(f"  d (growth):   {d_growth}  paper 0.86")
    print(f"  r Teamwork w1: {r_weak}  paper 0.38")
    print(f"  r Eval&DM w2:  {r_strong}  paper 0.73")
    assert d_emphasis.contains(0.50)
    assert d_growth.contains(0.86)
    assert r_weak.contains(0.38)
    assert r_strong.contains(0.73)
    # Direction certainty: both effects positive across the whole CI.
    assert d_emphasis.low > 0 and d_growth.low > 0


def test_design_power(benchmark, study_result):
    """The paper's design (N = 124) against its own effects."""
    analysis = study_result.analysis
    # d_z for the paired tests: t / sqrt(n).
    d_z_emphasis = abs(analysis.ttest_emphasis.t) / (124 ** 0.5)
    d_z_growth = abs(analysis.ttest_growth.t) / (124 ** 0.5)

    result = benchmark(paired_t_power, d_z_emphasis, 124)
    print()
    print(f"  {result}")
    print(f"  growth: {paired_t_power(d_z_growth, 124)}")
    print(f"  N for 80% power at the emphasis effect: "
          f"{required_n_paired_t(d_z_emphasis)}")
    assert result.power > 0.9
    assert paired_t_power(d_z_growth, 124).power > 0.999
    assert required_n_paired_t(d_z_emphasis) < 124   # the study was overpowered


def test_heat_stencil(benchmark):
    rod = [0.0] * 64
    rod[0], rod[-1] = 100.0, 50.0
    sequential = heat_sequential(rod, steps=100)
    result = benchmark.pedantic(heat_mpi, args=(rod,),
                                kwargs={"steps": 100, "n_ranks": 4},
                                rounds=3, iterations=1)
    assert result == sequential
