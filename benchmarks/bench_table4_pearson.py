"""Table 4 — Pearson correlations between Class Emphasis and Personal
Growth, per skill, per wave.

Shape criteria: all 14 correlations positive and significant at the
paper's p < 0.001 level; each within ±0.05 of the published r; the two
Guilford-band call-outs the paper makes hold (Evaluation & Decision
Making in the *high* band, Teamwork wave-1 in the *low* band, everything
else moderate-range behaviour).
"""

from repro.core.targets import PAPER, W1, W2
from repro.stats.correlation import pearson
from repro.survey.instrument import ELEMENT_NAMES
from repro.survey.scales import Category
from repro.survey.scoring import cohort_scores


def _table4(waves):
    out = {}
    for wave_key, wave in waves.items():
        emphasis = cohort_scores(wave, Category.CLASS_EMPHASIS)
        growth = cohort_scores(wave, Category.PERSONAL_GROWTH)
        for skill in ELEMENT_NAMES:
            out[(skill, wave_key)] = pearson(
                list(emphasis.per_skill[skill]), list(growth.per_skill[skill])
            )
    return out


def test_table4_pearson(benchmark, study_result, report, fidelity):
    correlations = benchmark(_table4, study_result.waves)

    print()
    print(report.render_table("table4"))

    assert len(correlations) == 14
    for (skill, wave), target in PAPER.table4_r.items():
        ours = correlations[(skill, wave)]
        assert ours.r > 0, (skill, wave)
        assert ours.p_value < 0.001, (skill, wave)
        assert abs(ours.r - target) < 0.05, (skill, wave, ours.r, target)

    assert correlations[("Evaluation and Decision Making", W2)].strength.label == "high"
    assert correlations[("Teamwork", W1)].strength.label == "low"
    # Teamwork strengthens from wave 1 to wave 2 (0.38 -> 0.47).
    assert correlations[("Teamwork", W2)].r > correlations[("Teamwork", W1)].r
    assert fidelity["table4.r_within_tolerance"].passed
    assert fidelity["table4.all_positive_significant"].passed
