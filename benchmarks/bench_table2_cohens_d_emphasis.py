"""Table 2 — Cohen's d of Course Emphasis.

Regenerates the per-wave M/SD/n rows and the effect size with the paper's
exact pooled-SD formula.  Shape criteria: wave means/SDs within
publication tolerance of the printed values and d in the 'medium' band
(paper: d = 0.50).
"""

from repro.stats.effectsize import cohens_d_paper
from repro.survey.scales import Category
from repro.survey.scoring import cohort_scores


def _table2(waves):
    first = cohort_scores(waves["first_half"], Category.CLASS_EMPHASIS)
    second = cohort_scores(waves["second_half"], Category.CLASS_EMPHASIS)
    return cohens_d_paper(list(first.overall), list(second.overall))


def test_table2_cohens_d_emphasis(benchmark, study_result, report, fidelity):
    result = benchmark(_table2, study_result.waves)

    print()
    print(report.render_table("table2"))

    assert abs(result.mean1 - 4.023068) < 0.01
    assert abs(result.mean2 - 4.124365) < 0.01
    assert abs(result.sd1 - 0.232416) < 0.01
    assert abs(result.sd2 - 0.172052) < 0.01
    assert result.n1 == result.n2 == 124
    assert abs(result.d - 0.50) < 0.1
    assert result.interpretation == "medium"
    assert fidelity["table2.effect_band"].passed
    assert fidelity["table2.d_close"].passed
