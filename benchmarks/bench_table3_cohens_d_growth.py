"""Table 3 — Cohen's d of Personal Growth.

Shape criteria: wave means/SDs near the printed values and a *large*
effect (paper: d = 0.86) — the paper's headline result ("a significant
and direct effect on the student's growth").
"""

from repro.stats.effectsize import cohens_d_paper
from repro.survey.scales import Category
from repro.survey.scoring import cohort_scores


def _table3(waves):
    first = cohort_scores(waves["first_half"], Category.PERSONAL_GROWTH)
    second = cohort_scores(waves["second_half"], Category.PERSONAL_GROWTH)
    return cohens_d_paper(list(first.overall), list(second.overall))


def test_table3_cohens_d_growth(benchmark, study_result, report, fidelity):
    result = benchmark(_table3, study_result.waves)

    print()
    print(report.render_table("table3"))

    assert abs(result.mean1 - 3.81) < 0.02
    assert abs(result.mean2 - 4.01) < 0.02
    assert abs(result.sd1 - 0.262204) < 0.01
    assert abs(result.sd2 - 0.198497) < 0.01
    assert abs(result.d - 0.86) < 0.15
    assert result.interpretation == "large"
    # The ordering the Discussion leans on: growth effect > emphasis effect.
    assert fidelity["table3.effect_band"].passed
    assert fidelity["table3.d_close"].passed
