"""Assignment 5's measurement protocol — the paper's only performance
experiment (sequential vs OpenMP vs C++11-threads; threads 4→5; max
ligand 5→7; program size vs performance).

Shape criteria on the simulated Pi (absolute numbers are ours, shapes are
the paper's): the parallel solutions beat sequential by roughly the core
count; five threads is not slower than four; raising max ligand from 5
to 7 raises every runtime; the sequential program is the shortest.
"""

import pytest

from repro.drugdesign import DrugDesignConfig, run_assignment5


def test_a5_baseline_three_solutions(benchmark):
    report = benchmark(run_assignment5, DrugDesignConfig(n_ligands=120, max_ligand=5))

    print()
    print(report.render())

    assert report.answers_agree()
    seq = report.measurements["sequential"]
    omp = report.measurements["openmp"]
    cxx = report.measurements["cxx11_threads"]
    # Who wins: the parallel styles, by roughly the core count (4x ideal;
    # allow scheduling overheads + contention to eat some of it).
    assert report.fastest_simulated in ("openmp", "cxx11_threads")
    assert 2.0 < seq.simulated_us / omp.simulated_us <= 4.0
    assert 2.0 < seq.simulated_us / cxx.simulated_us <= 4.0
    # Program size vs performance: shortest program is the slowest.
    assert seq.lines_of_code < omp.lines_of_code
    assert seq.lines_of_code < cxx.lines_of_code


def test_a5_five_threads(benchmark):
    report4 = run_assignment5(DrugDesignConfig(n_ligands=120, num_threads=4))
    report5 = benchmark(run_assignment5,
                        DrugDesignConfig(n_ligands=120, num_threads=5))

    print()
    print(report5.render())

    assert report5.answers_agree()
    assert (
        report5.measurements["openmp"].simulated_us
        <= report4.measurements["openmp"].simulated_us * 1.05
    )
    # Sequential time is unaffected by the thread count.
    assert report5.measurements["sequential"].simulated_us == pytest.approx(
        report4.measurements["sequential"].simulated_us
    )


def test_a5_max_ligand_7(benchmark):
    base = run_assignment5(DrugDesignConfig(n_ligands=120, max_ligand=5))
    bigger = benchmark(run_assignment5,
                       DrugDesignConfig(n_ligands=120, max_ligand=7))

    print()
    print(bigger.render())

    # More work for every style, and the parallel styles still win.
    for style in ("sequential", "openmp", "cxx11_threads"):
        assert (
            bigger.measurements[style].simulated_us
            > base.measurements[style].simulated_us
        )
    assert bigger.fastest_simulated in ("openmp", "cxx11_threads")
    # Longer ligands can only raise the best LCS score.
    assert (
        bigger.measurements["sequential"].result.max_score
        >= base.measurements["sequential"].result.max_score
    )
