"""Shared state for the benchmark harness.

Every table/figure bench consumes the same deterministic study run; it is
computed once per session.  Each bench (a) times the regeneration of its
artefact with pytest-benchmark and (b) prints the paper-vs-ours table so
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation
section on the terminal, and (c) asserts the fidelity checks that artefact
is responsible for.
"""

from __future__ import annotations

import pytest

from repro.core import PBLStudy, ReproductionReport


@pytest.fixture(scope="session")
def study():
    return PBLStudy.default(seed=2018)


@pytest.fixture(scope="session")
def study_result(study):
    return study.run()


@pytest.fixture(scope="session")
def report(study, study_result):
    return ReproductionReport(analysis=study_result.analysis, paper=study.paper)


@pytest.fixture(scope="session")
def fidelity(report):
    return {check.name: check for check in report.fidelity_checks()}
