"""Table 6 — ranking of perceived Personal Growth by composite score.

Shape criteria: rank order matches the paper wave-for-wave (allowing the
paper's own 0.01-width near-ties to swap); wave-1 growth is "more
selective" — a larger top-to-bottom spread than wave 2; Teamwork is the
top growth item in both waves and Evaluation & Decision Making the
lowest.
"""

from repro.core.targets import PAPER, W1, W2
from repro.stats.ranking import rank_by_score, spread
from repro.survey.scales import Category
from repro.survey.scoring import cohort_scores


def _table6(waves):
    out = {}
    for wave_key, wave in waves.items():
        scores = cohort_scores(wave, Category.PERSONAL_GROWTH)
        means = dict(scores.composite_means)
        out[wave_key] = (rank_by_score(means), spread(means))
    return out


def test_table6_growth_ranking(benchmark, study_result, report, fidelity):
    rankings = benchmark(_table6, study_result.waves)

    print()
    print(report.render_table("table6"))

    for wave in (W1, W2):
        ranked, _spread = rankings[wave]
        ours = {item.name: item.score for item in ranked}
        for (skill, w), target in PAPER.table6_growth.items():
            if w == wave:
                assert abs(ours[skill] - target) < 0.02, (skill, wave)
        assert ranked[0].name == "Teamwork"
        assert ranked[-1].name == "Evaluation and Decision Making"

    # Wave 1 growth more selective: wider spread (paper: 0.78 vs 0.56).
    assert rankings[W1][1] > rankings[W2][1]
    assert fidelity["table6.teamwork_top_growth"].passed
    assert fidelity["discussion.growth_spread_narrows"].passed
    assert fidelity["discussion.implementation_gap_small"].passed
