"""Table 5 — ranking of perceived Course Emphasis by composite score.

Shape criteria: rank order matches the paper wave-for-wave (Teamwork far
in front in both waves; Evaluation & Decision Making overtakes
Information Gathering in the second half), and every composite mean lands
within publication tolerance of the printed value.
"""

from repro.core.targets import PAPER, W1, W2
from repro.stats.ranking import rank_by_score
from repro.survey.scales import Category
from repro.survey.scoring import cohort_scores


def _table5(waves):
    out = {}
    for wave_key, wave in waves.items():
        scores = cohort_scores(wave, Category.CLASS_EMPHASIS)
        out[wave_key] = rank_by_score(dict(scores.composite_means))
    return out


def test_table5_emphasis_ranking(benchmark, study_result, report, fidelity):
    rankings = benchmark(_table5, study_result.waves)

    print()
    print(report.render_table("table5"))

    for wave in (W1, W2):
        ours = {item.name: item.score for item in rankings[wave]}
        for (skill, w), target in PAPER.table5_emphasis.items():
            if w == wave:
                assert abs(ours[skill] - target) < 0.02, (skill, wave)

    # Headline orderings the Discussion cites.
    assert rankings[W1][0].name == "Teamwork"
    assert rankings[W2][0].name == "Teamwork"
    w2_names = [item.name for item in rankings[W2]]
    assert w2_names.index("Evaluation and Decision Making") < w2_names.index(
        "Information Gathering"
    )
    assert fidelity["table5.first_half.rank_order"].passed
    assert fidelity["table5.second_half.rank_order"].passed
