"""Fault-injection cost: recovery overhead vs the fault-free baseline.

Shape criteria (absolute numbers are machine-dependent, shapes are
not): a MapReduce job that loses workers and a shuffle payload still
completes within a small multiple of the fault-free run — the price of
recovery is re-executed *tasks*, never a stalled job — and with no plan
active the injection hooks cost one ``is None`` branch per site, so the
fault-free path stays at its pre-chaos speed.

Run as a script (``python benchmarks/bench_faults.py``) it measures
both modes directly and writes a ``BENCH_faults.json`` trajectory
point: baseline seconds, chaos seconds, recovery overhead ratio, and
injected/recovered counts for the canonical seed-7 scenario.
"""

from __future__ import annotations

import json
import statistics
import time

import pytest

from repro import faults
from repro.faults.chaos import named_plan, run_chaos
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.jobs import word_count_job

_DOCS = [(i, "alpha beta gamma delta " * 8) for i in range(8)]


@pytest.fixture(autouse=True)
def _faults_off():
    faults.disable()
    yield
    faults.disable()


def _fault_free_job():
    engine = MapReduceEngine(n_workers=4, max_attempts=4)
    return engine.run(word_count_job(n_reduce_tasks=4), list(_DOCS))


def _chaotic_job():
    plan = named_plan("mapreduce", seed=7)
    engine = MapReduceEngine(n_workers=4, max_attempts=4)
    with faults.inject(plan) as injector:
        result = engine.run(word_count_job(n_reduce_tasks=4), list(_DOCS))
    return result, injector


def test_mapreduce_fault_free_baseline(benchmark):
    """Baseline: no plan active, hooks are a single branch each."""
    assert not faults.is_enabled()
    result = benchmark(_fault_free_job)
    assert result.retries == 0


def test_mapreduce_recovery_overhead(benchmark):
    """Seed-7 chaos: worker deaths + shuffle corruption, recovered by
    re-execution.  The job must still finish with the right answer."""
    result, injector = benchmark(_chaotic_job)
    reference = _fault_free_job()
    assert result.output == reference.output
    assert injector.counts_by_kind().get("crash", 0) >= 1


def test_chaos_scenario_end_to_end(benchmark):
    """The full CLI-shaped scenario (plan + job + verification)."""
    report = benchmark(lambda: run_chaos("mapreduce", seed=7))
    assert report.ok and report.injected_total >= 2


def _measure(fn, repeats: int = 7) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def main(out_path: str = "BENCH_faults.json") -> dict:
    faults.disable()
    baseline_s = _measure(_fault_free_job)
    chaos_s = _measure(_chaotic_job)
    report = run_chaos("mapreduce", seed=7)
    point = {
        "bench": "faults",
        "workload": "mapreduce word count (8 docs, 4 workers)",
        "seed": 7,
        "baseline_s": round(baseline_s, 6),
        "chaos_s": round(chaos_s, 6),
        "recovery_overhead_ratio": round(chaos_s / baseline_s, 3),
        "injected": report.injected_by_kind,
        "recovered": report.recovered,
        "ok": report.ok,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(point, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(point, indent=2, sort_keys=True))
    return point


if __name__ == "__main__":
    main()
