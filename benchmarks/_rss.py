"""Peak-RSS helpers for benchmark scripts.

Thin re-export of :mod:`repro.benchutil` — the canonical definition of
"peak RSS" (``ru_maxrss`` with the Linux-KiB/macOS-bytes quirk hidden,
children included) — so every ``bench_*.py`` in this directory reports
memory the same way without reimplementing the platform scaling.
"""

from repro.benchutil import format_bytes, peak_rss_bytes

__all__ = ["format_bytes", "peak_rss_bytes"]
