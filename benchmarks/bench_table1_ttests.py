"""Table 1 — paired t-tests on Class Emphasis and Personal Growth.

Regenerates both rows of Table 1 from raw item-level responses: scoring
(overall averages per student per wave) followed by paired t-tests.

Shape criteria (the paper's t/p are internally inconsistent; see
EXPERIMENTS.md): both mean differences negative (second half higher) and
both tests significant, with the growth effect stronger than the emphasis
effect — who-wins and direction, exactly as published.
"""

from repro.stats.ttest import ttest_paired
from repro.survey.scales import Category
from repro.survey.scoring import cohort_scores


def _table1(waves):
    rows = {}
    for category in Category:
        first = cohort_scores(waves["first_half"], category)
        second = cohort_scores(waves["second_half"], category)
        rows[category.value] = ttest_paired(list(first.overall), list(second.overall))
    return rows


def test_table1_ttests(benchmark, study_result, report, fidelity):
    rows = benchmark(_table1, study_result.waves)

    print()
    print(report.render_table("table1"))

    emphasis = rows["class_emphasis"]
    growth = rows["personal_growth"]
    # Direction: scores rose in the second half of the semester.
    assert emphasis.mean_difference < 0
    assert growth.mean_difference < 0
    # Magnitudes match the published mean differences.
    assert abs(emphasis.mean_difference - (-0.10)) < 0.02
    assert abs(growth.mean_difference - (-0.20)) < 0.02
    # Significance, and growth stronger than emphasis (paper: |t| 5.11 > 2.63).
    assert emphasis.p_value < 0.05 and growth.p_value < 0.05
    assert abs(growth.t) > abs(emphasis.t)
    assert emphasis.n == growth.n == 124
    for name in ("table1.emphasis.direction", "table1.emphasis.significant",
                 "table1.growth.direction", "table1.growth.significant"):
        assert fidelity[name].passed, fidelity[name]
