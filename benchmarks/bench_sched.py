"""Scheduler cost: work-stealing dispatch vs per-runtime pools, and the
warm-cache speedup.

Shape criteria (absolute numbers are machine-dependent, shapes are
not): dispatching a MapReduce job through the shared scheduler stays
within a small multiple of the engine's private thread pool — the price
of determinism is bookkeeping, never a stalled phase; steals occur
(the balancing actually happens); and a content-addressed warm run is
dramatically faster than its cold run because it executes nothing.

Run as a script (``python benchmarks/bench_sched.py``) it measures all
three directly and writes a ``BENCH_sched.json`` trajectory point:
pool vs scheduler seconds, steal rate, queue high-water depth, and the
cold/warm cache ratio for the canonical seed-7 workload.
"""

from __future__ import annotations

import json
import statistics
import tempfile
import time

from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.jobs import word_count_job
from repro.sched import ResultCache, WorkStealingExecutor
from repro.sched.workloads import run_sched_workload

_DOCS = [(i, "alpha beta gamma delta epsilon zeta " * 6) for i in range(12)]


def _pool_job():
    engine = MapReduceEngine(n_workers=4)
    return engine.run(word_count_job(n_reduce_tasks=4), list(_DOCS))


def _sched_job():
    ex = WorkStealingExecutor(n_workers=4, seed=7)
    engine = MapReduceEngine(n_workers=4, scheduler=ex)
    return engine.run(word_count_job(n_reduce_tasks=4), list(_DOCS)), ex


def test_pool_dispatch_baseline(benchmark):
    """Baseline: the engine's private ThreadPoolExecutor per phase."""
    result = benchmark(_pool_job)
    assert result.output


def test_scheduler_dispatch(benchmark):
    """The same job through the shared deterministic scheduler; the
    answer must be identical to the pool run's."""
    result, ex = benchmark(_sched_job)
    assert result.output == _pool_job().output
    assert ex.stats().executed > 0


def test_steals_balance_an_uneven_load(benchmark):
    """A skewed task mix must produce steals (the balancing exists)."""

    def run():
        ex = WorkStealingExecutor(n_workers=4, seed=7)
        ex.map([lambda i=i: sum(range(100 * (i % 5))) for i in range(32)])
        return ex

    ex = benchmark(run)
    assert ex.stats().steals > 0


def test_warm_cache_is_a_hit(benchmark):
    """A warm content-addressed run replays without executing."""
    with tempfile.TemporaryDirectory() as tmp:
        run_sched_workload("drugdesign", workers=4, seed=7,
                           cache=ResultCache(directory=tmp))
        warm = benchmark(
            lambda: run_sched_workload("drugdesign", workers=4, seed=7,
                                       cache=ResultCache(directory=tmp))
        )
    assert warm.cache_hits == 1 and warm.cache_misses == 0


def _measure(fn, repeats: int = 7) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def main(out_path: str = "BENCH_sched.json") -> dict:
    pool_s = _measure(_pool_job)
    sched_s = _measure(lambda: _sched_job())
    _result, ex = _sched_job()
    stats = ex.stats().as_dict()

    with tempfile.TemporaryDirectory() as tmp:
        cold_s = _measure(
            lambda: run_sched_workload(
                "drugdesign", workers=4, seed=7,
                cache=ResultCache(directory=tmp)), repeats=1,
        )
        warm_s = _measure(
            lambda: run_sched_workload(
                "drugdesign", workers=4, seed=7,
                cache=ResultCache(directory=tmp)),
        )
        warm = run_sched_workload("drugdesign", workers=4, seed=7,
                                  cache=ResultCache(directory=tmp))

    point = {
        "bench": "sched",
        "workload": "mapreduce word count (12 docs, 4 workers) + "
                    "drugdesign cache replay",
        "seed": 7,
        "pool_s": round(pool_s, 6),
        "sched_s": round(sched_s, 6),
        "dispatch_overhead_ratio": round(sched_s / pool_s, 3),
        "steal_rate": stats["steal_rate"],
        "steals": stats["steals"],
        "queue_high_water": stats["high_water"],
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "warm_speedup": round(cold_s / warm_s, 3) if warm_s else None,
        "cache_hit_ratio": round(
            warm.cache_hits / (warm.cache_hits + warm.cache_misses), 3),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(point, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(point, indent=2, sort_keys=True))
    return point


if __name__ == "__main__":
    main()
