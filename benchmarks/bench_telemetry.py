"""Telemetry cost: the disabled path must be invisible, the enabled
path affordable.

Shape criteria (absolute numbers are machine-dependent, shapes are
not): a traced fork-join region still completes in the same order of
magnitude as an untraced one, hot-path span creation stays in the
single-digit-microsecond range, and a full MapReduce job under
telemetry produces one span per task attempt — the trace pays for
itself by *counting* the work, so the count must be exact.
"""

import pytest

from repro import telemetry
from repro.mapreduce.engine import MapReduceEngine, TaskFailure
from repro.mapreduce.jobs import word_count_job
from repro.openmp.runtime import OpenMP
from repro.telemetry.spans import Tracer

_DOCS = [(i, "alpha beta gamma delta " * 8) for i in range(8)]


@pytest.fixture(autouse=True)
def _telemetry_off():
    telemetry.disable()
    yield
    telemetry.disable()


def _fork_join_region() -> int:
    omp = OpenMP(num_threads=4)
    hits = []

    def body(ctx) -> None:
        hits.append(ctx.thread_num)
        ctx.barrier()

    omp.parallel(body)
    return len(hits)


def test_fork_join_disabled_telemetry(benchmark):
    """Baseline: the single `is None` branch per hook is all we pay."""
    assert not telemetry.is_enabled()
    hits = benchmark(_fork_join_region)
    assert hits == 4


def test_fork_join_enabled_telemetry(benchmark):
    """Tracing on: spans for the region, each thread, and the barrier."""
    with telemetry.session() as session:
        hits = benchmark(_fork_join_region)
    assert hits == 4
    names = {s.name for s in session.tracer.spans}
    assert {"omp.parallel", "omp.thread", "omp.barrier"} <= names


def test_span_hot_path(benchmark):
    """Raw span enter/exit on a live tracer — the per-event floor."""
    tracer = Tracer()

    def one_span() -> None:
        with tracer.span("hot"):
            pass

    benchmark(one_span)
    assert tracer.spans


def test_mapreduce_span_count_is_exact(benchmark):
    """A traced job emits exactly one task span per successful attempt
    plus one job + one shuffle span; retries add spans, not guesses."""
    failures = [TaskFailure("map", 0, 0)]

    def traced_job():
        with telemetry.session() as session:
            result = MapReduceEngine(n_workers=4, failures=list(failures)).run(
                word_count_job(n_reduce_tasks=4), list(_DOCS))
        return session, result

    session, result = benchmark(traced_job)
    task_spans = [s for s in session.tracer.spans
                  if s.name in ("mr.map.task", "mr.reduce.task")]
    assert len(task_spans) == len(_DOCS) + 4        # successful attempts
    assert result.retries == 1
    assert len(session.tracer.events_named("mr.retry")) == 1
