"""Job-service load: many concurrent HTTP clients vs one server.

Shape criteria (absolute numbers are machine-dependent, shapes are
not): every submitted job reaches ``done``, the warm phase — identical
requests from every client — is served (almost) entirely from the
content-addressed result cache, and warm p50 latency beats cold p50
(a cache hit costs a dict lookup, not a scheduler execution).

Run as a script (``python benchmarks/bench_serve.py``) it delegates to
:func:`repro.serve.bench.run_serve_bench` — the same measurement behind
``python -m repro bench serve`` — and writes the ``BENCH_serve.json``
trajectory point.
"""

from __future__ import annotations

from repro.serve.bench import render_point, run_serve_bench


def main(out_path: str = "BENCH_serve.json", quick: bool = False) -> dict:
    point = run_serve_bench(quick=quick, out_path=out_path)
    print(render_point(point))
    return point


if __name__ == "__main__":
    main()
