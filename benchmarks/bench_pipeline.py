"""Durable pipeline store: enqueue/lease throughput and resume overhead.

Shape criteria (absolute numbers are machine- and fsync-dependent,
shapes are not): every batched enqueue lands, the lease→complete drain
moves every job to ``done``, and the resumed drug-design pipeline run —
all four checkpoints replayed from SQLite — is byte-identical to and
cheaper than the cold run that executed its stages.

Run as a script (``python benchmarks/bench_pipeline.py``) it delegates
to :func:`repro.pipeline.bench.run_pipeline_bench` — the same
measurement behind ``python -m repro bench pipeline`` — and writes the
``BENCH_pipeline.json`` trajectory point.
"""

from __future__ import annotations

from repro.pipeline.bench import render_point, run_pipeline_bench


def main(out_path: str = "BENCH_pipeline.json", quick: bool = False) -> dict:
    point = run_pipeline_bench(quick=quick, out_path=out_path)
    print(render_point(point))
    return point


if __name__ == "__main__":
    main()
