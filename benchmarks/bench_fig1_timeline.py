"""Fig. 1 — the semester timeline.

Regenerates the schedule figure and asserts its structure: 15 weeks,
team formation in week 1, five back-to-back two-week assignments, a quiz
after each, the midterm + first survey at the mid-point and the final +
second survey in week 15.
"""

from repro.course.timeline import EventKind, paper_timeline
from repro.reporting import render_fig1_timeline


def test_fig1_timeline(benchmark, report):
    semester = benchmark(paper_timeline)

    print()
    print(render_fig1_timeline(semester))

    assert semester.n_weeks == 15
    assignments = semester.of_kind(EventKind.ASSIGNMENT)
    assert len(assignments) == 5
    assert all(a.duration_weeks == 2 for a in assignments)
    assert assignments[0].start_week == 2
    assert assignments[-1].end_week == 11
    assert semester.of_kind(EventKind.TEAM_FORMATION)[0].start_week == 1
    assert semester.survey_weeks == (8, 15)
    assert semester.of_kind(EventKind.MIDTERM)[0].start_week == 8
    assert semester.of_kind(EventKind.FINAL)[0].start_week == 15
    assert len(semester.of_kind(EventKind.QUIZ)) == 5
    # The report's figure renderer agrees with the timeline object.
    assert "survey 2" in report.render_figure("fig1")
