"""Process-pool backend vs threaded executor on GIL-bound sweeps.

Shape criteria (absolute numbers are machine-dependent, shapes are
not): with two or more cores the ``mode="mp"`` backend finishes the
scalar-Python stencil and LCS sweeps faster than the threaded executor
running the identical task list — threads serialize on the GIL, the
pool does not — while every task result and the drug-design stepping
report stay byte-identical across the two modes.  On a single core
only the identity half of the gate applies.

Run as a script (``python benchmarks/bench_mp.py``) it delegates to
:func:`repro.kernels.mpbench.run_mp_bench` — the same measurement
behind ``python -m repro bench mp`` — and writes the ``BENCH_mp.json``
trajectory point.
"""

from __future__ import annotations

from repro.kernels.mpbench import render_point, run_mp_bench


def main(out_path: str = "BENCH_mp.json", quick: bool = False) -> dict:
    point = run_mp_bench(quick=quick, out_path=out_path)
    print(render_point(point))
    return point


if __name__ == "__main__":
    main()
