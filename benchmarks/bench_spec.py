"""Speculative execution vs plain dispatch under a seeded stall plan.

Shape criteria (absolute numbers are machine-dependent, shapes are
not): a few tasks in the batch are pinned behind a long stall — a wait
on the straggler-kill event, not compute — so the plain arm's p99 task
latency is the stall itself, while the speculative arm launches backup
copies on idle workers, commits the first completion, and cuts the p99
toward the healthy-task latency.  Every committed value and the
drug-design stepping report stay byte-identical across the two arms:
speculation may change latency, never results or the stepping log.

Run as a script (``python benchmarks/bench_spec.py``) it delegates to
:func:`repro.sched.specbench.run_spec_bench` — the same measurement
behind ``python -m repro bench spec`` — and writes the
``BENCH_spec.json`` trajectory point.
"""

from __future__ import annotations

from repro.sched.specbench import render_point, run_spec_bench


def main(out_path: str = "BENCH_spec.json", quick: bool = False) -> dict:
    point = run_spec_bench(quick=quick, out_path=out_path)
    print(render_point(point))
    return point


if __name__ == "__main__":
    main()
