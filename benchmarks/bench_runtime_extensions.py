"""Runtime extensions: tasks, locks, MPI collectives, speculation.

Benchmarks for the subsystems built beyond the paper's minimum — the
OpenMP task pool on a recursive tree, lock throughput under contention,
the MPI collective set, the distributed drug-design solver, and straggler
speculation — each with its defining property asserted.
"""

from repro.drugdesign import generate_ligands, solve_mpi, solve_sequential
from repro.drugdesign.ligands import DEFAULT_PROTEIN
from repro.mapreduce import SlowTask, SpeculativeEngine, word_count_job
from repro.mpi import mpi_run, pi_integration
from repro.openmp import OMPLock, OpenMP, TaskGroup


def test_task_tree_fib(benchmark):
    def run():
        group = TaskGroup(OpenMP(4))

        def fib(n):
            if n < 2:
                return n
            a = group.submit(fib, n - 1)
            return a.result() + fib(n - 2)

        return group.run(fib, 16)

    assert benchmark(run) == 987


def test_lock_contention(benchmark):
    def run():
        lock = OMPLock()
        shared = {"v": 0}

        def body(ctx):
            for _ in range(250):
                with lock:
                    shared["v"] += 1

        OpenMP(4).parallel(body)
        return shared["v"]

    assert benchmark(run) == 1000


def test_mpi_allreduce_throughput(benchmark):
    def run():
        return mpi_run(
            4, lambda comm: comm.allreduce(comm.rank + 1, op=lambda a, b: a + b)
        )

    assert benchmark(run) == [10, 10, 10, 10]


def test_mpi_pi(benchmark):
    import math
    estimate = benchmark(pi_integration, 4, 20_000)
    assert abs(estimate - math.pi) < 1e-8


def test_mpi_drug_design(benchmark):
    ligands = generate_ligands(80, 5)
    sequential = solve_sequential(ligands, DEFAULT_PROTEIN)
    result = benchmark(solve_mpi, ligands, DEFAULT_PROTEIN, 4)
    assert result.same_answer_as(sequential)
    assert sum(result.per_thread_cells) == sequential.total_cells


def test_speculative_execution(benchmark):
    docs = [(f"d{i}", "epsilon zeta eta theta " * 4) for i in range(16)]
    engine = SpeculativeEngine(
        n_workers=4, straggler_wait_s=0.02, slow_tasks=[SlowTask(0, 0.3)],
    )

    result = benchmark.pedantic(
        lambda: engine.run(word_count_job(), docs, n_map_tasks=8),
        rounds=3, iterations=1,
    )
    print()
    print(f"  backups launched {result.backups_launched}, "
          f"won {result.backups_won}, wall {result.wall_seconds:.3f}s")
    assert result.result.as_dict()["epsilon"] == 64
    # Speculation masks the 0.3 s straggler almost entirely.
    assert result.wall_seconds < 0.15
