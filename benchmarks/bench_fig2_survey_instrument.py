"""Fig. 2 — the Team Design Skills Growth Survey instrument sheet.

Regenerates the survey element figure and asserts the instrument's
structure: seven elements, the Fig.-2 Teamwork wording verbatim, a
definition item plus performance-indicator components per element, and
the two verbatim 5-point scales.
"""

from repro.reporting import render_fig2_instrument
from repro.survey import (
    CLASS_EMPHASIS_SCALE,
    ELEMENT_NAMES,
    PERSONAL_GROWTH_SCALE,
    team_design_skills_survey,
)


def test_fig2_survey_instrument(benchmark):
    instrument = benchmark(team_design_skills_survey)

    print()
    print(render_fig2_instrument(instrument))

    assert instrument.element_names == ELEMENT_NAMES
    assert instrument.n_items == 35

    teamwork = instrument.element("Teamwork")
    assert teamwork.definition.text == (
        "Individuals participate effectively in groups or teams."
    )
    assert len(teamwork.components) == 4

    assert CLASS_EMPHASIS_SCALE.label(1) == "Did not discuss"
    assert PERSONAL_GROWTH_SCALE.label(5) == (
        "I experienced a tremendous growth and added many new skills"
    )

    rendered = render_fig2_instrument(instrument)
    assert "definition" in rendered
    assert "CE" in rendered and "PG" in rendered
