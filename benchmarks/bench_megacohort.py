"""Population-scale streamed survey vs the in-memory pipeline.

Shape criteria (absolute numbers are machine-dependent, shapes are
not): the streamed single-shard N=124 run renders Tables 1–6
byte-identically to the in-memory pipeline; the full run streams the
whole cohort (one million rows by default) with a peak RSS far below
the estimated full-tensor footprint; and with two or more cores the
``mode="mp"`` arm sustains at least the threaded arm's rows/second
(on one core only the identity and memory gates apply).

Run as a script (``python benchmarks/bench_megacohort.py``) it
delegates to :func:`repro.megacohort.bench.run_megacohort_bench` — the
same measurement behind ``python -m repro bench megacohort`` — and
writes the ``BENCH_megacohort.json`` trajectory point.
"""

from __future__ import annotations

from repro.megacohort.bench import render_point, run_megacohort_bench


def main(out_path: str = "BENCH_megacohort.json",
         quick: bool = False) -> dict:
    point = run_megacohort_bench(quick=quick, out_path=out_path)
    print(render_point(point))
    return point


if __name__ == "__main__":
    import sys

    main(quick="--quick" in sys.argv[1:])
