"""Architecture substrate shapes: ISA comparison and cache locality.

Not a paper table, but the executable form of the course content the
paper's assignments quiz (ISA comparison axes; Assignment 3's
memory-architecture questions) and of the HPC guide's cache-effects
section — with the qualitative shapes asserted.
"""

from repro.arch import compare_isas
from repro.rpi.cache import MemoryHierarchy


def test_isa_comparison(benchmark):
    comparison = benchmark(compare_isas, list(range(1, 101)))

    print()
    print(comparison.render())

    assert comparison.result_risc == comparison.result_cisc == 5050
    # RISC: fixed 4-byte encoding; CISC: variable, denser per instruction
    # count but each memory operand costs an inline disp32.
    assert comparison.risc_fixed_width == 4
    assert comparison.cisc_min_width < 4 <= comparison.cisc_max_width
    # Load/store discipline: RISC needs an explicit load per element.
    assert comparison.risc_loads == 100
    assert comparison.cisc_memory_operand_ops == 100
    # CISC folds the load into the add: fewer dynamic instructions.
    assert comparison.cisc_executed < comparison.risc_executed
    # Immediates: 12-bit inline vs 32-bit inline.
    assert comparison.risc_max_inline_immediate == 4095
    assert comparison.cisc_max_inline_immediate == 2**31 - 1


def test_cache_row_vs_column_major(benchmark):
    def traversals():
        h = MemoryHierarchy()
        row = h.run_trace(h.row_major_trace(128, 128))
        h.reset()
        col = h.run_trace(h.column_major_trace(128, 128))
        return row, col

    row, col = benchmark(traversals)
    print()
    print(f"  row-major {row} cycles vs column-major {col} cycles "
          f"({col / row:.2f}x)")
    assert row < col


def test_cache_stride_sweep(benchmark):
    def sweep():
        out = {}
        for stride in (8, 16, 32, 64, 128):
            h = MemoryHierarchy()
            cycles = h.run_trace(h.strided_trace(1 << 16, stride))
            out[stride] = (cycles, h.l1.stats.hit_rate)
        return out

    results = benchmark(sweep)
    print()
    for stride, (cycles, rate) in results.items():
        print(f"  stride {stride:4d}: {cycles:7d} cycles, L1 hit rate {rate:.2f}")
    rates = [rate for _c, rate in results.values()]
    assert rates == sorted(rates, reverse=True)
    assert results[64][1] == 0.0     # stride = line size: all misses


def test_cache_working_set_staircase(benchmark):
    def staircase():
        out = {}
        for kib in (16, 256, 2048):
            h = MemoryHierarchy()
            trace = list(h.strided_trace(kib * 1024, 64))
            h.run_trace(trace)                        # warm
            out[kib] = h.run_trace(trace) / len(trace)
        return out

    costs = benchmark(staircase)
    print()
    for kib, cycles in costs.items():
        print(f"  {kib:5d} KiB working set: {cycles:6.1f} cycles/access")
    assert costs[16] < costs[256] < costs[2048]
