"""The semester timeline (the paper's Fig. 1).

A 15-week semester: teams are formed in week 1; the five two-week
assignments run back-to-back from week 2; a quiz follows each
assignment's due date; the midterm and the first survey sit at the
mid-point (week 8); the final exam and the second survey close week 15.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["EventKind", "SemesterEvent", "Semester", "paper_timeline"]

SEMESTER_WEEKS = 15


class EventKind(enum.Enum):
    TEAM_FORMATION = "team formation"
    ASSIGNMENT = "assignment"
    QUIZ = "quiz"
    SURVEY = "survey"
    MIDTERM = "midterm exam"
    FINAL = "final exam"


@dataclass(frozen=True)
class SemesterEvent:
    """One scheduled event; weeks are inclusive and 1-based."""

    kind: EventKind
    label: str
    start_week: int
    end_week: int

    def __post_init__(self) -> None:
        if not 1 <= self.start_week <= self.end_week:
            raise ValueError(
                f"{self.label}: bad week range {self.start_week}..{self.end_week}"
            )

    @property
    def duration_weeks(self) -> int:
        return self.end_week - self.start_week + 1

    def overlaps(self, other: "SemesterEvent") -> bool:
        return not (self.end_week < other.start_week or other.end_week < self.start_week)


@dataclass(frozen=True)
class Semester:
    """A validated semester schedule."""

    events: tuple[SemesterEvent, ...]
    n_weeks: int = SEMESTER_WEEKS

    def __post_init__(self) -> None:
        for event in self.events:
            if event.end_week > self.n_weeks:
                raise ValueError(
                    f"{event.label} ends week {event.end_week}, past week {self.n_weeks}"
                )
        assignments = self.of_kind(EventKind.ASSIGNMENT)
        for a, b in zip(assignments, assignments[1:]):
            if a.overlaps(b):
                raise ValueError(f"assignments overlap: {a.label} and {b.label}")

    def of_kind(self, kind: EventKind) -> tuple[SemesterEvent, ...]:
        return tuple(
            sorted(
                (e for e in self.events if e.kind is kind),
                key=lambda e: (e.start_week, e.label),
            )
        )

    def week_events(self, week: int) -> tuple[SemesterEvent, ...]:
        if not 1 <= week <= self.n_weeks:
            raise ValueError(f"week {week} outside semester")
        return tuple(
            e for e in self.events if e.start_week <= week <= e.end_week
        )

    @property
    def survey_weeks(self) -> tuple[int, ...]:
        return tuple(e.start_week for e in self.of_kind(EventKind.SURVEY))

    def render(self) -> str:
        """ASCII Gantt — the regenerated Fig. 1."""
        width = 3
        header = "week        " + "".join(f"{w:>{width}}" for w in range(1, self.n_weeks + 1))
        lines = [header]
        for event in sorted(self.events, key=lambda e: (e.start_week, e.label)):
            row = [f"{event.label:<12.12}"]
            for week in range(1, self.n_weeks + 1):
                mark = "==" if event.start_week <= week <= event.end_week else "  "
                row.append(f"{mark:>{width}}")
            lines.append("".join(row))
        return "\n".join(lines)


def paper_timeline() -> Semester:
    """The Fig. 1 schedule."""
    events = [
        SemesterEvent(EventKind.TEAM_FORMATION, "teams", 1, 1),
    ]
    for i in range(5):
        start = 2 + 2 * i
        events.append(
            SemesterEvent(EventKind.ASSIGNMENT, f"assignment {i + 1}", start, start + 1)
        )
        events.append(SemesterEvent(EventKind.QUIZ, f"quiz {i + 1}", start + 2, start + 2))
    events.append(SemesterEvent(EventKind.MIDTERM, "midterm", 8, 8))
    events.append(SemesterEvent(EventKind.SURVEY, "survey 1", 8, 8))
    events.append(SemesterEvent(EventKind.FINAL, "final", 15, 15))
    events.append(SemesterEvent(EventKind.SURVEY, "survey 2", 15, 15))
    return Semester(events=tuple(events))
