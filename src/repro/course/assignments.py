"""The five assignments, with executable programming tasks.

Every assignment carries its study questions and deliverables verbatim
from the paper's §II.A; each *programming* task is wired to the module
that implements it, so :func:`run_assignment_programs` genuinely executes
the parallel programs a team would have run on its Pi (the course
simulator calls this during a study run).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.course.materials import MATERIALS_BY_ASSIGNMENT

__all__ = ["Deliverable", "Assignment", "all_assignments", "run_assignment_programs"]


@dataclass(frozen=True)
class Deliverable:
    """One required deliverable of every assignment packet."""

    name: str
    description: str


#: Every assignment requires the same four deliverables (§II.A).
STANDARD_DELIVERABLES: tuple[Deliverable, ...] = (
    Deliverable(
        "planning", "work breakdown structure: assignee, email, task, "
        "duration in hours, dependency, due date, note",
    ),
    Deliverable("collaboration", "evidence of collaboration in the team's "
                "Slack workspace and GitHub repository"),
    Deliverable("report", "written report with explained screenshots and "
                "code snippets (unexplained attachments receive no credit)"),
    Deliverable("video", "5-10 minute YouTube presentation; every member "
                "introduces their role, tasks, and lessons"),
)


@dataclass(frozen=True)
class Assignment:
    """One two-week assignment."""

    number: int
    title: str
    focus: str                                   # "soft skills" / "parallel programming"
    questions: tuple[str, ...]
    programs: Mapping[str, Callable[[], Any]] = field(default_factory=dict)
    deliverables: tuple[Deliverable, ...] = STANDARD_DELIVERABLES

    @property
    def material_keys(self) -> tuple[str, ...]:
        return MATERIALS_BY_ASSIGNMENT[self.number]

    @property
    def duration_weeks(self) -> int:
        return 2


def _assignment1() -> Assignment:
    return Assignment(
        number=1,
        title="Teamwork basics and teamwork technologies",
        focus="soft skills",
        questions=(
            "Establish the team Ground Rules: work norms, facilitator norms, "
            "communication norms, meeting norms, handling difficult behavior, "
            "handling group problems.",
            "Learn, apply and report how to utilize Slack, GitHub, an online "
            "word processor, and YouTube for the team's workflow.",
        ),
        programs={},
    )


def _assignment2() -> Assignment:
    from repro.patternlets.datarace import run_race_demo
    from repro.patternlets.forkjoin import run_fork_join
    from repro.patternlets.spmd import run_spmd
    from repro.rpi.setup import PiSetup

    return Assignment(
        number=2,
        title="Raspberry Pi bring-up and first parallel programs",
        focus="parallel programming",
        questions=(
            "Identify the components on the Raspberry PI B+.",
            "How many cores does the Raspberry Pi's B+ CPU have?",
            "What is the difference between sequential and parallel "
            "computation and identify the practical significance of each?",
            "Identify the basic form of data and task parallelism in "
            "computational problems.",
            "Explain the differences between processes and threads.",
            "What is OpenMP and what is OpenMP pragmas?",
            "What applications benefit from multi-core?",
        ),
        programs={
            "pi_setup": lambda: PiSetup.quickstart(),
            "fork_join": lambda: run_fork_join(num_threads=4),
            "spmd": lambda: run_spmd(num_threads=4),
            "shared_memory_race": lambda: run_race_demo(num_threads=4,
                                                        increments_per_thread=200),
        },
    )


def _assignment3() -> Assignment:
    from repro.patternlets.parallel_loop import run_equal_chunks
    from repro.patternlets.reduction_loop import run_reduction_loop
    from repro.patternlets.scheduling import run_scheduling_demo

    return Assignment(
        number=3,
        title="Loop parallelism, scheduling, and architecture taxonomy",
        focus="parallel programming",
        questions=(
            "What is: Task, Pipelining, Shared Memory, Communications, and "
            "Synchronization?",
            "Classify parallel computers based on Flynn's taxonomy.",
            "What are the Parallel Programming Models?",
            "List and briefly describe the types of Parallel Computer Memory "
            "Architecture.  What type is used by OpenMP and why?",
            "Compare Shared Memory Model with Threads Model.",
            "What is System On Chip (SOC)?  Does Raspberry PI use SOC?",
            "What are the advantages of a System on a Chip rather than "
            "separate CPU, GPU and RAM components?",
        ),
        programs={
            "loops_in_parallel": lambda: run_equal_chunks(num_threads=4, n_iterations=16),
            "loop_scheduling": lambda: run_scheduling_demo(num_threads=4, n_iterations=12),
            "loop_reduction": lambda: run_reduction_loop(num_threads=4, n=500),
        },
    )


def _assignment4() -> Assignment:
    from repro.patternlets.barrier_sync import run_barrier_demo
    from repro.patternlets.masterworker import run_master_worker
    from repro.patternlets.trapezoid import trapezoid_parallel

    return Assignment(
        number=4,
        title="Races, synchronisation, and implementation strategies",
        focus="parallel programming",
        questions=(
            "What is the race condition?  Why is a race condition difficult "
            "to reproduce and debug?  How can it be fixed?  Provide an "
            "example from your Assignment 2.",
            "Compare collective synchronization (barrier) with collective "
            "communication (reduction).",
            "Compare master-worker with fork-join.",
        ),
        programs={
            "trapezoid_integration": lambda: trapezoid_parallel(
                math.sin, 0.0, math.pi, n=1 << 12, num_threads=4
            ),
            "barrier_coordination": lambda: run_barrier_demo(num_threads=4),
            "master_worker": lambda: run_master_worker(
                list(range(24)), lambda x: x * x, num_threads=4
            ),
        },
    )


def _assignment5() -> Assignment:
    from repro.drugdesign.experiment import DrugDesignConfig, run_assignment5
    from repro.mapreduce.engine import MapReduceEngine
    from repro.mapreduce.jobs import word_count_job

    def mapreduce_example() -> Any:
        engine = MapReduceEngine(n_workers=4)
        docs = [("d1", "map and reduce"), ("d2", "reduce the map"), ("d3", "map map map")]
        return engine.run(word_count_job(), docs)

    return Assignment(
        number=5,
        title="MapReduce and the drug-design exemplar",
        focus="parallel programming",
        questions=(
            "What are the basic steps in building a parallel program?",
            "What is MapReduce?  What is a map and what is a reduce?",
            "Why MapReduce?  Explain how the MapReduce model is executed.",
            "List and describe three examples that are expressed as "
            "MapReduce computations.",
            "When do we use OpenMP, MPI and MapReduce (Hadoop), and why?",
            "Report the Drug Design and DNA problem and its algorithmic "
            "strategy in sequential, OpenMP, and C++11 Threads solutions.",
            "Which approach is fastest?  What are the number of lines in "
            "each file (size of the program vs. performance)?",
            "Increase the number of threads to 5: what is the run time?",
            "Increase the maximum ligand length to 7 and rerun: run times?",
        ),
        programs={
            "mapreduce_wordcount": mapreduce_example,
            "drug_design_baseline": lambda: run_assignment5(DrugDesignConfig()),
            "drug_design_5_threads": lambda: run_assignment5(
                DrugDesignConfig(num_threads=5)
            ),
            "drug_design_ligand_7": lambda: run_assignment5(
                DrugDesignConfig(max_ligand=7)
            ),
        },
    )


def all_assignments() -> tuple[Assignment, ...]:
    """The five assignments, in order."""
    return (
        _assignment1(),
        _assignment2(),
        _assignment3(),
        _assignment4(),
        _assignment5(),
    )


def run_assignment_programs(assignment: Assignment) -> dict[str, Any]:
    """Execute every program of an assignment; returns results by name.

    This is what the study driver calls so a simulated course run
    actually exercises the parallel substrate end to end.
    """
    return {name: program() for name, program in assignment.programs.items()}
