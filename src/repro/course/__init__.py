"""The CSc 3210 course mechanics.

- :mod:`repro.course.timeline` — the 15-week semester of Fig. 1: team
  formation in week 1, five two-week assignments, quizzes, midterm/final,
  and the two survey administrations.
- :mod:`repro.course.materials` — the six learning materials ([6]–[11])
  each assignment hands out.
- :mod:`repro.course.assignments` — the five assignments with their
  questions, deliverables, and *executable programs* (each programming
  task is wired to the patternlet / exemplar that implements it).
- :mod:`repro.course.grading` — the grading policy: PBL is 25 % of the
  course grade split equally over the five assignments, peer-rating-based
  zero rules, quizzes and exams.
- :mod:`repro.course.rubrics` — the project rubric the paper plans for
  Spring 2019 (its §V future work).
"""

from repro.course.assignments import (
    Assignment,
    Deliverable,
    all_assignments,
    run_assignment_programs,
)
from repro.course.grading import (
    AssignmentGrade,
    CourseGrade,
    GradingPolicy,
    StudentRecord,
)
from repro.course.materials import MATERIALS, Material
from repro.course.quizzes import Quiz, QuizQuestion, grade_quiz, quiz_bank
from repro.course.simulate import SimulatedGradebook, simulate_gradebook
from repro.course.rubrics import Rubric, RubricCriterion, project_rubric
from repro.course.timeline import Semester, SemesterEvent, paper_timeline

__all__ = [
    "Assignment",
    "AssignmentGrade",
    "CourseGrade",
    "Deliverable",
    "GradingPolicy",
    "MATERIALS",
    "Material",
    "Quiz",
    "QuizQuestion",
    "Rubric",
    "RubricCriterion",
    "Semester",
    "SimulatedGradebook",
    "SemesterEvent",
    "StudentRecord",
    "all_assignments",
    "grade_quiz",
    "paper_timeline",
    "project_rubric",
    "quiz_bank",
    "run_assignment_programs",
    "simulate_gradebook",
]
