"""The grading policy.

Paper §II.A: "The PBL module has been assigned 25% of the class overall
grade … equally distributed across the five assignments.  Each student
who contributes in the assignment will receive the team assigned grade.
If a team member refuses to cooperate or partially cooperated on an
assignment, a zero grade will be assigned for that assignment.  If the
problem persists … grades of zeroes will be assigned for the remaining
assignments."  Individual performance is assessed with five quizzes, a
midterm and a final.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

__all__ = ["GradingPolicy", "AssignmentGrade", "StudentRecord", "CourseGrade"]

N_ASSIGNMENTS = 5

#: Peer-rating threshold below which a member "did not cooperate".
COOPERATION_THRESHOLD = 2.0
#: Threshold for "partially cooperated" (also zero per the paper).
PARTIAL_THRESHOLD = 2.5


@dataclass(frozen=True)
class GradingPolicy:
    """Course grade composition."""

    pbl_weight: float = 0.25
    quiz_weight: float = 0.15
    midterm_weight: float = 0.25
    final_weight: float = 0.35
    persistence_rule: bool = True   # zeros propagate after repeat offences

    def __post_init__(self) -> None:
        total = self.pbl_weight + self.quiz_weight + self.midterm_weight + self.final_weight
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"grade weights must sum to 1, got {total}")

    @property
    def per_assignment_weight(self) -> float:
        """Equal split of the PBL weight over the five assignments."""
        return self.pbl_weight / N_ASSIGNMENTS


@dataclass(frozen=True)
class AssignmentGrade:
    """A team's grade on one assignment plus one member's peer standing."""

    assignment_number: int
    team_score: float                 # 0-100, what the team earned
    peer_rating: float                # mean rating this member received

    def __post_init__(self) -> None:
        if not 1 <= self.assignment_number <= N_ASSIGNMENTS:
            raise ValueError(f"assignment number {self.assignment_number} out of range")
        if not 0.0 <= self.team_score <= 100.0:
            raise ValueError(f"team score {self.team_score} outside [0, 100]")
        if not 1.0 <= self.peer_rating <= 5.0:
            raise ValueError(f"peer rating {self.peer_rating} outside [1, 5]")

    @property
    def cooperated(self) -> bool:
        return self.peer_rating >= PARTIAL_THRESHOLD


@dataclass(frozen=True)
class StudentRecord:
    """Everything that goes into one student's course grade."""

    student_id: str
    assignment_grades: tuple[AssignmentGrade, ...]
    quiz_scores: tuple[float, ...]        # 5 quizzes, 0-100
    midterm: float
    final: float

    def __post_init__(self) -> None:
        if len(self.assignment_grades) != N_ASSIGNMENTS:
            raise ValueError(f"need {N_ASSIGNMENTS} assignment grades")
        if len(self.quiz_scores) != N_ASSIGNMENTS:
            raise ValueError(f"need {N_ASSIGNMENTS} quiz scores")
        for score in (*self.quiz_scores, self.midterm, self.final):
            if not 0.0 <= score <= 100.0:
                raise ValueError(f"score {score} outside [0, 100]")


@dataclass(frozen=True)
class CourseGrade:
    """The computed grade with its PBL component broken out."""

    student_id: str
    pbl_scores: tuple[float, ...]     # per-assignment, zeros applied
    pbl_component: float
    quiz_component: float
    midterm_component: float
    final_component: float

    @property
    def total(self) -> float:
        return (
            self.pbl_component + self.quiz_component
            + self.midterm_component + self.final_component
        )


def grade_student(record: StudentRecord, policy: GradingPolicy | None = None) -> CourseGrade:
    """Apply the paper's grading rules to one student.

    Zero rules: an assignment where the member did not cooperate scores
    zero *for that member*.  Under the persistence rule, once a member has
    failed to cooperate twice, all remaining assignments are zeroed (the
    "problem persists" clause).
    """
    p = policy or GradingPolicy()
    pbl_scores: list[float] = []
    offences = 0
    for grade in sorted(record.assignment_grades, key=lambda g: g.assignment_number):
        if p.persistence_rule and offences >= 2:
            pbl_scores.append(0.0)
            continue
        if grade.cooperated:
            pbl_scores.append(grade.team_score)
        else:
            offences += 1
            pbl_scores.append(0.0)
    pbl_component = sum(s * p.per_assignment_weight for s in pbl_scores)
    quiz_component = (sum(record.quiz_scores) / len(record.quiz_scores)) * p.quiz_weight
    return CourseGrade(
        student_id=record.student_id,
        pbl_scores=tuple(pbl_scores),
        pbl_component=pbl_component,
        quiz_component=quiz_component,
        midterm_component=record.midterm * p.midterm_weight,
        final_component=record.final * p.final_weight,
    )
