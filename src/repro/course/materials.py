"""The learning materials catalogue.

The paper hands each assignment one or more of six materials (its
references [6]–[11]).  The mapping below is the one §II.A specifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

__all__ = ["Material", "MATERIALS", "MATERIALS_BY_ASSIGNMENT"]


@dataclass(frozen=True)
class Material:
    """One handout."""

    key: str
    title: str
    source: str
    reference: int   # the paper's bracket number


MATERIALS: Mapping[str, Material] = MappingProxyType({
    "teamwork": Material(
        "teamwork", "Teamwork Basics",
        "MIT OpenCourseWare, Sloan Communication Program", 6,
    ),
    "rpi": Material(
        "rpi", "Raspberry PI Multicore architecture",
        "CSinParallel SIGCSE17 Raspberry Pi workshop", 7,
    ),
    "patternlets": Material(
        "patternlets", "Shared Memory Parallel Patternlets in OpenMP",
        "CSinParallel", 8,
    ),
    "llnl": Material(
        "llnl", "Introduction to Parallel Computing",
        "Blaise Barney, Lawrence Livermore National Laboratory", 9,
    ),
    "soc": Material(
        "soc", "CPU vs. SOC - The battle for the future of computing",
        "N. Zlatanov, International System-on-Chip Conference", 10,
    ),
    "mapreduce": Material(
        "mapreduce", "Introduction to Parallel Programming and MapReduce",
        "Google (via UW CSE 490h)", 11,
    ),
})

#: Which materials each assignment hands out (paper §II.A).
MATERIALS_BY_ASSIGNMENT: Mapping[int, tuple[str, ...]] = MappingProxyType({
    1: ("teamwork",),
    2: ("rpi", "patternlets", "llnl"),
    3: ("rpi", "patternlets", "llnl", "soc"),
    4: ("patternlets", "llnl"),
    5: ("mapreduce", "rpi"),
})
