"""The five quizzes, auto-graded against the substrate.

"To assess individuals' performance, one quiz after each assignment due
date is to be taken (five in total)."  Each quiz question here carries a
checker that computes the correct answer *from the library itself* —
e.g. the Pi's core count comes from the board model, the reduction answer
from actually running the reduction — so the quiz bank can never drift
out of sync with the material.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["QuizQuestion", "Quiz", "quiz_bank", "grade_quiz"]


@dataclass(frozen=True)
class QuizQuestion:
    """One auto-graded question."""

    prompt: str
    answer: Callable[[], Any]
    points: float = 1.0

    def check(self, response: Any) -> bool:
        return response == self.answer()


@dataclass(frozen=True)
class Quiz:
    """One quiz: follows assignment ``assignment_number``."""

    assignment_number: int
    questions: tuple[QuizQuestion, ...]

    @property
    def total_points(self) -> float:
        return sum(q.points for q in self.questions)


def quiz_bank() -> tuple[Quiz, ...]:
    """The five quizzes, one per assignment."""
    from repro.arch.flynn import classify
    from repro.openmp.loops import Schedule, chunk_iterations
    from repro.rpi.soc import RaspberryPi3BPlus
    from repro.teamtech.youtube import MAX_MINUTES, MIN_MINUTES

    quiz1 = Quiz(1, (
        QuizQuestion(
            "How long must the group video be, in minutes (min, max)?",
            lambda: (MIN_MINUTES, MAX_MINUTES),
        ),
        QuizQuestion(
            "How many teamwork technologies must every team adopt "
            "(Slack, GitHub, online docs, YouTube)?",
            lambda: 4,
        ),
    ))
    quiz2 = Quiz(2, (
        QuizQuestion(
            "How many cores does the Raspberry Pi 3 B+'s CPU have?",
            lambda: RaspberryPi3BPlus().n_cores,
        ),
        QuizQuestion(
            "Does the Raspberry Pi use a System on Chip? (True/False)",
            lambda: RaspberryPi3BPlus().soc.is_soc,
        ),
        QuizQuestion(
            "In fork-join, how many threads print the 'after' message "
            "when OMP_NUM_THREADS=4?",
            lambda: 1,
        ),
    ))
    quiz3 = Quiz(3, (
        QuizQuestion(
            "Classify a machine with 1 instruction stream and 8 data "
            "streams under Flynn's taxonomy.",
            lambda: classify(1, 8),
        ),
        QuizQuestion(
            "With schedule(static,2), 8 iterations, 2 threads: which "
            "iterations does thread 0 run?",
            lambda: chunk_iterations(8, 2, Schedule.static(chunk=2))[0],
        ),
        QuizQuestion(
            "Which memory architecture does OpenMP target?",
            lambda: "shared memory",
        ),
    ))
    quiz4 = Quiz(4, (
        QuizQuestion(
            "A barrier performs collective ___ while a reduction performs "
            "collective ___ (synchronization/communication).",
            lambda: ("synchronization", "communication"),
        ),
        QuizQuestion(
            "In the master-worker pattern with 4 threads, how many threads "
            "act as workers?",
            lambda: 3,
        ),
        QuizQuestion(
            "sum(0..99) computed with reduction(+) equals?",
            lambda: sum(range(100)),
        ),
    ))
    quiz5 = Quiz(5, (
        QuizQuestion(
            "In MapReduce, which phase groups intermediate values by key?",
            lambda: "shuffle",
        ),
        QuizQuestion(
            "Word count of 'map reduce map': how many times does 'map' "
            "appear?",
            lambda: 2,
        ),
        QuizQuestion(
            "Which of OpenMP / MPI / MapReduce targets distributed "
            "memory with explicit messages?",
            lambda: "MPI",
        ),
    ))
    return (quiz1, quiz2, quiz3, quiz4, quiz5)


def grade_quiz(quiz: Quiz, responses: tuple[Any, ...]) -> float:
    """Score a quiz attempt on a 0–100 scale."""
    if len(responses) != len(quiz.questions):
        raise ValueError(
            f"quiz {quiz.assignment_number} has {len(quiz.questions)} "
            f"questions, got {len(responses)} responses"
        )
    earned = sum(
        q.points for q, r in zip(quiz.questions, responses) if q.check(r)
    )
    return round(100.0 * earned / quiz.total_points, 2)
