"""Project rubrics — the paper's planned Spring-2019 improvement.

§V: "We also plan on developing project rubrics, as it helps improve
students' learning, identify what quality work is, and reduce the
assignments grading overheads."  We implement that future-work item: a
weighted-criteria rubric over the standard deliverables, with defined
performance levels, scoring, and a grading-overhead estimate (the
motivation the paper cites).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

__all__ = ["RubricCriterion", "Rubric", "project_rubric"]

#: Performance levels and their score multipliers.
LEVELS: Mapping[str, float] = {
    "exemplary": 1.0,
    "proficient": 0.85,
    "developing": 0.65,
    "beginning": 0.4,
    "missing": 0.0,
}


@dataclass(frozen=True)
class RubricCriterion:
    """One scored criterion."""

    name: str
    weight: float                    # fraction of the assignment grade
    descriptors: Mapping[str, str]   # level -> what that level looks like

    def __post_init__(self) -> None:
        if not 0.0 < self.weight <= 1.0:
            raise ValueError(f"weight must be in (0, 1], got {self.weight}")
        missing = set(LEVELS) - set(self.descriptors)
        if missing:
            raise ValueError(f"criterion {self.name!r} lacks levels {sorted(missing)}")


@dataclass(frozen=True)
class Rubric:
    """A weighted rubric; weights must sum to 1."""

    title: str
    criteria: tuple[RubricCriterion, ...]

    def __post_init__(self) -> None:
        total = sum(c.weight for c in self.criteria)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"criterion weights must sum to 1, got {total}")

    def score(self, levels: Mapping[str, str]) -> float:
        """Score an assignment (0–100) from per-criterion level choices."""
        expected = {c.name for c in self.criteria}
        if set(levels) != expected:
            raise ValueError(
                f"levels must cover exactly {sorted(expected)}, got {sorted(levels)}"
            )
        total = 0.0
        for criterion in self.criteria:
            level = levels[criterion.name]
            if level not in LEVELS:
                raise ValueError(f"unknown level {level!r} for {criterion.name!r}")
            total += criterion.weight * LEVELS[level]
        return round(100.0 * total, 2)


def _descriptors(topic: str) -> dict[str, str]:
    return {
        "exemplary": f"{topic} complete, correct, and insightful",
        "proficient": f"{topic} complete with minor gaps",
        "developing": f"{topic} attempted but with significant gaps",
        "beginning": f"{topic} superficial",
        "missing": f"{topic} absent",
    }


def project_rubric() -> Rubric:
    """The assignment rubric over the paper's four deliverables + code."""
    return Rubric(
        title="PBL assignment rubric (CSc 3210)",
        criteria=(
            RubricCriterion("planning", 0.15,
                            _descriptors("work breakdown structure")),
            RubricCriterion("collaboration", 0.15,
                            _descriptors("use of Slack/GitHub evidence")),
            RubricCriterion("programs", 0.30,
                            _descriptors("parallel programs and observations")),
            RubricCriterion("report", 0.25,
                            _descriptors("written explanation of results")),
            RubricCriterion("video", 0.15,
                            _descriptors("team video presentation")),
        ),
    )
