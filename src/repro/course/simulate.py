"""Simulate the gradebook for a full course run.

The paper's grading machinery (team scores, peer ratings with the zero
rules, five quizzes, midterm, final) needs inputs; this module generates
them, seeded and ability-linked:

- each team's assignment scores sit near a team-quality baseline (the
  rubric's realistic range) with per-assignment noise;
- peer ratings are cooperative for almost everyone; a small number of
  deterministic "offenders" trigger the paper's zero rules so the policy
  path is exercised in every study run;
- individual quiz/exam scores track the student's ability index plus
  noise.

The output is one :class:`~repro.course.grading.CourseGrade` per student.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cohort.peer_rating import PeerRating, PeerRatingForm
from repro.cohort.teams import Team
from repro.course.grading import (
    AssignmentGrade,
    CourseGrade,
    N_ASSIGNMENTS,
    StudentRecord,
    grade_student,
)

__all__ = ["SimulatedGradebook", "simulate_gradebook"]


@dataclass(frozen=True)
class SimulatedGradebook:
    """Everything the grade simulation produced."""

    grades: dict[str, CourseGrade]
    peer_forms: tuple[PeerRatingForm, ...]
    offenders: tuple[str, ...]

    @property
    def mean_total(self) -> float:
        totals = [g.total for g in self.grades.values()]
        return sum(totals) / len(totals)


def _clip_score(value: float) -> float:
    return float(min(100.0, max(0.0, value)))


def simulate_gradebook(
    teams: Sequence[Team],
    seed: int = 2018,
    n_offenders: int = 2,
) -> SimulatedGradebook:
    """Generate and grade a full semester for every student.

    ``n_offenders`` students (chosen deterministically from the seed) stop
    cooperating from assignment 2 on — enough to exercise both the
    single-assignment zero and the persistence rule.
    """
    if not teams:
        raise ValueError("need at least one team")
    rng = np.random.default_rng(seed + 1)

    all_students = [m for team in teams for m in team.members]
    offender_ids = {
        s.student_id
        for s in rng.choice(np.array(all_students, dtype=object),
                            size=min(n_offenders, len(all_students)),
                            replace=False)
    }

    forms: list[PeerRatingForm] = []
    grades: dict[str, CourseGrade] = {}

    team_quality = {
        team.team_id: float(np.clip(rng.normal(82.0 + 14.0 * team.mean_ability, 4.0),
                                    55.0, 100.0))
        for team in teams
    }

    for team in teams:
        member_ids = [m.student_id for m in team.members]
        team_scores = [
            _clip_score(team_quality[team.team_id] + rng.normal(0.0, 3.0))
            for _ in range(N_ASSIGNMENTS)
        ]
        # Peer ratings per assignment.
        per_member_rating: dict[str, list[float]] = {m: [] for m in member_ids}
        for assignment_number in range(1, N_ASSIGNMENTS + 1):
            ratings = []
            for rater in member_ids:
                for ratee in member_ids:
                    if rater == ratee:
                        continue
                    offending = (
                        ratee in offender_ids and assignment_number >= 2
                    )
                    adjective = "no show" if offending else rng.choice(
                        ["excellent", "very good", "satisfactory"],
                        p=[0.3, 0.5, 0.2],
                    )
                    ratings.append(PeerRating(rater, ratee, str(adjective)))
            form = PeerRatingForm(
                team_id=team.team_id,
                assignment_number=assignment_number,
                ratings=tuple(ratings),
            )
            form.validate_against(team)
            forms.append(form)
            received: dict[str, list[float]] = {m: [] for m in member_ids}
            for rating in ratings:
                received[rating.ratee_id].append(rating.value)
            for member, values in received.items():
                per_member_rating[member].append(sum(values) / len(values))

        for member in team.members:
            ability = member.ability_index
            assignment_grades = tuple(
                AssignmentGrade(
                    assignment_number=a + 1,
                    team_score=team_scores[a],
                    peer_rating=float(np.clip(per_member_rating[member.student_id][a],
                                              1.0, 5.0)),
                )
                for a in range(N_ASSIGNMENTS)
            )
            quiz_scores = tuple(
                _clip_score(rng.normal(55.0 + 45.0 * ability, 8.0))
                for _ in range(N_ASSIGNMENTS)
            )
            record = StudentRecord(
                student_id=member.student_id,
                assignment_grades=assignment_grades,
                quiz_scores=quiz_scores,
                midterm=_clip_score(rng.normal(52.0 + 45.0 * ability, 9.0)),
                final=_clip_score(rng.normal(52.0 + 46.0 * ability, 9.0)),
            )
            grades[member.student_id] = grade_student(record)

    return SimulatedGradebook(
        grades=grades,
        peer_forms=tuple(forms),
        offenders=tuple(sorted(offender_ids)),
    )
