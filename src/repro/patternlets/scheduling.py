"""Patternlet: Scheduling of Parallel Loops (Assignment 3, #2).

"illustrates how to make OpenMP map threads to parallel loop iterations
in chunks of size one, two, and three" — static and dynamic.

The demo runs the same loop under ``schedule(static, c)`` and
``schedule(dynamic, c)`` for c in {1, 2, 3}, capturing the per-thread
iteration mapping, and costs each variant on the simulated Pi so the
overhead difference is a number, not folklore.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.openmp.loops import LoopTrace, Schedule, run_parallel_for
from repro.openmp.runtime import OpenMP
from repro.rpi.machine import CostedLoop, SimulatedPi

__all__ = ["SchedulingDemo", "run_scheduling_demo"]

CHUNK_SIZES = (1, 2, 3)


@dataclass(frozen=True)
class SchedulingDemo:
    """Traces and simulated costs for every schedule variant."""

    num_threads: int
    n_iterations: int
    traces: Mapping[str, LoopTrace]          # "static,1" / "dynamic,2" / ...
    costs: Mapping[str, CostedLoop]

    def render(self) -> str:
        lines = []
        for key, trace in self.traces.items():
            lines.append(trace.render())
            lines.append(f"  simulated: {self.costs[key]}")
        return "\n".join(lines)


def run_scheduling_demo(
    num_threads: int = 4,
    n_iterations: int = 12,
    iteration_costs: Sequence[float] | None = None,
    pi: SimulatedPi | None = None,
) -> SchedulingDemo:
    """Run the chunks-of-1/2/3 demo, static and dynamic.

    ``iteration_costs`` (us per iteration, default uniform 10us) feeds the
    simulated-Pi costing; the thread mapping itself comes from actually
    running the loop on the runtime.
    """
    omp = OpenMP(num_threads)
    machine = pi or SimulatedPi(n_cores=num_threads)
    costs = list(iteration_costs) if iteration_costs is not None else [10.0] * n_iterations
    if len(costs) != n_iterations:
        raise ValueError(f"need {n_iterations} iteration costs, got {len(costs)}")

    traces: dict[str, LoopTrace] = {}
    costed: dict[str, CostedLoop] = {}
    for chunk in CHUNK_SIZES:
        for schedule in (Schedule.static(chunk=chunk), Schedule.dynamic(chunk=chunk)):
            key = f"{schedule.kind.value},{chunk}"
            _, trace = run_parallel_for(omp, n_iterations, lambda i, ctx: None, schedule)
            traces[key] = trace
            costed[key] = machine.cost_loop(costs, schedule)
    return SchedulingDemo(
        num_threads=num_threads,
        n_iterations=n_iterations,
        traces=traces,
        costs=costed,
    )
