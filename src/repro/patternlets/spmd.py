"""Patternlet: Single Program Multiple Data (Assignment 2, program 2).

Every thread runs the *same* program text; behaviour differs only through
``omp_get_thread_num()`` / ``omp_get_num_threads()`` — the two calls this
patternlet introduces.  The classic output is "Hello from thread N of M".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.openmp.runtime import OpenMP

__all__ = ["SPMDDemo", "run_spmd"]


@dataclass(frozen=True)
class SPMDDemo:
    """Captured output of the SPMD patternlet."""

    num_threads: int
    greetings: tuple[str, ...]
    thread_ids: tuple[int, ...]

    def render(self) -> str:
        return "\n".join(self.greetings)


def run_spmd(num_threads: int = 4) -> SPMDDemo:
    """Run the SPMD hello patternlet."""

    def body(ctx) -> tuple[int, str]:
        return ctx.thread_num, f"Hello from thread {ctx.thread_num} of {ctx.num_threads}"

    results = OpenMP(num_threads).parallel(body)
    return SPMDDemo(
        num_threads=num_threads,
        greetings=tuple(msg for _tid, msg in results),
        thread_ids=tuple(tid for tid, _msg in results),
    )
