"""Patternlet: Running Loops in Parallel — equal chunks (Assignment 3, #1).

"illustrates the use of OpenMP's default parallel for loop in which
threads iterate through equal sized chunks of the index range."

The demo fills an array in parallel with the default static schedule and
records which thread wrote each slot, so the contiguous equal-chunk
mapping is visible and assertable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.openmp.loops import Schedule, run_parallel_for
from repro.openmp.runtime import OpenMP

__all__ = ["EqualChunksDemo", "run_equal_chunks"]


@dataclass(frozen=True)
class EqualChunksDemo:
    """Which thread handled which index under the default static schedule."""

    num_threads: int
    n_iterations: int
    owner: tuple[int, ...]           # owner[i] = thread that executed i
    values: tuple[float, ...]        # the computed array

    def chunk_bounds(self) -> list[tuple[int, int]]:
        """(first, last) iteration per thread, in thread order."""
        bounds = []
        for tid in range(self.num_threads):
            mine = [i for i, owner in enumerate(self.owner) if owner == tid]
            if mine:
                bounds.append((mine[0], mine[-1]))
            else:
                bounds.append((-1, -1))
        return bounds

    def render(self) -> str:
        lines = [f"parallel for, {self.n_iterations} iterations on "
                 f"{self.num_threads} threads (default static):"]
        for tid, (lo, hi) in enumerate(self.chunk_bounds()):
            if lo < 0:
                lines.append(f"  thread {tid}: (no iterations)")
            else:
                lines.append(f"  thread {tid}: iterations {lo}..{hi}")
        return "\n".join(lines)


def run_equal_chunks(num_threads: int = 4, n_iterations: int = 16) -> EqualChunksDemo:
    """Fill ``a[i] = i * i`` in parallel, recording ownership."""
    omp = OpenMP(num_threads)
    owner = [-1] * n_iterations
    values = [0.0] * n_iterations

    def body(i: int, ctx) -> None:
        owner[i] = ctx.thread_num        # each slot written exactly once: no race
        values[i] = float(i * i)

    run_parallel_for(omp, n_iterations, body, Schedule.static())
    return EqualChunksDemo(
        num_threads=num_threads,
        n_iterations=n_iterations,
        owner=tuple(owner),
        values=tuple(values),
    )
