"""Patternlet: The Master-Worker Implementation Strategy (A4, #3).

"illustrates the master-worker pattern in OpenMP."

Thread 0 (the master) fills a shared work queue and collects results;
the workers repeatedly take tasks until the queue is drained.  Assignment
4 asks students to compare "master-worker with fork-join": in fork-join
all threads are peers executing the same region; in master-worker one
thread coordinates and the others serve — the demo records who did what
so the asymmetry is assertable.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.openmp.runtime import OpenMP

__all__ = ["MasterWorkerDemo", "run_master_worker"]

_STOP = object()


@dataclass(frozen=True)
class MasterWorkerDemo:
    """Outcome of a master-worker run."""

    num_threads: int
    n_tasks: int
    results: tuple[object, ...]           # in task order
    tasks_by_thread: tuple[int, ...]      # tasks completed per thread
    master_thread: int = 0

    @property
    def master_did_no_tasks(self) -> bool:
        return self.tasks_by_thread[self.master_thread] == 0

    def render(self) -> str:
        lines = [f"master-worker: {self.n_tasks} tasks, "
                 f"{self.num_threads} threads (thread {self.master_thread} is master)"]
        for tid, count in enumerate(self.tasks_by_thread):
            role = "master" if tid == self.master_thread else "worker"
            lines.append(f"  thread {tid} ({role}): {count} tasks")
        return "\n".join(lines)


def run_master_worker(
    tasks: Sequence[object],
    work: Callable[[object], object],
    num_threads: int = 4,
) -> MasterWorkerDemo:
    """Process ``tasks`` with one master and ``num_threads - 1`` workers.

    Degenerate case: with one thread the "master" does everything itself
    (matching how an OpenMP master-worker program behaves at
    ``OMP_NUM_THREADS=1``).
    """
    if num_threads < 1:
        raise ValueError(f"num_threads must be >= 1, got {num_threads}")
    n = len(tasks)
    results: list[object] = [None] * n
    done_by: list[int] = [0] * num_threads
    work_queue: queue.Queue = queue.Queue()
    counts_lock = threading.Lock()

    if num_threads == 1:
        for idx, task in enumerate(tasks):
            results[idx] = work(task)
            done_by[0] += 1
        return MasterWorkerDemo(
            num_threads=1, n_tasks=n, results=tuple(results),
            tasks_by_thread=tuple(done_by),
        )

    def body(ctx) -> None:
        if ctx.thread_num == 0:
            # Master: publish all tasks, then one stop token per worker.
            for idx, task in enumerate(tasks):
                work_queue.put((idx, task))
            for _ in range(ctx.num_threads - 1):
                work_queue.put(_STOP)
        else:
            while True:
                item = work_queue.get()
                if item is _STOP:
                    break
                idx, task = item
                results[idx] = work(task)
                with counts_lock:
                    done_by[ctx.thread_num] += 1

    OpenMP(num_threads).parallel(body)
    return MasterWorkerDemo(
        num_threads=num_threads,
        n_tasks=n,
        results=tuple(results),
        tasks_by_thread=tuple(done_by),
    )
