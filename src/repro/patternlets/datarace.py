"""Patternlet: shared-memory concerns — the data race (Assignment 2, #3).

"By sharing one bank of memory, programmers need to be a bit more careful
about declaring their variables (scope matters) to avoid the data race
problem."

Three variants of the same counting loop:

- **shared, unsynchronised** — every thread does a read-modify-write on
  one shared counter; the detector reports races and (on a real machine)
  updates are lost;
- **private then combine** — each thread counts privately and the
  partials are summed after the join (OpenMP's reduction idiom): correct;
- **shared under a critical section** — correct but serialised.

Assignment 4 then asks "Why [is a] race condition difficult to reproduce
and debug?" — because it is timing-dependent; our detector answers by
*construction* rather than by luck, flagging the unsynchronised pattern
even on runs where no update happens to be lost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.openmp.race import RaceDetector, Shared
from repro.openmp.runtime import OpenMP

__all__ = ["RaceDemo", "run_race_demo"]


@dataclass(frozen=True)
class RaceDemo:
    """Outcome of the three variants."""

    num_threads: int
    increments_per_thread: int
    expected_total: int
    racy_total: int
    racy_races_detected: int
    private_total: int
    private_races_detected: int
    critical_total: int
    critical_races_detected: int

    def render(self) -> str:
        return "\n".join(
            [
                f"expected total: {self.expected_total}",
                f"shared unsynchronised: total={self.racy_total}, "
                f"races detected={self.racy_races_detected}",
                f"private + combine:     total={self.private_total}, "
                f"races detected={self.private_races_detected}",
                f"shared + critical:     total={self.critical_total}, "
                f"races detected={self.critical_races_detected}",
            ]
        )


def run_race_demo(num_threads: int = 4, increments_per_thread: int = 1000) -> RaceDemo:
    """Run all three variants and report totals + detected races."""
    omp = OpenMP(num_threads)
    expected = num_threads * increments_per_thread

    # Variant 1: shared, unsynchronised (racy by design).
    racy_detector = RaceDetector()
    counter = Shared(0, "counter", racy_detector)

    def racy(ctx) -> None:
        for _ in range(increments_per_thread):
            counter.write(counter.read(ctx) + 1, ctx)

    omp.parallel(racy)
    racy_races = len(racy_detector.races(limit=1000))

    # Variant 2: private accumulators combined after the join.
    private_detector = RaceDetector()

    def private(ctx) -> int:
        local = 0  # "declare it inside the region" — scope matters
        for _ in range(increments_per_thread):
            local += 1
        return local

    partials = omp.parallel(private)
    private_total = sum(partials)
    private_races = len(private_detector.races())

    # Variant 3: shared under a critical section.
    critical_detector = RaceDetector()
    safe = Shared(0, "safe_counter", critical_detector)

    def critical(ctx) -> None:
        for _ in range(increments_per_thread):
            with ctx.critical("update"):
                with critical_detector.holding(ctx, "update"):
                    safe.write(safe.read(ctx) + 1, ctx)

    omp.parallel(critical)
    critical_races = len(critical_detector.races())

    return RaceDemo(
        num_threads=num_threads,
        increments_per_thread=increments_per_thread,
        expected_total=expected,
        racy_total=int(counter.value),
        racy_races_detected=racy_races,
        private_total=private_total,
        private_races_detected=private_races,
        critical_total=int(safe.value),
        critical_races_detected=critical_races,
    )
