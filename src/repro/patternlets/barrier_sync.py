"""Patternlet: Coordination — Synchronization with a Barrier (A4, #2).

"illustrates the use of the OpenMP barrier command, using the command
line to control the number of threads."

Each thread records an event before the barrier and one after.  The
property the barrier guarantees — and the demo captures with a logical
clock — is that *every* before-event precedes *every* after-event.
Without the barrier that interleaving is not guaranteed.

Assignment 4 also asks students to compare "collective synchronization
(barrier) with collective communication (reduction)": the barrier orders
*time*, the reduction combines *values*; :func:`run_barrier_demo` returns
both views of the same loop so the comparison is concrete.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass

from repro.openmp.runtime import OpenMP

__all__ = ["BarrierDemo", "run_barrier_demo"]


@dataclass(frozen=True)
class BarrierDemo:
    """Event log of a two-phase computation separated by a barrier."""

    num_threads: int
    events: tuple[tuple[int, str, int], ...]   # (logical time, phase, thread)

    @property
    def barrier_respected(self) -> bool:
        """True iff every phase-1 event precedes every phase-2 event."""
        last_before = max(t for t, phase, _ in self.events if phase == "before")
        first_after = min(t for t, phase, _ in self.events if phase == "after")
        return last_before < first_after

    def render(self) -> str:
        lines = [f"barrier demo on {self.num_threads} threads:"]
        for t, phase, tid in sorted(self.events):
            lines.append(f"  t={t:3d}  thread {tid}  {phase} barrier")
        return "\n".join(lines)


def run_barrier_demo(num_threads: int = 4) -> BarrierDemo:
    """Run the two-phase barrier demo; the command-line analogue is the
    ``num_threads`` argument (the assignment's ``./barrier 8``)."""
    clock = itertools.count()
    clock_lock = threading.Lock()
    events: list[tuple[int, str, int]] = []
    events_lock = threading.Lock()

    def stamp(phase: str, tid: int) -> None:
        with clock_lock:
            t = next(clock)
        with events_lock:
            events.append((t, phase, tid))

    def body(ctx) -> None:
        stamp("before", ctx.thread_num)
        ctx.barrier()
        stamp("after", ctx.thread_num)

    OpenMP(num_threads).parallel(body)
    return BarrierDemo(num_threads=num_threads, events=tuple(events))
