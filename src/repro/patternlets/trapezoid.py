"""Patternlet: Integration Using the Trapezoidal Rule (Assignment 4, #1).

"illustrates the use of parallel for loop, private, shared, and reduction
clauses."

Numerically integrate f over [a, b] with n trapezoids.  The parallel
version work-shares the interior sum with ``reduction(+)``; because the
runtime combines partials in thread order the parallel result is
deterministic, and because addition of the same chunks in a different
association differs only by float rounding, sequential and parallel agree
to ~1e-12 relative — both are asserted in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.openmp.loops import Schedule, run_parallel_for
from repro.openmp.reduction import Reduction
from repro.openmp.runtime import OpenMP

__all__ = ["TrapezoidResult", "trapezoid_sequential", "trapezoid_parallel"]


@dataclass(frozen=True)
class TrapezoidResult:
    """An integral estimate and how it was computed."""

    value: float
    n_trapezoids: int
    num_threads: int
    a: float
    b: float

    def error_against(self, exact: float) -> float:
        return abs(self.value - exact)


def _check(a: float, b: float, n: int) -> None:
    if n < 1:
        raise ValueError(f"need at least 1 trapezoid, got {n}")
    if not b > a:
        raise ValueError(f"need b > a, got [{a}, {b}]")


def trapezoid_sequential(
    f: Callable[[float], float], a: float, b: float, n: int = 1 << 16
) -> TrapezoidResult:
    """Sequential trapezoidal rule with n panels."""
    _check(a, b, n)
    h = (b - a) / n
    total = (f(a) + f(b)) / 2.0
    for i in range(1, n):
        total += f(a + i * h)
    return TrapezoidResult(value=total * h, n_trapezoids=n, num_threads=1, a=a, b=b)


def trapezoid_parallel(
    f: Callable[[float], float],
    a: float,
    b: float,
    n: int = 1 << 16,
    num_threads: int = 4,
    schedule: Schedule | None = None,
) -> TrapezoidResult:
    """Parallel trapezoidal rule: the interior sum is a reduction.

    ``h`` and the endpoints are shared read-only; the loop variable and
    each thread's partial sum are private — the clause structure the
    assignment teaches.
    """
    _check(a, b, n)
    omp = OpenMP(num_threads)
    h = (b - a) / n

    interior, _trace = run_parallel_for(
        omp,
        n - 1,
        lambda i, ctx: None,
        schedule or Schedule.static(),
        reduction=Reduction.SUM,
        value=lambda i: f(a + (i + 1) * h),
    )
    total = (f(a) + f(b)) / 2.0 + interior
    return TrapezoidResult(
        value=total * h, n_trapezoids=n, num_threads=num_threads, a=a, b=b
    )
