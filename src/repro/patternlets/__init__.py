"""The CSinParallel *patternlets* used by Assignments 2–4.

Each module is one of the small illustrative programs the paper has
students "create, compile, run, and modify" on the Pi, rebuilt on our
OpenMP-style runtime.  Every patternlet exposes a ``run(...)`` entry point
returning structured results (so tests can assert semantics) and a
rendered trace (so examples can show students what the paper's C programs
print).

Assignment 2: :mod:`forkjoin`, :mod:`spmd`, :mod:`datarace`.
Assignment 3: :mod:`parallel_loop`, :mod:`scheduling`, :mod:`reduction_loop`.
Assignment 4: :mod:`trapezoid`, :mod:`barrier_sync`, :mod:`masterworker`.
"""

from repro.patternlets.atomic_private import (
    AtomicDemo,
    ScopeDemo,
    run_atomic_demo,
    run_scope_demo,
)
from repro.patternlets.barrier_sync import BarrierDemo, run_barrier_demo
from repro.patternlets.datarace import RaceDemo, run_race_demo
from repro.patternlets.forkjoin import ForkJoinDemo, run_fork_join
from repro.patternlets.masterworker import MasterWorkerDemo, run_master_worker
from repro.patternlets.parallel_loop import EqualChunksDemo, run_equal_chunks
from repro.patternlets.reduction_loop import ReductionDemo, run_reduction_loop
from repro.patternlets.scheduling import SchedulingDemo, run_scheduling_demo
from repro.patternlets.spmd import SPMDDemo, run_spmd
from repro.patternlets.trapezoid import TrapezoidResult, trapezoid_parallel, trapezoid_sequential

__all__ = [
    "AtomicDemo",
    "BarrierDemo",
    "EqualChunksDemo",
    "ForkJoinDemo",
    "MasterWorkerDemo",
    "RaceDemo",
    "ScopeDemo",
    "ReductionDemo",
    "SPMDDemo",
    "SchedulingDemo",
    "TrapezoidResult",
    "run_atomic_demo",
    "run_barrier_demo",
    "run_equal_chunks",
    "run_fork_join",
    "run_master_worker",
    "run_race_demo",
    "run_reduction_loop",
    "run_scope_demo",
    "run_scheduling_demo",
    "run_spmd",
    "trapezoid_parallel",
    "trapezoid_sequential",
]
