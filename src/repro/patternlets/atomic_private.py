"""Patternlet: atomic updates and private/firstprivate scope.

Rounds out the shared-memory-concerns thread of Assignment 2: the same
shared counter updated four ways — racy, ``#pragma omp atomic``,
``#pragma omp critical``, and private-with-combine — plus a demonstration
of variable scope clauses:

- **shared**: one instance, all threads see (and race on) it;
- **private**: each thread gets an *uninitialised* fresh instance;
- **firstprivate**: each thread gets a fresh instance *initialised from
  the value before the region* — the distinction students trip on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.openmp.runtime import OpenMP
from repro.openmp.sync import AtomicCounter

__all__ = ["AtomicDemo", "ScopeDemo", "run_atomic_demo", "run_scope_demo"]


@dataclass(frozen=True)
class AtomicDemo:
    """Totals from the four update strategies."""

    num_threads: int
    increments_per_thread: int
    expected: int
    atomic_total: int
    critical_total: int
    private_total: int

    @property
    def all_correct(self) -> bool:
        return self.atomic_total == self.critical_total == self.private_total == self.expected

    def render(self) -> str:
        return "\n".join([
            f"expected {self.expected}:",
            f"  atomic:            {self.atomic_total}",
            f"  critical:          {self.critical_total}",
            f"  private + combine: {self.private_total}",
        ])


def run_atomic_demo(num_threads: int = 4, increments_per_thread: int = 1000) -> AtomicDemo:
    """Update a counter with atomic / critical / private strategies."""
    omp = OpenMP(num_threads)
    expected = num_threads * increments_per_thread

    atomic = AtomicCounter()
    omp.parallel(lambda ctx: [atomic.add(1) for _ in range(increments_per_thread)])

    critical_box = {"value": 0}

    def critical_body(ctx) -> None:
        for _ in range(increments_per_thread):
            with ctx.critical("count"):
                critical_box["value"] += 1

    omp.parallel(critical_body)

    partials = omp.parallel(lambda ctx: sum(1 for _ in range(increments_per_thread)))

    return AtomicDemo(
        num_threads=num_threads,
        increments_per_thread=increments_per_thread,
        expected=expected,
        atomic_total=atomic.value,
        critical_total=critical_box["value"],
        private_total=sum(partials),
    )


@dataclass(frozen=True)
class ScopeDemo:
    """What each thread observed under the three scope clauses."""

    shared_final: int                 # all threads incremented one instance
    private_values: tuple[int, ...]   # fresh per thread (started at 0)
    firstprivate_values: tuple[int, ...]  # fresh but initialised from outside

    def render(self) -> str:
        return "\n".join([
            f"shared: one instance, final value {self.shared_final}",
            f"private: fresh per thread -> {self.private_values}",
            f"firstprivate: copies of the outer value -> {self.firstprivate_values}",
        ])


def run_scope_demo(num_threads: int = 4, outer_value: int = 100) -> ScopeDemo:
    """Show shared vs private vs firstprivate semantics."""
    omp = OpenMP(num_threads)

    shared = AtomicCounter(0)
    omp.parallel(lambda ctx: shared.add(1))

    # private: each thread starts from nothing (here: 0) and adds its id.
    private_values = tuple(
        omp.parallel(lambda ctx: 0 + ctx.thread_num)
    )

    # firstprivate: each thread starts from a copy of the outer value.
    firstprivate_values = tuple(
        omp.parallel(lambda ctx: outer_value + ctx.thread_num)
    )

    return ScopeDemo(
        shared_final=shared.value,
        private_values=private_values,
        firstprivate_values=firstprivate_values,
    )
