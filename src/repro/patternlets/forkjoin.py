"""Patternlet: the fork-join programming pattern (Assignment 2, program 1).

The C original prints "before", forks a team that each print "during",
then joins and prints "after".  The observable semantics students are
meant to notice: the *before* and *after* lines run once on the initial
thread; the *during* lines run once per team member, in nondeterministic
order; *after* never precedes any *during*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.openmp.runtime import OpenMP

__all__ = ["ForkJoinDemo", "run_fork_join"]


@dataclass(frozen=True)
class ForkJoinDemo:
    """Captured output of the fork-join patternlet."""

    num_threads: int
    before: str
    during: tuple[str, ...]   # in thread order (the runtime returns by id)
    after: str

    def render(self) -> str:
        lines = [self.before]
        lines += list(self.during)
        lines.append(self.after)
        return "\n".join(lines)


def run_fork_join(num_threads: int = 4) -> ForkJoinDemo:
    """Run the fork-join patternlet on ``num_threads`` threads."""
    omp = OpenMP(num_threads)
    during = omp.parallel(
        lambda ctx: f"During the parallel region: thread {ctx.thread_num} of "
        f"{ctx.num_threads}"
    )
    return ForkJoinDemo(
        num_threads=num_threads,
        before="Before the parallel region (sequential, one thread)",
        during=tuple(during),
        after="After the parallel region (joined, one thread again)",
    )
