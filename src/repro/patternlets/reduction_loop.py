"""Patternlet: When Loops Have Dependencies — reduction (Assignment 3, #3).

"illustrates the OpenMP parallel-for loop's reduction clause."

A sum over the index range has a loop-carried dependency on the
accumulator.  The demo shows the three ways students try it:

1. naive shared accumulator → data race (detected);
2. the reduction clause → correct, and bit-identical to sequential for
   integer sums (and deterministic for floats, since we combine partials
   in thread order);
3. the sequential reference.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.openmp.loops import Schedule, run_parallel_for
from repro.openmp.race import RaceDetector, Shared
from repro.openmp.reduction import Reduction
from repro.openmp.runtime import OpenMP

__all__ = ["ReductionDemo", "run_reduction_loop"]


@dataclass(frozen=True)
class ReductionDemo:
    """Results of the dependency-loop variants."""

    num_threads: int
    n: int
    sequential_sum: int
    naive_shared_sum: int
    naive_races_detected: int
    reduction_sum: int

    @property
    def reduction_matches_sequential(self) -> bool:
        return self.reduction_sum == self.sequential_sum

    def render(self) -> str:
        return "\n".join(
            [
                f"sum of 0..{self.n - 1} on {self.num_threads} threads",
                f"sequential:      {self.sequential_sum}",
                f"naive shared:    {self.naive_shared_sum} "
                f"({self.naive_races_detected} races detected)",
                f"reduction(+):    {self.reduction_sum} "
                f"({'matches' if self.reduction_matches_sequential else 'DIFFERS FROM'} sequential)",
            ]
        )


def run_reduction_loop(num_threads: int = 4, n: int = 1000) -> ReductionDemo:
    """Sum 0..n-1 three ways."""
    omp = OpenMP(num_threads)
    sequential = sum(range(n))

    detector = RaceDetector()
    acc = Shared(0, "acc", detector)

    def naive(i: int, ctx) -> None:
        acc.write(acc.read(ctx) + i, ctx)    # loop-carried dependency, shared

    run_parallel_for(omp, n, naive, Schedule.static())
    races = len(detector.races(limit=1000))

    reduced, _trace = run_parallel_for(
        omp, n, lambda i, ctx: None, Schedule.static(),
        reduction=Reduction.SUM, value=lambda i: i,
    )

    return ReductionDemo(
        num_threads=num_threads,
        n=n,
        sequential_sum=sequential,
        naive_shared_sum=int(acc.value),
        naive_races_detected=races,
        reduction_sum=int(reduced),
    )
