"""Course sections.

Two sections of CSc 3210 were used in Fall 2018, 62 students each (16 women
in the first, 10 in the second), taught by the same instructor with the
same PBL strategy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cohort.students import Gender, Student, generate_cohort

__all__ = ["Section", "make_paper_sections"]


@dataclass(frozen=True)
class Section:
    """One course section."""

    section_id: str
    students: tuple[Student, ...]

    @property
    def n(self) -> int:
        return len(self.students)

    @property
    def n_female(self) -> int:
        return sum(1 for s in self.students if s.gender is Gender.FEMALE)

    @property
    def n_male(self) -> int:
        return self.n - self.n_female


def make_paper_sections(seed: int = 2018) -> tuple[Section, Section]:
    """Split a generated cohort into the paper's two sections.

    Section 1: 62 students, 16 women.  Section 2: 62 students, 10 women.
    The full cohort has exactly the paper's 98 M / 26 F marginals.
    """
    cohort = generate_cohort(seed=seed)
    females = [s for s in cohort if s.gender is Gender.FEMALE]
    males = [s for s in cohort if s.gender is Gender.MALE]
    if len(females) != 26 or len(males) != 98:
        raise AssertionError("cohort generator violated the paper's gender marginals")

    sec1 = tuple(sorted(females[:16] + males[:46]))
    sec2 = tuple(sorted(females[16:] + males[46:]))
    return (
        Section(section_id="CSc3210-01", students=sec1),
        Section(section_id="CSc3210-02", students=sec2),
    )
