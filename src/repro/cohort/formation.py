"""Multi-criteria balanced team formation.

The paper: "students in each section were organized into thirteen diverse
groups (up to five per group) based on the following criteria: gender,
system and programming experience, experience in group work, GPA, and
technical writing experience.  These criteria are intended to balance
groups in terms of ability and assure a mixed gender and avoidance of
predetermined groups of friends.  Having the instructor form teams based
on predetermined criteria has been found to be more effective than when
students form their own [Oakley et al. 2004]."

We implement that as an optimisation problem:

1. **ability balance** — minimise the spread of team-mean ability
   (:attr:`Student.ability_index`, which folds in GPA and all four
   experience levels);
2. **mixed gender** — avoid teams with exactly one woman (Oakley et al.
   recommend either zero or at least two, so no one is isolated);
3. **friend avoidance** — an optional set of "friend pairs" that must not
   be placed together.

The solver is a deterministic snake draft (sorted by ability) followed by
a local-search improvement phase over pairwise swaps — small-instance
exact enough in practice, and every invariant is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.cohort.students import Gender, Student
from repro.cohort.teams import MAX_TEAM_SIZE, MIN_TEAM_SIZE, Team

__all__ = ["FormationCriteria", "form_teams", "random_teams", "balance_report"]


@dataclass(frozen=True)
class FormationCriteria:
    """Weights and constraints of the formation objective."""

    ability_weight: float = 1.0
    solo_female_penalty: float = 1.0
    friend_pairs: frozenset[frozenset[str]] = field(default_factory=frozenset)
    max_swap_rounds: int = 200

    def __post_init__(self) -> None:
        if self.ability_weight < 0 or self.solo_female_penalty < 0:
            raise ValueError("criteria weights must be non-negative")
        for pair in self.friend_pairs:
            if len(pair) != 2:
                raise ValueError(f"friend pair must contain exactly 2 ids, got {sorted(pair)}")


def team_sizes(n_students: int, n_teams: int) -> list[int]:
    """Sizes of ``n_teams`` teams covering ``n_students``, each 4 or 5.

    Larger teams first (62 students / 13 teams -> ten 5s then three 4s).
    """
    if n_teams < 1:
        raise ValueError(f"n_teams must be >= 1, got {n_teams}")
    base = n_students // n_teams
    remainder = n_students % n_teams
    sizes = [base + 1] * remainder + [base] * (n_teams - remainder)
    bad = [s for s in sizes if not MIN_TEAM_SIZE <= s <= MAX_TEAM_SIZE]
    if bad:
        raise ValueError(
            f"{n_students} students cannot form {n_teams} teams of "
            f"{MIN_TEAM_SIZE}-{MAX_TEAM_SIZE}: got sizes {sorted(set(sizes))}"
        )
    return sizes


def _objective(
    teams: list[list[Student]], criteria: FormationCriteria
) -> float:
    """Lower is better: ability spread + gender-isolation + friend penalties."""
    means = [sum(s.ability_index for s in t) / len(t) for t in teams]
    grand = sum(means) / len(means)
    ability = sum((m - grand) ** 2 for m in means) / len(means)

    solo = 0
    for t in teams:
        n_f = sum(1 for s in t if s.gender is Gender.FEMALE)
        if n_f == 1:
            solo += 1

    friends = 0
    if criteria.friend_pairs:
        for t in teams:
            ids = {s.student_id for s in t}
            friends += sum(1 for pair in criteria.friend_pairs if pair <= ids)

    return (
        criteria.ability_weight * ability
        + criteria.solo_female_penalty * solo
        + 10.0 * friends  # hard-ish constraint: dominated by any swap that fixes it
    )


def _snake_draft(students: Sequence[Student], sizes: list[int]) -> list[list[Student]]:
    """Deterministic snake draft by descending ability."""
    n_teams = len(sizes)
    ranked = sorted(students, key=lambda s: (-s.ability_index, s.student_id))
    teams: list[list[Student]] = [[] for _ in range(n_teams)]
    order = list(range(n_teams))
    idx = 0
    direction = 1
    for student in ranked:
        # Find next team (in snake order) that still has capacity.
        for _ in range(2 * n_teams):
            t = order[idx]
            if len(teams[t]) < sizes[t]:
                teams[t].append(student)
                break
            idx += direction
            if idx == n_teams:
                idx, direction = n_teams - 1, -1
            elif idx == -1:
                idx, direction = 0, 1
        else:  # pragma: no cover - sizes guarantee capacity exists
            raise AssertionError("no team with remaining capacity")
        idx += direction
        if idx == n_teams:
            idx, direction = n_teams - 1, -1
        elif idx == -1:
            idx, direction = 0, 1
    return teams


def _improve(
    teams: list[list[Student]], criteria: FormationCriteria
) -> list[list[Student]]:
    """First-improvement local search over cross-team pairwise swaps."""
    best = _objective(teams, criteria)
    for _ in range(criteria.max_swap_rounds):
        improved = False
        for a in range(len(teams)):
            for b in range(a + 1, len(teams)):
                for i in range(len(teams[a])):
                    for j in range(len(teams[b])):
                        teams[a][i], teams[b][j] = teams[b][j], teams[a][i]
                        candidate = _objective(teams, criteria)
                        if candidate < best - 1e-12:
                            best = candidate
                            improved = True
                        else:
                            teams[a][i], teams[b][j] = teams[b][j], teams[a][i]
        if not improved:
            break
    return teams


def form_teams(
    students: Sequence[Student],
    n_teams: int,
    criteria: FormationCriteria | None = None,
    id_prefix: str = "T",
) -> list[Team]:
    """Form ``n_teams`` diverse, balanced teams from a section's students.

    Deterministic: same students and criteria always give the same teams.
    """
    if criteria is None:
        criteria = FormationCriteria()
    ids = [s.student_id for s in students]
    if len(set(ids)) != len(ids):
        raise ValueError("duplicate student ids in section")
    sizes = team_sizes(len(students), n_teams)
    teams = _improve(_snake_draft(students, sizes), criteria)
    width = max(2, len(str(n_teams)))
    return [
        Team(
            team_id=f"{id_prefix}{i + 1:0{width}d}",
            members=tuple(sorted(team, key=lambda s: s.student_id)),
        )
        for i, team in enumerate(teams)
    ]


def random_teams(
    students: Sequence[Student], n_teams: int, seed: int = 0, id_prefix: str = "R"
) -> list[Team]:
    """Uniformly random grouping — the baseline for the formation ablation."""
    import random as _random

    sizes = team_sizes(len(students), n_teams)
    pool = list(students)
    _random.Random(seed).shuffle(pool)
    teams: list[Team] = []
    start = 0
    width = max(2, len(str(n_teams)))
    for i, size in enumerate(sizes):
        members = tuple(sorted(pool[start : start + size], key=lambda s: s.student_id))
        teams.append(Team(team_id=f"{id_prefix}{i + 1:0{width}d}", members=members))
        start += size
    return teams


def balance_report(teams: Iterable[Team]) -> dict[str, float]:
    """Balance metrics for a set of teams (used by tests and the ablation).

    Returns the range and standard deviation of team mean ability, the
    number of teams with an isolated (exactly one) woman, and the range of
    team mean GPA.
    """
    teams = list(teams)
    if not teams:
        raise ValueError("balance report of zero teams")
    abilities = [t.mean_ability for t in teams]
    gpas = [t.mean_gpa for t in teams]
    mean_ab = sum(abilities) / len(abilities)
    var_ab = sum((a - mean_ab) ** 2 for a in abilities) / len(abilities)
    return {
        "ability_range": max(abilities) - min(abilities),
        "ability_sd": var_ab**0.5,
        "gpa_range": max(gpas) - min(gpas),
        "solo_female_teams": float(sum(1 for t in teams if t.n_female == 1)),
    }
