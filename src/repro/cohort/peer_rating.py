"""Peer rating of team-member contributions.

Every assignment packet includes a "peer rating form of team members'
contributions to the team".  The grading policy uses it: a member who
refuses to cooperate on an assignment receives a zero for it (see
:mod:`repro.course.grading`).

Ratings use the common Oakley et al. adjective scale mapped to numbers so
they can feed the grading adjustment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.cohort.teams import Team

__all__ = ["RATING_SCALE", "PeerRating", "PeerRatingForm", "contribution_summary"]

#: Oakley et al. style adjective scale.
RATING_SCALE: Mapping[str, float] = {
    "excellent": 5.0,
    "very good": 4.5,
    "satisfactory": 4.0,
    "ordinary": 3.5,
    "marginal": 3.0,
    "deficient": 2.5,
    "unsatisfactory": 2.0,
    "superficial": 1.5,
    "no show": 1.0,
}


@dataclass(frozen=True)
class PeerRating:
    """One rater's rating of one teammate for one assignment."""

    rater_id: str
    ratee_id: str
    adjective: str

    def __post_init__(self) -> None:
        if self.adjective not in RATING_SCALE:
            raise ValueError(
                f"unknown rating {self.adjective!r}; expected one of {sorted(RATING_SCALE)}"
            )
        if self.rater_id == self.ratee_id:
            raise ValueError("self-ratings are not collected on the peer form")

    @property
    def value(self) -> float:
        return RATING_SCALE[self.adjective]


@dataclass(frozen=True)
class PeerRatingForm:
    """All peer ratings a team submitted for one assignment."""

    team_id: str
    assignment_number: int
    ratings: tuple[PeerRating, ...]

    def validate_against(self, team: Team) -> None:
        """Check completeness: every member rates every other member once."""
        member_ids = {m.student_id for m in team.members}
        seen: set[tuple[str, str]] = set()
        for rating in self.ratings:
            if rating.rater_id not in member_ids or rating.ratee_id not in member_ids:
                raise ValueError(
                    f"rating {rating.rater_id}->{rating.ratee_id} references a "
                    f"non-member of team {team.team_id}"
                )
            key = (rating.rater_id, rating.ratee_id)
            if key in seen:
                raise ValueError(f"duplicate rating {key} on form for {team.team_id}")
            seen.add(key)
        expected = len(member_ids) * (len(member_ids) - 1)
        if len(seen) != expected:
            raise ValueError(
                f"incomplete form for {team.team_id}: {len(seen)}/{expected} ratings"
            )


def contribution_summary(forms: Iterable[PeerRatingForm]) -> dict[str, float]:
    """Mean received rating per student across forms.

    This is the number the grading policy thresholds against to decide
    whether a member "cooperated" on the assignment.
    """
    totals: dict[str, float] = {}
    counts: dict[str, int] = {}
    for form in forms:
        for rating in form.ratings:
            totals[rating.ratee_id] = totals.get(rating.ratee_id, 0.0) + rating.value
            counts[rating.ratee_id] = counts.get(rating.ratee_id, 0) + 1
    return {sid: totals[sid] / counts[sid] for sid in totals}
