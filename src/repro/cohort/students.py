"""Student model and cohort generation.

The team-formation criteria in the paper are: gender, system and
programming experience, experience in group work, GPA, and technical
writing experience.  :class:`Student` carries exactly those attributes.

:func:`generate_cohort` synthesises a cohort with the paper's published
marginals — 124 students, 98 male / 26 female, split as two sections of
62 with 16 and 10 women respectively — and plausible attribute
distributions (GPA on a 0–4.3 scale, experience levels 0–3).  The
synthetic attributes only drive team formation and the response model;
no table depends on their exact distribution beyond the marginals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["Gender", "Student", "generate_cohort", "PAPER_COHORT"]


class Gender(enum.Enum):
    MALE = "M"
    FEMALE = "F"


#: The paper's §III.A marginals.
PAPER_COHORT = {
    "n_total": 124,
    "n_male": 98,
    "n_female": 26,
    "sections": ({"n": 62, "n_female": 16}, {"n": 62, "n_female": 10}),
}


@dataclass(frozen=True, order=True)
class Student:
    """A student with the attributes the instructor balances teams on.

    Experience attributes are coarse self-reported levels 0 (none) to
    3 (extensive), mirroring a typical intake questionnaire.
    """

    student_id: str
    gender: Gender
    gpa: float
    programming_experience: int
    system_experience: int
    group_work_experience: int
    technical_writing: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.gpa <= 4.3:
            raise ValueError(f"GPA must be in [0, 4.3], got {self.gpa}")
        for attr in (
            "programming_experience",
            "system_experience",
            "group_work_experience",
            "technical_writing",
        ):
            level = getattr(self, attr)
            if not 0 <= level <= 3:
                raise ValueError(f"{attr} must be in [0, 3], got {level}")

    @property
    def ability_index(self) -> float:
        """Scalar ability proxy used by the balance objective.

        GPA normalised to [0, 1] plus the mean of the four experience
        levels normalised to [0, 1], weighted equally.
        """
        exp = (
            self.programming_experience
            + self.system_experience
            + self.group_work_experience
            + self.technical_writing
        ) / 12.0
        return 0.5 * (self.gpa / 4.3) + 0.5 * exp


def _draw_levels(rng: np.random.Generator, n: int, probs: list[float]) -> np.ndarray:
    return rng.choice(len(probs), size=n, p=probs)


def generate_cohort(
    seed: int = 2018,
    n_total: int = PAPER_COHORT["n_total"],
    n_female: int = PAPER_COHORT["n_female"],
) -> list[Student]:
    """Generate a synthetic cohort with the paper's gender marginals.

    Students are ids ``s001`` … ``s124`` (zero-padded to the cohort size).
    Deterministic for a given seed.
    """
    if not 0 <= n_female <= n_total:
        raise ValueError(f"n_female={n_female} out of range for n_total={n_total}")
    rng = np.random.default_rng(seed)
    width = max(3, len(str(n_total)))

    genders = [Gender.FEMALE] * n_female + [Gender.MALE] * (n_total - n_female)
    rng.shuffle(genders)  # type: ignore[arg-type]

    # GPA: mid-program CS majors; truncated normal around 3.1.
    gpas = np.clip(rng.normal(3.1, 0.45, size=n_total), 2.0, 4.3)
    # Experience levels: most students mid-program have taken 2-3 CS courses.
    prog = _draw_levels(rng, n_total, [0.10, 0.35, 0.40, 0.15])
    system = _draw_levels(rng, n_total, [0.30, 0.40, 0.22, 0.08])
    group = _draw_levels(rng, n_total, [0.25, 0.40, 0.25, 0.10])
    writing = _draw_levels(rng, n_total, [0.20, 0.45, 0.25, 0.10])

    return [
        Student(
            student_id=f"s{i + 1:0{width}d}",
            gender=genders[i],
            gpa=round(float(gpas[i]), 2),
            programming_experience=int(prog[i]),
            system_experience=int(system[i]),
            group_work_experience=int(group[i]),
            technical_writing=int(writing[i]),
        )
        for i in range(n_total)
    ]
