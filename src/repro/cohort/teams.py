"""Teams and the rotating coordinator role.

"Once grouped, each team elects a team coordinator and this role is to be
rotated among team members for each assignment."  The coordinator
interfaces with the instructor, turns in documents, reviews returned
assignments, and identifies/assigns/schedules tasks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cohort.students import Gender, Student

__all__ = ["Team", "rotate_coordinators"]

MIN_TEAM_SIZE = 4
MAX_TEAM_SIZE = 5


@dataclass(frozen=True)
class Team:
    """A project team of four or five students."""

    team_id: str
    members: tuple[Student, ...]

    def __post_init__(self) -> None:
        if not MIN_TEAM_SIZE <= len(self.members) <= MAX_TEAM_SIZE:
            raise ValueError(
                f"team {self.team_id!r} must have {MIN_TEAM_SIZE}-{MAX_TEAM_SIZE} "
                f"members, got {len(self.members)}"
            )
        ids = [m.student_id for m in self.members]
        if len(set(ids)) != len(ids):
            raise ValueError(f"team {self.team_id!r} has duplicate members")

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def n_female(self) -> int:
        return sum(1 for m in self.members if m.gender is Gender.FEMALE)

    @property
    def mean_gpa(self) -> float:
        return sum(m.gpa for m in self.members) / self.size

    @property
    def mean_ability(self) -> float:
        return sum(m.ability_index for m in self.members) / self.size

    def coordinator_for(self, assignment_number: int) -> Student:
        """Coordinator for a 1-based assignment number (rotating role)."""
        if assignment_number < 1:
            raise ValueError(f"assignment number must be >= 1, got {assignment_number}")
        return self.members[(assignment_number - 1) % self.size]


def rotate_coordinators(team: Team, n_assignments: int) -> list[Student]:
    """Coordinator schedule across assignments 1..n.

    With five assignments and teams of four or five, every member
    coordinates at least once (a property the test suite checks).
    """
    if n_assignments < 1:
        raise ValueError(f"n_assignments must be >= 1, got {n_assignments}")
    return [team.coordinator_for(i) for i in range(1, n_assignments + 1)]
