"""Cohort substrate: students, sections, teams.

The paper's study population: 124 computer-science students in two
sections of CSc 3210 (62 each; 16 women in section one, 10 in section
two), organised by the instructor into 26 diverse teams of four or five
using multiple balance criteria (gender, system & programming experience,
group-work experience, GPA, technical-writing experience).

- :mod:`repro.cohort.students` — student model and the cohort generator
  matching the paper's exact marginals.
- :mod:`repro.cohort.sections` — course sections.
- :mod:`repro.cohort.formation` — the multi-criteria balanced team
  formation algorithm (instructor-formed teams, per Oakley et al.).
- :mod:`repro.cohort.teams` — teams and coordinator rotation.
- :mod:`repro.cohort.peer_rating` — the peer rating form of member
  contributions used for each assignment.
"""

from repro.cohort.formation import (
    FormationCriteria,
    balance_report,
    form_teams,
    random_teams,
)
from repro.cohort.peer_rating import PeerRating, PeerRatingForm, contribution_summary
from repro.cohort.sections import Section, make_paper_sections
from repro.cohort.students import Gender, Student, generate_cohort
from repro.cohort.teams import Team, rotate_coordinators

__all__ = [
    "FormationCriteria",
    "Gender",
    "PeerRating",
    "PeerRatingForm",
    "Section",
    "Student",
    "Team",
    "balance_report",
    "contribution_summary",
    "form_teams",
    "generate_cohort",
    "make_paper_sections",
    "random_teams",
    "rotate_coordinators",
]
