"""A distributed-memory drug-design solver (the paper's §V direction).

The paper's future work moves the course from shared memory (OpenMP) to
distributed memory (MPI) "to provide students with more flexibility in
determining the correct memory architecture to use".  This module is that
exercise applied to the Assignment-5 exemplar: the ligand set is
scattered across ranks, each rank scores its block locally (no shared
memory — the candidates never leave the rank except by message), and the
global winner is found with an allreduce over (score, ligands) pairs.
"""

from __future__ import annotations

from repro.drugdesign.scoring import dp_cells
from repro.drugdesign.solvers import DrugDesignResult, score_ligands
from repro.mpi.comm import Communicator, mpi_run
from repro.telemetry import instrument as telemetry

__all__ = ["solve_mpi"]


def _merge(a: tuple[int, tuple[str, ...]], b: tuple[int, tuple[str, ...]]):
    """Combine two (max score, winning ligands) summaries."""
    if a[0] > b[0]:
        return a
    if b[0] > a[0]:
        return b
    return (a[0], tuple(sorted(set(a[1]) | set(b[1]))))


def solve_mpi(ligands: list[str], protein: str, n_ranks: int = 4) -> DrugDesignResult:
    """Find the maximal-scoring ligands with block-scattered ranks.

    Semantically identical to the shared-memory solvers (property-tested);
    structurally the distributed version: scatter → local compute →
    allreduce, with per-rank work counts gathered for the load report.
    """
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
    data = list(ligands)

    def program(comm: Communicator):
        if comm.rank == 0:
            block = (len(data) + comm.size - 1) // comm.size
            blocks = [data[i * block : (i + 1) * block] for i in range(comm.size)]
        else:
            blocks = None
        mine = comm.scatter(blocks, root=0)

        local_best: tuple[int, tuple[str, ...]] = (0, ())
        local_cells = 0
        with telemetry.span("dd.rank_block", category="solver",
                            rank=comm.rank, block_size=len(mine)):
            # One batched kernel call per rank block: the whole block's
            # DP advances together instead of ligand by ligand.
            for ligand, score in zip(mine, score_ligands(list(mine), protein)):
                local_cells += dp_cells(ligand, protein)
                local_best = _merge(local_best, (score, (ligand,)))

        global_best = comm.allreduce(local_best, op=_merge)
        cells = comm.allgather(local_cells)
        return global_best, cells

    with telemetry.span("dd.solve", category="solver", style="mpi",
                        n_ranks=n_ranks):
        results = mpi_run(n_ranks, program)
    (max_score, best), cells = results[0]
    if not ligands:
        max_score, best = 0, ()
    return DrugDesignResult(
        style="mpi",
        num_threads=n_ranks,
        max_score=max_score,
        best_ligands=best,
        total_cells=sum(cells),
        per_thread_cells=tuple(cells),
    )
