"""The Drug Design / DNA exemplar (Assignment 5).

The CSinParallel exemplar the paper assigns: a set of candidate *ligands*
(short character strings standing in for small molecules) is scored
against a *protein* (a long string); a ligand's score is the length of
the longest common subsequence between it and the protein, and the task
is to find the maximal-scoring ligands.  The paper requires "a
sequential, an OpenMP, and a C++11 Threads solution", timing each, then
re-running with 5 threads and with maximum ligand length 7.

- :mod:`repro.drugdesign.ligands` — seeded ligand generation.
- :mod:`repro.drugdesign.scoring` — the LCS dynamic program.
- :mod:`repro.drugdesign.solvers` — the three solution styles:
  ``sequential``, ``openmp`` (our work-sharing runtime with a max-
  reduction), and ``cxx11_threads`` (a thread pool pulling from an
  atomic task counter — the structure of the C++11 original).
- :mod:`repro.drugdesign.experiment` — the Assignment-5 measurement
  protocol: wall-clock *and* simulated-Pi timing, the thread and
  max-ligand sweeps, and lines-of-code per implementation.
"""

from repro.drugdesign.experiment import (
    Assignment5Report,
    DrugDesignConfig,
    run_assignment5,
)
from repro.drugdesign.ligands import generate_ligands
from repro.drugdesign.mpi_solver import solve_mpi
from repro.drugdesign.scoring import lcs_score
from repro.drugdesign.solvers import (
    DrugDesignResult,
    solve_cxx11_threads,
    solve_openmp,
    solve_sequential,
)

__all__ = [
    "Assignment5Report",
    "DrugDesignConfig",
    "DrugDesignResult",
    "generate_ligands",
    "lcs_score",
    "run_assignment5",
    "solve_cxx11_threads",
    "solve_mpi",
    "solve_openmp",
    "solve_sequential",
]
