"""Ligand scoring: longest common subsequence.

``score(ligand, protein) = |LCS(ligand, protein)|`` — the classic
O(m·n) dynamic program, rolling two rows.  The cost model used by the
simulated-Pi timing is exactly the DP's cell count, ``len(ligand) *
len(protein)``, which is why raising ``max_ligand`` from 5 to 7 visibly
moves the runtime in the Assignment-5 sweep.
"""

from __future__ import annotations

__all__ = ["lcs_score", "dp_cells"]


def lcs_score(ligand: str, protein: str) -> int:
    """Length of the longest common subsequence of ligand and protein."""
    m, n = len(ligand), len(protein)
    if m == 0 or n == 0:
        return 0
    # Keep the shorter string in the inner dimension for cache behaviour.
    if m > n:
        ligand, protein = protein, ligand
        m, n = n, m
    previous = [0] * (m + 1)
    current = [0] * (m + 1)
    for j in range(1, n + 1):
        pc = protein[j - 1]
        for i in range(1, m + 1):
            if ligand[i - 1] == pc:
                current[i] = previous[i - 1] + 1
            else:
                current[i] = max(previous[i], current[i - 1])
        previous, current = current, previous
    return previous[m]


def dp_cells(ligand: str, protein: str) -> int:
    """Work performed by :func:`lcs_score` in DP cells (the cost model)."""
    return len(ligand) * len(protein)
