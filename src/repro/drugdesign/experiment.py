"""The Assignment-5 measurement protocol.

The assignment's exact tasks:

1. run a sequential, an OpenMP, and a C++11-threads solution;
2. measure the running time of each — *which approach is fastest?*;
3. compare program sizes — *what are the number of lines in each file
   (size of the program vs. performance)?*;
4. increase the number of threads to 5 — what is the run time of each?;
5. increase the maximum ligand length to 7 and rerun — run times?

Times are reported two ways: real wall-clock (honest, but GIL-bound in
Python, so the parallel versions do not speed up) and the simulated-Pi
cost (fork/join + per-chunk overheads + contention over the per-ligand
DP cell counts) — the latter is the apples-to-apples number that carries
the paper's qualitative result: the parallel versions win, and more work
(max ligand 7) widens the gap.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.drugdesign.ligands import DEFAULT_PROTEIN, generate_ligands
from repro.drugdesign.scoring import dp_cells
from repro.drugdesign.solvers import (
    DrugDesignResult,
    solve_cxx11_threads,
    solve_openmp,
    solve_sequential,
)
from repro.openmp.loops import Schedule
from repro.rpi.machine import SimulatedPi

__all__ = ["DrugDesignConfig", "StyleMeasurement", "Assignment5Report", "run_assignment5"]

#: Simulated cost of one LCS DP cell on a 1.4 GHz Cortex-A53, in us.
US_PER_CELL = 0.01


@dataclass(frozen=True)
class DrugDesignConfig:
    """One experimental condition of the sweep."""

    n_ligands: int = 120
    max_ligand: int = 5
    num_threads: int = 4
    protein: str = DEFAULT_PROTEIN
    seed: int = 500

    def label(self) -> str:
        return (
            f"{self.n_ligands} ligands, max_ligand={self.max_ligand}, "
            f"{self.num_threads} threads"
        )


@dataclass(frozen=True)
class StyleMeasurement:
    """Timing + size of one solution style under one condition."""

    style: str
    result: DrugDesignResult
    wall_seconds: float
    simulated_us: float
    lines_of_code: int


@dataclass(frozen=True)
class Assignment5Report:
    """All measurements for one condition."""

    config: DrugDesignConfig
    measurements: Mapping[str, StyleMeasurement] = field(default_factory=dict)

    @property
    def fastest_simulated(self) -> str:
        """Answer to "Which approach is fastest?" on the simulated Pi."""
        return min(self.measurements.values(), key=lambda m: m.simulated_us).style

    def answers_agree(self) -> bool:
        results = [m.result for m in self.measurements.values()]
        return all(r.same_answer_as(results[0]) for r in results)

    def render(self) -> str:
        lines = [f"drug design: {self.config.label()}"]
        for style, m in self.measurements.items():
            lines.append(
                f"  {style:14s} score={m.result.max_score}  "
                f"wall={m.wall_seconds * 1e3:8.2f} ms  "
                f"simulated={m.simulated_us / 1e3:8.2f} ms  "
                f"LoC={m.lines_of_code}"
            )
        lines.append(f"  fastest (simulated): {self.fastest_simulated}")
        return "\n".join(lines)


def _loc(fn: Callable) -> int:
    """Source lines of a solver — the assignment's program-size metric."""
    source = inspect.getsource(fn)
    return sum(1 for line in source.splitlines() if line.strip() and not line.strip().startswith("#"))


def _simulate(result: DrugDesignResult, ligands: list[str], protein: str,
              pi: SimulatedPi, num_threads: int, style: str) -> float:
    costs = [dp_cells(lig, protein) * US_PER_CELL for lig in ligands]
    if style == "sequential":
        return pi.sequential_us(costs)
    # Both parallel styles pull tasks dynamically one ligand at a time.
    return pi.cost_loop(costs, Schedule.dynamic(chunk=1), num_threads).elapsed_us


def run_assignment5(
    config: DrugDesignConfig | None = None,
    pi: SimulatedPi | None = None,
) -> Assignment5Report:
    """Run all three solvers under one condition and measure them."""
    cfg = config or DrugDesignConfig()
    machine = pi or SimulatedPi()
    ligands = generate_ligands(cfg.n_ligands, cfg.max_ligand, seed=cfg.seed)

    measurements: dict[str, StyleMeasurement] = {}

    def measure(style: str, run: Callable[[], DrugDesignResult], fn: Callable) -> None:
        start = time.perf_counter()
        result = run()
        wall = time.perf_counter() - start
        measurements[style] = StyleMeasurement(
            style=style,
            result=result,
            wall_seconds=wall,
            simulated_us=_simulate(result, ligands, cfg.protein, machine,
                                   cfg.num_threads, style),
            lines_of_code=_loc(fn),
        )

    measure("sequential", lambda: solve_sequential(ligands, cfg.protein),
            solve_sequential)
    measure("openmp",
            lambda: solve_openmp(ligands, cfg.protein, cfg.num_threads),
            solve_openmp)
    measure("cxx11_threads",
            lambda: solve_cxx11_threads(ligands, cfg.protein, cfg.num_threads),
            solve_cxx11_threads)

    report = Assignment5Report(config=cfg, measurements=measurements)
    if not report.answers_agree():
        raise AssertionError("solution styles disagree on the best ligands")
    return report
