"""The three solution styles the assignment requires.

All three must find the same answer (property-tested); they differ in how
work is distributed:

- :func:`solve_sequential` — one loop;
- :func:`solve_openmp` — a work-shared loop on our OpenMP-style runtime
  with a max-reduction over (score, ligand) pairs — the idiom of the
  exemplar's ``#pragma omp parallel for`` version;
- :func:`solve_cxx11_threads` — N explicit threads pulling ligand indices
  from an atomic counter — the structure of the exemplar's C++11
  ``std::thread`` version;
- :func:`solve_sched` — the scoring sweep dispatched through the shared
  :mod:`repro.sched` work-stealing executor, one task per ligand.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any

from repro import kernels
from repro.drugdesign.scoring import dp_cells
from repro.openmp.loops import Schedule, run_parallel_for
from repro.openmp.reduction import Reduction
from repro.openmp.runtime import OpenMP
from repro.faults import hooks as faults
from repro.openmp.sync import AtomicCounter
from repro.sched import tune as _tune
from repro.sched.core import Call
from repro.telemetry import instrument as telemetry

__all__ = [
    "DrugDesignResult",
    "score_ligand",
    "score_ligands",
    "solve_sequential",
    "solve_openmp",
    "solve_cxx11_threads",
    "solve_sched",
]


def score_ligand(ligand: str, protein: str) -> int:
    """Score one ligand, with per-ligand timing when telemetry is on.

    The per-ligand span is what makes load imbalance *visible*: ligand
    costs scale with length², so a trace of a static schedule shows some
    threads dragging long spans while others idle — the assignment's
    schedule lesson, straight from the timeline view.
    """
    # Chaos hook: an EXCEPTION rule makes this ligand's scoring fail
    # transiently; keyed by ligand so the failure schedule is the same
    # whichever thread picks the ligand up.  Recovery belongs to the
    # caller's RetryPolicy (see repro.faults.chaos.drugdesign).
    faults.fire("dd.score", key=ligand, ligand=ligand)
    if not telemetry.enabled():
        return kernels.lcs_score(ligand, protein)
    start = time.perf_counter()
    with telemetry.span("dd.score", category="ligand",
                        ligand=ligand, length=len(ligand)):
        score = kernels.lcs_score(ligand, protein)
    telemetry.observe_us("dd.ligand_us", (time.perf_counter() - start) * 1e6)
    telemetry.inc("dd.ligands_scored")
    return score


def score_ligands(ligands: list[str], protein: str) -> list[int]:
    """Score a batch of ligands in one kernel call.

    The batched fast path: one padded DP advances every ligand together
    (:func:`repro.kernels.lcs_scores`), so the per-ligand Python
    overhead is paid once per *batch*.  The per-ligand chaos hook still
    fires for each ligand — a fault schedule keyed by ligand must not
    change because the caller batched — and one ``dd.score_batch`` span
    covers the batch.
    """
    for ligand in ligands:
        faults.fire("dd.score", key=ligand, ligand=ligand)
    with telemetry.span("dd.score_batch", category="ligand",
                        batch=len(ligands)):
        scores = kernels.lcs_scores(ligands, protein)
    telemetry.inc("dd.ligands_scored", len(ligands))
    return scores


@dataclass(frozen=True)
class DrugDesignResult:
    """Outcome of one solver run."""

    style: str
    num_threads: int
    max_score: int
    best_ligands: tuple[str, ...]    # sorted, deduplicated
    total_cells: int                 # DP work performed (the cost model)
    per_thread_cells: tuple[int, ...]

    def same_answer_as(self, other: "DrugDesignResult") -> bool:
        return (
            self.max_score == other.max_score
            and self.best_ligands == other.best_ligands
        )


def _best(scored: list[tuple[int, str]]) -> tuple[int, tuple[str, ...]]:
    if not scored:
        return 0, ()
    max_score = max(score for score, _ in scored)
    winners = sorted({lig for score, lig in scored if score == max_score})
    return max_score, tuple(winners)


def solve_sequential(ligands: list[str], protein: str) -> DrugDesignResult:
    """One thread, one batched kernel call."""
    with telemetry.span("dd.solve", category="solver", style="sequential"):
        scored = list(zip(score_ligands(ligands, protein), ligands))
    max_score, best = _best(scored)
    cells = sum(dp_cells(lig, protein) for lig in ligands)
    return DrugDesignResult(
        style="sequential",
        num_threads=1,
        max_score=max_score,
        best_ligands=best,
        total_cells=cells,
        per_thread_cells=(cells,),
    )


def solve_openmp(
    ligands: list[str],
    protein: str,
    num_threads: int = 4,
    schedule: Schedule | None = None,
) -> DrugDesignResult:
    """Work-shared loop with a max-reduction over (score, ligand) keys.

    The reduction key is the pair ``(score, ligand)`` so ties resolve
    deterministically; all tying ligands are recovered afterwards from the
    per-thread candidate lists.
    """
    omp = OpenMP(num_threads)
    candidates: list[list[tuple[int, str]]] = [[] for _ in range(num_threads)]
    cells = [0] * num_threads

    def body(i: int, ctx) -> None:
        score = score_ligand(ligands[i], protein)
        candidates[ctx.thread_num].append((score, ligands[i]))
        cells[ctx.thread_num] += dp_cells(ligands[i], protein)

    with telemetry.span("dd.solve", category="solver", style="openmp",
                        num_threads=num_threads):
        run_parallel_for(
            omp, len(ligands), body,
            schedule or Schedule.dynamic(chunk=1),   # the exemplar uses dynamic:
            # ligand costs vary with length, so static would load-imbalance.
        )
    scored = [pair for lane in candidates for pair in lane]
    max_score, best = _best(scored)
    return DrugDesignResult(
        style="openmp",
        num_threads=num_threads,
        max_score=max_score,
        best_ligands=best,
        total_cells=sum(cells),
        per_thread_cells=tuple(cells),
    )


def solve_cxx11_threads(
    ligands: list[str], protein: str, num_threads: int = 4
) -> DrugDesignResult:
    """Explicit threads + an atomic next-task counter (the C++11 shape)."""
    counter = AtomicCounter(0)
    candidates: list[list[tuple[int, str]]] = [[] for _ in range(num_threads)]
    cells = [0] * num_threads

    solver_id: int | None = None

    def worker(tid: int) -> None:
        telemetry.set_thread(tid, f"dd-worker-{tid}", process="drugdesign")
        with telemetry.span("dd.worker", category="solver",
                            parent_id=solver_id, thread=tid):
            while True:
                i = counter.fetch_add(1)
                if i >= len(ligands):
                    break
                score = score_ligand(ligands[i], protein)
                candidates[tid].append((score, ligands[i]))
                cells[tid] += dp_cells(ligands[i], protein)

    with telemetry.span("dd.solve", category="solver", style="cxx11_threads",
                        num_threads=num_threads) as solver_span:
        if solver_span is not None:
            solver_id = solver_span.span_id
        threads = [
            threading.Thread(target=worker, args=(tid,), name=f"dd-worker-{tid}")
            for tid in range(num_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    scored = [pair for lane in candidates for pair in lane]
    max_score, best = _best(scored)
    return DrugDesignResult(
        style="cxx11_threads",
        num_threads=num_threads,
        max_score=max_score,
        best_ligands=best,
        total_cells=sum(cells),
        per_thread_cells=tuple(cells),
    )


def _score_group(batch: list[str], protein: str) -> list[tuple[int, str]]:
    """Picklable ``mode="mp"`` task body: one batched kernel call.

    Runs in a pool child, which carries no telemetry session and no
    fault-injection session — so :func:`solve_sched` only ships groups
    across the process boundary when no fault session is active (the
    chaos hooks must keep firing in-process, keyed by ligand).
    """
    from repro.kernels.lcs import lcs_scores_numpy

    return list(zip(lcs_scores_numpy(batch, protein), batch))


def _auto_chunk(ligands: list[str], protein: str, scheduler: Any) -> int:
    """Measured chunk size: dispatch overhead vs per-ligand kernel time.

    The per-item probe scores a small sample through the kernel
    directly — not through :func:`score_ligand` — so no chaos hook fires
    and no fault schedule shifts; the dispatch probe runs on a throwaway
    executor (:func:`repro.sched.tune.measure_dispatch_overhead_s`), so
    the caller's canonical event log stays a pure function of the real
    sweep.
    """
    if not ligands:
        return 1
    sample = ligands[: min(16, len(ligands))]
    start = time.perf_counter()
    kernels.lcs_scores(sample, protein)
    per_item_s = (time.perf_counter() - start) / len(sample)
    overhead_s = _tune.measure_dispatch_overhead_s(
        mode=getattr(scheduler, "mode", "threaded"),
        n_workers=scheduler.n_workers,
    )
    return _tune.autotune_chunk(
        overhead_s, per_item_s, len(ligands), scheduler.n_workers
    )


def solve_sched(
    ligands: list[str], protein: str, scheduler: Any, chunk: int | str = 1
) -> DrugDesignResult:
    """Score through a :class:`repro.sched.WorkStealingExecutor`.

    ``chunk=1`` (default) submits one task per ligand; the steal
    schedule (hence the per-worker cell distribution) is a pure function
    of the scheduler's seed in its deterministic mode, so an imbalance
    seen once can be replayed.  ``chunk=k`` submits one task per k
    ligands, each scored with one batched kernel call
    (:func:`score_ligands`) — the amortized dispatch path the kernel
    benchmark measures: k ligands ride one scheduler round-trip instead
    of k.  ``chunk="auto"`` sizes k from the measured dispatch overhead
    (:mod:`repro.sched.tune`); the measurement is wall-clock, so pass an
    explicit chunk where the task structure must replay exactly.

    On a ``mode="mp"`` scheduler (and no active fault session) each
    group ships to a pool child as a picklable :class:`Call` — same
    task count, order, and scores as the threaded closures, so the
    canonical event log and the report are byte-identical across modes.
    """
    if chunk == "auto":
        chunk = _auto_chunk(ligands, protein, scheduler)
    if not isinstance(chunk, int) or isinstance(chunk, bool) or chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk!r}")
    ship = (getattr(scheduler, "mode", "threaded") == "mp"
            and not faults.enabled())
    with telemetry.span("dd.solve", category="solver", style="sched",
                        num_threads=scheduler.n_workers, chunk=chunk):
        if chunk == 1:
            groups = [[lig] for lig in ligands]
            if ship:
                handles = scheduler.submit_batch(
                    [Call(_score_group, [lig], protein) for lig in ligands],
                    name="dd.score",
                )
            else:
                handles = scheduler.submit_batch(
                    [
                        lambda lig=lig: [(score_ligand(lig, protein), lig)]
                        for lig in ligands
                    ],
                    name="dd.score",
                )
        else:
            groups = [
                list(ligands[i : i + chunk])
                for i in range(0, len(ligands), chunk)
            ]
            if ship:
                handles = scheduler.submit_batch(
                    [Call(_score_group, batch, protein) for batch in groups],
                    name="dd.score_chunk",
                )
            else:
                handles = scheduler.submit_batch(
                    [
                        lambda batch=batch: list(
                            zip(score_ligands(batch, protein), batch)
                        )
                        for batch in groups
                    ],
                    name="dd.score_chunk",
                )
        scheduler.drain()
        scored = [pair for handle in handles for pair in handle.result()]
        if ship:
            # The children ran without a telemetry session; keep the
            # ligand counter honest from the parent side.
            telemetry.inc("dd.ligands_scored", len(ligands))
    cells = [0] * scheduler.n_workers
    for handle, group in zip(handles, groups):
        worker = handle.worker if handle.worker is not None else 0
        cells[worker] += sum(dp_cells(lig, protein) for lig in group)
    max_score, best = _best(scored)
    return DrugDesignResult(
        style="sched",
        num_threads=scheduler.n_workers,
        max_score=max_score,
        best_ligands=best,
        total_cells=sum(cells),
        per_thread_cells=tuple(cells),
    )
