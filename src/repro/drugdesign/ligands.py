"""Ligand and protein generation.

Matches the CSinParallel exemplar's conventions: ligands are lowercase
strings of length 1..max_ligand (shorter strings are far more numerous in
its random generator — we draw lengths uniformly, which preserves the
property the sweep depends on: raising ``max_ligand`` adds longer, much
more expensive ligands).
"""

from __future__ import annotations

import random
import string

__all__ = ["generate_ligands", "generate_protein", "DEFAULT_PROTEIN"]

_ALPHABET = string.ascii_lowercase

#: The protein string used by the CSinParallel exemplar's default run.
DEFAULT_PROTEIN = (
    "the quick brown fox jumped over the lazy dog that guarded the gate of "
    "the ancient citadel whose walls had stood for a thousand years against "
    "wind rain and the slow siege of ivy"
).replace(" ", "")


def generate_ligands(
    n_ligands: int, max_ligand: int, seed: int = 500
) -> list[str]:
    """Generate ``n_ligands`` random ligands of length 1..max_ligand."""
    if n_ligands < 1:
        raise ValueError(f"n_ligands must be >= 1, got {n_ligands}")
    if max_ligand < 1:
        raise ValueError(f"max_ligand must be >= 1, got {max_ligand}")
    rng = random.Random(seed)
    return [
        "".join(rng.choice(_ALPHABET) for _ in range(rng.randint(1, max_ligand)))
        for _ in range(n_ligands)
    ]


def generate_protein(length: int, seed: int = 501) -> str:
    """Generate a random protein string of the given length."""
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    rng = random.Random(seed)
    return "".join(rng.choice(_ALPHABET) for _ in range(length))
