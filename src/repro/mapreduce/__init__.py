"""A threaded MapReduce engine.

Assignment 5 has students read Google's "Introduction to Parallel
Programming and MapReduce" and answer: what is a map, what is a reduce,
how is the model executed, and "list and describe three examples that are
expressed as MapReduce computations".  This package makes the reading
executable:

- :mod:`repro.mapreduce.engine` — the runtime: map tasks → combiner →
  hash partitioning → sorted shuffle → reduce tasks, with a thread pool
  per phase, deterministic output, and optional fault injection with
  task re-execution (the feature that made MapReduce famous).
- :mod:`repro.mapreduce.jobs` — the canonical computations: word count,
  distributed grep, inverted index, URL access count, per-key mean.
"""

from repro.mapreduce.counters import CounterSet, TaskCounters, run_with_counters
from repro.mapreduce.engine import (
    JobResult,
    MapReduceEngine,
    MapReduceSpec,
    TaskFailure,
)
from repro.mapreduce.stragglers import SlowTask, SpeculativeEngine, SpeculativeResult
from repro.mapreduce.jobs import (
    distributed_sort_job,
    grep_job,
    inverted_index_job,
    make_range_partitioner,
    mean_by_key_job,
    url_access_count_job,
    word_count_job,
)

__all__ = [
    "CounterSet",
    "JobResult",
    "MapReduceEngine",
    "MapReduceSpec",
    "SlowTask",
    "SpeculativeEngine",
    "SpeculativeResult",
    "TaskCounters",
    "TaskFailure",
    "distributed_sort_job",
    "grep_job",
    "inverted_index_job",
    "make_range_partitioner",
    "mean_by_key_job",
    "url_access_count_job",
    "run_with_counters",
    "word_count_job",
]
