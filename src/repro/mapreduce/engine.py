"""The MapReduce runtime.

Execution model (a faithful miniature of the Google paper's):

1. the input is a list of (key, value) records, pre-split into M map
   tasks;
2. each map task applies ``mapper(key, value) -> [(k2, v2), ...]``;
3. an optional ``combiner`` pre-reduces each map task's output locally;
4. intermediate pairs are hash-partitioned into R reduce buckets
   (``partition(k2) = stable_partition(k2) % R`` — a process-stable
   hash, so bucket assignment is identical run-to-run regardless of
   ``PYTHONHASHSEED``) and each bucket is sorted by key;
5. each reduce task applies ``reducer(k2, [v2, ...]) -> value`` per key;
6. the job output is the union of reduce outputs, sorted by key —
   deterministic regardless of worker scheduling.

Map and reduce tasks run on thread pools — or, when a ``scheduler``
(:class:`repro.sched.WorkStealingExecutor`) is supplied, through the
repo-wide work-stealing dispatch layer, whose deterministic mode makes
the whole job's schedule replayable.  An optional ``breaker``
(:class:`repro.faults.policies.CircuitBreaker`) guards worker dispatch:
while open, task attempts are rejected without running (admission
control under persistent failure).  **Fault injection**: the engine
can be told to kill specific task attempts (``TaskFailure``); failed tasks
are retried on another "worker" up to ``max_attempts`` — re-execution, the
paper's fault-tolerance story.  Mappers and reducers must therefore be
pure (a property the test suite checks by injecting failures everywhere
and asserting the output is unchanged).
"""

from __future__ import annotations

import threading
import zlib
from collections import defaultdict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Mapping, Sequence

from repro.faults import hooks as faults
from repro.faults.injector import InjectedCrash, TransientFault
from repro.faults.policies import CircuitBreaker, CircuitOpenError
from repro.telemetry import instrument as telemetry

__all__ = [
    "MapReduceSpec",
    "TaskFailure",
    "JobResult",
    "MapReduceEngine",
    "sort_key",
    "stable_partition",
    "pairs_checksum",
]

Pair = tuple[Hashable, Any]


def sort_key(key: Hashable) -> tuple:
    """Deterministic total order over keys: numbers numerically first,
    everything else by repr.  Gives the distributed-sort job genuine
    numeric order while keeping mixed-type outputs deterministic."""
    if isinstance(key, bool) or not isinstance(key, (int, float)):
        return (1, 0, repr(key))
    return (0, key, "")


def stable_partition(key: Hashable) -> int:
    """Process-stable partition hash (the default partitioner).

    Built-in ``hash`` is salted per process for strings
    (``PYTHONHASHSEED``), which made bucket assignment — and therefore
    per-task counters and traces — differ run to run.  Hashing the
    :func:`sort_key` canonical form through CRC-32 is identical across
    processes, interpreters, and platforms, so the same key always lands
    in the same reduce bucket.
    """
    canonical = repr(sort_key(key)).encode("utf-8", "backslashreplace")
    return zlib.crc32(canonical)


@dataclass(frozen=True)
class MapReduceSpec:
    """A MapReduce job: the two (or three) user functions plus shape."""

    name: str
    mapper: Callable[[Hashable, Any], Iterable[Pair]]
    reducer: Callable[[Hashable, list[Any]], Any]
    combiner: Callable[[Hashable, list[Any]], Any] | None = None
    n_reduce_tasks: int = 4
    partitioner: Callable[[Hashable], int] | None = None   # default: hash

    def __post_init__(self) -> None:
        if self.n_reduce_tasks < 1:
            raise ValueError(f"n_reduce_tasks must be >= 1, got {self.n_reduce_tasks}")


@dataclass(frozen=True)
class TaskFailure:
    """Inject a failure: kill attempt ``attempt`` of the given task."""

    phase: str          # "map" or "reduce"
    task_index: int
    attempt: int = 0    # which attempt dies (0 = first)

    def __post_init__(self) -> None:
        if self.phase not in ("map", "reduce"):
            raise ValueError(f"phase must be 'map' or 'reduce', got {self.phase!r}")
        if self.task_index < 0 or self.attempt < 0:
            raise ValueError("task_index and attempt must be >= 0")


class _InjectedWorkerDeath(RuntimeError):
    """Raised inside a task attempt selected by a TaskFailure."""


def pairs_checksum(pairs: Sequence[Pair]) -> int:
    """Order-sensitive CRC-32 over a task's output pairs.

    The checksum a map task publishes with its output; the shuffle
    verifies it before partitioning, so in-flight corruption is detected
    and answered by re-execution rather than silently wrong counts.
    Uses the same canonical repr as :func:`stable_partition`, so it is
    identical across processes and ``PYTHONHASHSEED`` values.
    """
    crc = 0
    for k, v in pairs:
        blob = repr((sort_key(k), v)).encode("utf-8", "backslashreplace")
        crc = zlib.crc32(blob, crc)
    return crc


def _corrupt_pairs(pairs: list[Pair]) -> list[Pair]:
    """Deterministic in-flight mangling: drop the last pair (or conjure
    one from nothing when the output was empty)."""
    if not pairs:
        return [("\x00corrupted", -1)]
    return pairs[:-1]


@dataclass(frozen=True)
class JobResult:
    """Output plus execution statistics."""

    name: str
    output: tuple[Pair, ...]                 # sorted by key
    per_reduce_outputs: tuple[tuple[Pair, ...], ...] = ()
    n_map_tasks: int = 0
    n_reduce_tasks: int = 0
    map_attempts: int = 0
    reduce_attempts: int = 0
    intermediate_pairs: int = 0

    def as_dict(self) -> dict[Hashable, Any]:
        return dict(self.output)

    @property
    def retries(self) -> int:
        return (self.map_attempts - self.n_map_tasks) + (
            self.reduce_attempts - self.n_reduce_tasks
        )


class MapReduceEngine:
    """Runs :class:`MapReduceSpec` jobs on thread pools."""

    def __init__(
        self,
        n_workers: int = 4,
        max_attempts: int = 3,
        failures: Sequence[TaskFailure] = (),
        scheduler: Any | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.n_workers = n_workers
        self.max_attempts = max_attempts
        self._failures = {(f.phase, f.task_index, f.attempt) for f in failures}
        self._attempt_counts: dict[tuple[str, int], int] = defaultdict(int)
        self._attempt_lock = threading.Lock()
        #: Optional repro.sched dispatch layer (duck-typed: needs .map).
        self.scheduler = scheduler
        #: Optional circuit breaker guarding every task-attempt dispatch.
        self.breaker = breaker

    def _dispatch(self, fns: list[Callable[[], Any]], phase: str) -> list[Any]:
        """Run phase tasks: through the shared scheduler when configured,
        else on this engine's private thread pool (the legacy path)."""
        if self.scheduler is not None:
            return self.scheduler.map(fns, name=f"mr.{phase}")
        with ThreadPoolExecutor(max_workers=self.n_workers,
                                thread_name_prefix="mr-worker") as pool:
            futures = [pool.submit(fn) for fn in fns]
            return [f.result() for f in futures]

    # -- internals ----------------------------------------------------------

    def _attempt(self, phase: str, index: int) -> int:
        with self._attempt_lock:
            attempt = self._attempt_counts[(phase, index)]
            self._attempt_counts[(phase, index)] += 1
            return attempt

    def _run_task(
        self,
        phase: str,
        index: int,
        fn: Callable[[], Any],
        parent_id: int | None = None,
    ) -> Any:
        last_error: BaseException | None = None
        for _ in range(self.max_attempts):
            if self.breaker is not None and not self.breaker.allow():
                # Admission control: while the breaker is open this task
                # attempt is shed instead of executed (ROADMAP follow-up).
                telemetry.instant("mr.dispatch.rejected", phase=phase,
                                  task=index)
                telemetry.inc("mr.dispatch.rejected")
                last_error = CircuitOpenError(
                    f"{phase} task {index} rejected: dispatch breaker open"
                )
                continue
            attempt = self._attempt(phase, index)
            if attempt > 0:
                # A retry: the previous attempt of this task died.
                telemetry.instant("mr.retry", phase=phase, task=index,
                                  attempt=attempt)
                telemetry.inc("mr.retries")
                telemetry.counter_event("mr.retries", self._retry_total())
            if (phase, index, attempt) in self._failures:
                telemetry.instant("mr.task.killed", phase=phase, task=index,
                                  attempt=attempt)
                telemetry.inc("mr.tasks.killed")
                if self.breaker is not None:
                    self.breaker.record_failure()
                last_error = _InjectedWorkerDeath(
                    f"{phase} task {index} attempt {attempt} killed"
                )
                continue
            telemetry.ensure_thread("mapreduce")
            try:
                # Chaos hook: a plan-scheduled worker death or transient
                # error for this attempt; keyed per task so the attempt
                # index is a stable coordinate under any scheduling.
                faults.fire("mr.task", key=f"{phase}:{index}",
                            phase=phase, task=index, attempt=attempt)
                with telemetry.span(f"mr.{phase}.task", category="task",
                                    parent_id=parent_id, task=index,
                                    attempt=attempt):
                    value = fn()
                if self.breaker is not None:
                    self.breaker.record_success()
                return value
            except (InjectedCrash, TransientFault) as exc:
                telemetry.instant("mr.task.killed", phase=phase, task=index,
                                  attempt=attempt)
                telemetry.inc("mr.tasks.killed")
                if self.breaker is not None:
                    self.breaker.record_failure()
                last_error = exc
            except _InjectedWorkerDeath as exc:  # pragma: no cover - defensive
                last_error = exc
        raise RuntimeError(
            f"{phase} task {index} failed after {self.max_attempts} attempts"
        ) from last_error

    def _verified_transfer(
        self,
        index: int,
        output: list[Pair],
        splits: list[list[Pair]],
        map_task: Callable[[list[Pair]], list[Pair]],
        parent_id: int | None,
    ) -> list[Pair]:
        """Move one map output into the shuffle with integrity checking.

        Only runs when a fault plan is active: the producer-side checksum
        is computed, the transfer may be corrupted by a CORRUPT rule, and
        a mismatch at the consumer re-executes the map task — the
        fault-tolerance answer to data corruption, mirroring the
        re-execution answer to worker death.
        """
        expected = pairs_checksum(output)
        if faults.corrupt("mr.shuffle", key=f"map:{index}", task=index):
            output = _corrupt_pairs(output)
        if pairs_checksum(output) != expected:
            telemetry.instant("mr.shuffle.corruption_detected", task=index)
            telemetry.inc("mr.shuffle.corruptions")
            output = self._run_task(
                "map", index, lambda s=splits[index]: map_task(s), parent_id
            )
        return output

    def _retry_total(self) -> int:
        """Retries so far (attempts beyond the first, across all tasks)."""
        with self._attempt_lock:
            return sum(max(0, c - 1) for c in self._attempt_counts.values())

    @staticmethod
    def _apply_combiner(
        spec: MapReduceSpec, pairs: Iterable[Pair]
    ) -> list[Pair]:
        if spec.combiner is None:
            return list(pairs)
        grouped: dict[Hashable, list[Any]] = defaultdict(list)
        order: list[Hashable] = []
        for k, v in pairs:
            if k not in grouped:
                order.append(k)
            grouped[k].append(v)
        return [(k, spec.combiner(k, grouped[k])) for k in order]

    # -- API ----------------------------------------------------------------

    def run(
        self,
        spec: MapReduceSpec,
        records: Sequence[Pair],
        n_map_tasks: int | None = None,
    ) -> JobResult:
        """Execute a job over input records; deterministic sorted output."""
        m = n_map_tasks if n_map_tasks is not None else min(
            max(1, len(records)), self.n_workers * 2
        )
        if m < 1:
            raise ValueError(f"n_map_tasks must be >= 1, got {m}")
        # Contiguous input splits.
        splits: list[list[Pair]] = [[] for _ in range(m)]
        for i, record in enumerate(records):
            splits[i * m // max(1, len(records))].append(record)

        def map_task(split: list[Pair]) -> list[Pair]:
            out: list[Pair] = []
            for k, v in split:
                out.extend(spec.mapper(k, v))
            return self._apply_combiner(spec, out)

        job_cm = telemetry.span("mr.job", category="job", job=spec.name,
                                n_map_tasks=m,
                                n_reduce_tasks=spec.n_reduce_tasks,
                                records=len(records))
        with job_cm as job_span:
            job_id = job_span.span_id if job_span is not None else None
            map_outputs = self._dispatch(
                [
                    lambda i=i, s=split: self._run_task(
                        "map", i, lambda s=s: map_task(s), job_id
                    )
                    for i, split in enumerate(splits)
                ],
                "map",
            )

            if faults.enabled():
                map_outputs = [
                    self._verified_transfer(i, output, splits, map_task, job_id)
                    for i, output in enumerate(map_outputs)
                ]

            # Shuffle: hash-partition and sort each reduce bucket by key.
            buckets: list[dict[Hashable, list[Any]]] = [
                defaultdict(list) for _ in range(spec.n_reduce_tasks)
            ]
            intermediate = 0
            with telemetry.span("mr.shuffle", category="shuffle",
                                parent_id=job_id):
                for output in map_outputs:
                    for k, v in output:
                        if spec.partitioner is not None:
                            bucket_index = spec.partitioner(k) % spec.n_reduce_tasks
                        else:
                            bucket_index = stable_partition(k) % spec.n_reduce_tasks
                        buckets[bucket_index][k].append(v)
                        intermediate += 1
            if telemetry.enabled():
                telemetry.inc("mr.shuffle.pairs", intermediate)
                telemetry.counter_event("mr.shuffle.pairs", intermediate)
                for r, bucket in enumerate(buckets):
                    telemetry.counter_event(
                        "mr.shuffle.bucket_keys", len(bucket), series=f"r{r}"
                    )

            def reduce_task(bucket: dict[Hashable, list[Any]]) -> list[Pair]:
                return [
                    (k, spec.reducer(k, bucket[k]))
                    for k in sorted(bucket, key=sort_key)
                ]

            reduce_outputs = self._dispatch(
                [
                    lambda r=r, b=bucket: self._run_task(
                        "reduce", r, lambda b=b: reduce_task(b), job_id
                    )
                    for r, bucket in enumerate(buckets)
                ],
                "reduce",
            )

        output = sorted(
            (pair for chunk in reduce_outputs for pair in chunk),
            key=lambda kv: sort_key(kv[0]),
        )
        with self._attempt_lock:
            map_attempts = sum(
                count for (phase, _i), count in self._attempt_counts.items() if phase == "map"
            )
            reduce_attempts = sum(
                count for (phase, _i), count in self._attempt_counts.items() if phase == "reduce"
            )
            self._attempt_counts.clear()
        return JobResult(
            name=spec.name,
            output=tuple(output),
            per_reduce_outputs=tuple(tuple(chunk) for chunk in reduce_outputs),
            n_map_tasks=m,
            n_reduce_tasks=spec.n_reduce_tasks,
            map_attempts=map_attempts,
            reduce_attempts=reduce_attempts,
            intermediate_pairs=intermediate,
        )

    def run_sequential(self, spec: MapReduceSpec, records: Sequence[Pair]) -> JobResult:
        """Reference implementation: same semantics, one thread, no shuffle.

        The equivalence ``run(...) == run_sequential(...)`` (on outputs) is
        the core property test of this package.
        """
        grouped: dict[Hashable, list[Any]] = defaultdict(list)
        intermediate = 0
        for k, v in records:
            for k2, v2 in spec.mapper(k, v):
                grouped[k2].append(v2)
                intermediate += 1
        output = sorted(
            ((k, spec.reducer(k, vs)) for k, vs in grouped.items()),
            key=lambda kv: sort_key(kv[0]),
        )
        return JobResult(
            name=spec.name,
            output=tuple(output),
            per_reduce_outputs=(tuple(output),),
            n_map_tasks=1,
            n_reduce_tasks=1,
            map_attempts=1,
            reduce_attempts=1,
            intermediate_pairs=intermediate,
        )
