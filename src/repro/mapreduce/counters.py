"""Job counters (the Google paper's §4.9).

"The MapReduce library provides a counter facility to count occurrences
of various events … counter values from successful map and reduce tasks
are aggregated by the master."  Counters from *failed or duplicate* task
attempts must not double-count — the reason the facility is per-attempt
and folded in only once a task commits.

:class:`CounterSet` implements that: a task attempt gets a scratch
:class:`TaskCounters` and the engine commits exactly one attempt's
counters per task.  :func:`run_with_counters` is a thin engine wrapper
whose mapper/reducer receive the scratch counters as an extra argument.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Sequence

from repro.mapreduce.engine import JobResult, MapReduceEngine, MapReduceSpec, Pair

__all__ = ["TaskCounters", "CounterSet", "run_with_counters"]


@dataclass
class TaskCounters:
    """Per-attempt scratch counters."""

    values: Counter = field(default_factory=Counter)

    def increment(self, name: str, delta: int = 1) -> None:
        if not name:
            raise ValueError("counter name must be non-empty")
        self.values[name] += delta


class CounterSet:
    """Master-side aggregation: one commit per task."""

    def __init__(self) -> None:
        self._totals: Counter = Counter()
        self._committed: set[tuple[str, int]] = set()
        self._lock = threading.Lock()

    def commit(self, phase: str, task_index: int, counters: TaskCounters) -> bool:
        """Fold one attempt's counters; False if this task already
        committed (a duplicate/backup attempt — dropped)."""
        key = (phase, task_index)
        with self._lock:
            if key in self._committed:
                return False
            self._committed.add(key)
            self._totals.update(counters.values)
            return True

    def value(self, name: str) -> int:
        with self._lock:
            return self._totals[name]

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return dict(self._totals)


def run_with_counters(
    records: Sequence[Pair],
    mapper: Callable[[Hashable, object, TaskCounters], Iterable[Pair]],
    reducer: Callable[[Hashable, list, TaskCounters], object],
    n_workers: int = 4,
    n_reduce_tasks: int = 4,
    name: str = "counted-job",
) -> tuple[JobResult, CounterSet]:
    """Run a job whose user functions take a counters argument.

    Each map split and reduce bucket gets its own :class:`TaskCounters`,
    committed once on completion; the aggregated :class:`CounterSet` is
    returned alongside the job result.
    """
    counters = CounterSet()
    next_map = [0]
    next_reduce = [0]
    allocate = threading.Lock()

    def wrapped_mapper(key: Hashable, value: object) -> Iterable[Pair]:
        # One scratch + one commit per mapper invocation.  Engine retries
        # would re-invoke under a fresh index, so the "committed" guard is
        # exercised by the speculation engine (tests), not this wrapper.
        with allocate:
            index = next_map[0]
            next_map[0] += 1
        scratch = TaskCounters()
        out = list(mapper(key, value, scratch))
        counters.commit("map", index, scratch)
        return out

    def wrapped_reducer(key: Hashable, values: list) -> object:
        with allocate:
            index = next_reduce[0]
            next_reduce[0] += 1
        scratch = TaskCounters()
        result = reducer(key, values, scratch)
        counters.commit("reduce", index, scratch)
        return result

    spec = MapReduceSpec(
        name=name,
        mapper=wrapped_mapper,
        reducer=wrapped_reducer,
        n_reduce_tasks=n_reduce_tasks,
    )
    result = MapReduceEngine(n_workers=n_workers).run(spec, records)
    return result, counters
