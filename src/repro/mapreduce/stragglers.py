"""Straggler mitigation: backup tasks (the Google paper's §3.6).

"When a MapReduce operation is close to completion, the master schedules
backup executions of the remaining in-progress tasks.  The task is marked
as completed whenever either the primary or the backup execution
completes."

:class:`SpeculativeEngine` teaches the idiom at MapReduce level, but the
mechanism now lives in the dispatch substrate: the map phase runs through
a :class:`~repro.sched.executor.WorkStealingExecutor` with a
:class:`~repro.sched.spec.SpecPolicy` installed (``min_age_s`` =
``straggler_wait_s``), so the same straggler detection, backup launch,
and first-completion-wins commit protect every other workload the
executor runs.  Injected *slow tasks* wait on the scheduler's
:func:`~repro.sched.spec.obsolete_event` through the clock — the
in-process analogue of the kill RPC — so a killed straggler releases its
worker the moment its backup wins.  Because mappers are pure, the
winner's identity never changes the output — asserted in the tests and
the bench.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Sequence

from repro.faults.clock import SYSTEM_CLOCK, Clock
from repro.mapreduce.engine import JobResult, MapReduceEngine, MapReduceSpec, Pair
from repro.sched.executor import WorkStealingExecutor
from repro.sched.spec import SpecPolicy, is_backup, obsolete_event
from repro.telemetry import instrument as telemetry

__all__ = ["SlowTask", "SpeculativeResult", "SpeculativeEngine"]


@dataclass(frozen=True)
class SlowTask:
    """Inject a straggler: map task ``task_index`` sleeps ``delay_s``
    on its primary attempt (backups run at full speed)."""

    task_index: int
    delay_s: float

    def __post_init__(self) -> None:
        if self.task_index < 0:
            raise ValueError("task_index must be >= 0")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")


@dataclass(frozen=True)
class SpeculativeResult:
    """A job result plus speculation accounting.

    ``wall_seconds`` is measured on the engine's clock — monotonic real
    time by default, nominal (uncompressed) units under a
    :class:`~repro.faults.clock.ScaledClock` — never the steppable wall
    clock."""

    result: JobResult
    backups_launched: int
    backups_won: int
    wall_seconds: float


class SpeculativeEngine:
    """Map-phase speculation through the shared scheduler.

    All waiting — the injected straggler delays, the speculation
    trigger, and the wall-time measurement — goes through ``clock``
    (:class:`~repro.faults.clock.Clock`), so tests compress or fake
    time instead of really sleeping through 0.5-second stragglers.
    """

    def __init__(
        self,
        n_workers: int = 4,
        straggler_wait_s: float = 0.05,
        slow_tasks: Sequence[SlowTask] = (),
        clock: Clock | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if straggler_wait_s < 0:
            raise ValueError("straggler_wait_s must be >= 0")
        self.n_workers = n_workers
        self.straggler_wait_s = straggler_wait_s
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self._slow = {s.task_index: s.delay_s for s in slow_tasks}

    def run(
        self,
        spec: MapReduceSpec,
        records: Sequence[Pair],
        n_map_tasks: int | None = None,
        speculate: bool = True,
    ) -> SpeculativeResult:
        """Run with (or, for the ablation, without) backup tasks."""
        start = self.clock.monotonic()
        with telemetry.span("mr.speculative_job", category="job",
                            job=spec.name, speculate=speculate):
            return self._run_inner(spec, records, n_map_tasks, speculate, start)

    def _run_inner(
        self,
        spec: MapReduceSpec,
        records: Sequence[Pair],
        n_map_tasks: int | None,
        speculate: bool,
        start: float,
    ) -> SpeculativeResult:
        base = MapReduceEngine(n_workers=self.n_workers)
        m = n_map_tasks if n_map_tasks is not None else max(
            1, min(len(records), self.n_workers * 2)
        )
        splits: list[list[Pair]] = [[] for _ in range(m)]
        for i, record in enumerate(records):
            splits[i * m // max(1, len(records))].append(record)

        def map_task(index: int, split: list[Pair]) -> list[Pair]:
            telemetry.ensure_thread("mapreduce")
            backup = is_backup()
            kind = "backup" if backup else "primary"
            with telemetry.span(f"mr.map.{kind}", category="speculation",
                                task=index, slow=index in self._slow):
                if not backup and index in self._slow:
                    # The injected slow-down waits on the scheduler's
                    # obsolete event through the clock: a real clock
                    # blocks, a scaled clock blocks for a fraction, a
                    # fake clock returns instantly.  The event fires
                    # when a backup wins — the master's kill.
                    kill = obsolete_event() or threading.Event()
                    if self.clock.wait(kill, self._slow[index]):
                        telemetry.instant("mr.straggler.killed", task=index)
                out: list[Pair] = []
                for k, v in split:
                    out.extend(spec.mapper(k, v))
                return MapReduceEngine._apply_combiner(spec, out)

        def listener(event: str, primary) -> None:
            # The batch is submitted first on a fresh executor, so
            # task_id == map-task index.
            if event == "launched":
                telemetry.instant("mr.backup.launched", task=primary.task_id)
                telemetry.inc("mr.backups.launched")
            elif event == "won":
                telemetry.instant("mr.backup.won", task=primary.task_id)
                telemetry.inc("mr.backups.won")

        executor = WorkStealingExecutor(
            n_workers=self.n_workers, seed=0, deterministic=False
        )
        if speculate:
            # min_completed=0 preserves the original contract: once the
            # wait elapses, any still-running task gets a backup even if
            # no sibling has finished yet.
            executor.speculate(
                SpecPolicy(k=2.0, min_age_s=self.straggler_wait_s,
                           min_completed=0),
                clock=self.clock, listener=listener,
            )
        try:
            map_outputs = executor.map(
                [lambda i=i, s=s: map_task(i, s)
                 for i, s in enumerate(splits)],
                name="mr.map",
            )
            stats = executor.stats()
        finally:
            executor.close()
        backups_launched = stats.backups_launched
        backups_won = stats.backups_won

        # Reduce phase: reuse the base engine by feeding it pre-mapped pairs
        # through an identity mapper (the shuffle/reduce path is identical).
        flat: list[Pair] = [pair for output in map_outputs for pair in output]
        identity = MapReduceSpec(
            name=spec.name + "+speculation",
            mapper=lambda k, v: [(k, v)],
            reducer=spec.reducer,
            n_reduce_tasks=spec.n_reduce_tasks,
        )
        result = base.run(identity, flat, n_map_tasks=1)
        return SpeculativeResult(
            result=JobResult(
                name=spec.name,
                output=result.output,
                n_map_tasks=m,
                n_reduce_tasks=spec.n_reduce_tasks,
                map_attempts=m + backups_launched,
                reduce_attempts=result.reduce_attempts,
                intermediate_pairs=len(flat),
            ),
            backups_launched=backups_launched,
            backups_won=backups_won,
            wall_seconds=self.clock.monotonic() - start,
        )
