"""Straggler mitigation: backup tasks (the Google paper's §3.6).

"When a MapReduce operation is close to completion, the master schedules
backup executions of the remaining in-progress tasks.  The task is marked
as completed whenever either the primary or the backup execution
completes."

:class:`SpeculativeEngine` wraps the base engine's map phase: injected
*slow tasks* sleep; once every task has been dispatched, tasks still
running after ``straggler_wait_s`` get a backup attempt, and whichever
attempt finishes first supplies the result.  Because mappers are pure,
the winner's identity never changes the output — asserted in the tests
and the bench.
"""

from __future__ import annotations

import threading
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.faults.clock import SYSTEM_CLOCK, Clock
from repro.mapreduce.engine import JobResult, MapReduceEngine, MapReduceSpec, Pair
from repro.telemetry import instrument as telemetry

__all__ = ["SlowTask", "SpeculativeResult", "SpeculativeEngine"]


@dataclass(frozen=True)
class SlowTask:
    """Inject a straggler: map task ``task_index`` sleeps ``delay_s``
    on its primary attempt (backups run at full speed)."""

    task_index: int
    delay_s: float

    def __post_init__(self) -> None:
        if self.task_index < 0:
            raise ValueError("task_index must be >= 0")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")


@dataclass(frozen=True)
class SpeculativeResult:
    """A job result plus speculation accounting.

    ``wall_seconds`` is measured on the engine's clock — monotonic real
    time by default, nominal (uncompressed) units under a
    :class:`~repro.faults.clock.ScaledClock` — never the steppable wall
    clock."""

    result: JobResult
    backups_launched: int
    backups_won: int
    wall_seconds: float


class SpeculativeEngine:
    """Map-phase speculation on top of :class:`MapReduceEngine`.

    All waiting — the injected straggler delays, the speculation
    trigger, and the wall-time measurement — goes through ``clock``
    (:class:`~repro.faults.clock.Clock`), so tests compress or fake
    time instead of really sleeping through 0.5-second stragglers.
    """

    def __init__(
        self,
        n_workers: int = 4,
        straggler_wait_s: float = 0.05,
        slow_tasks: Sequence[SlowTask] = (),
        clock: Clock | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if straggler_wait_s < 0:
            raise ValueError("straggler_wait_s must be >= 0")
        self.n_workers = n_workers
        self.straggler_wait_s = straggler_wait_s
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self._slow = {s.task_index: s.delay_s for s in slow_tasks}

    def run(
        self,
        spec: MapReduceSpec,
        records: Sequence[Pair],
        n_map_tasks: int | None = None,
        speculate: bool = True,
    ) -> SpeculativeResult:
        """Run with (or, for the ablation, without) backup tasks."""
        start = self.clock.monotonic()
        with telemetry.span("mr.speculative_job", category="job",
                            job=spec.name, speculate=speculate):
            return self._run_inner(spec, records, n_map_tasks, speculate, start)

    def _run_inner(
        self,
        spec: MapReduceSpec,
        records: Sequence[Pair],
        n_map_tasks: int | None,
        speculate: bool,
        start: float,
    ) -> SpeculativeResult:
        base = MapReduceEngine(n_workers=self.n_workers)
        m = n_map_tasks if n_map_tasks is not None else max(
            1, min(len(records), self.n_workers * 2)
        )
        splits: list[list[Pair]] = [[] for _ in range(m)]
        for i, record in enumerate(records):
            splits[i * m // max(1, len(records))].append(record)

        # When a backup wins, the master kills the straggling primary; the
        # injected slow-down polls this event to emulate that kill.
        kill_events: dict[int, threading.Event] = {
            index: threading.Event() for index in range(m)
        }

        def map_task(index: int, split: list[Pair], primary: bool) -> list[Pair]:
            telemetry.ensure_thread("mapreduce")
            kind = "primary" if primary else "backup"
            with telemetry.span(f"mr.map.{kind}", category="speculation",
                                task=index, slow=index in self._slow):
                if primary and index in self._slow:
                    # The injected slow-down waits on the kill event through
                    # the clock: a real clock blocks, a scaled clock blocks
                    # for a fraction, a fake clock returns instantly.
                    if self.clock.wait(kill_events[index], self._slow[index]):
                        telemetry.instant("mr.straggler.killed", task=index)
                out: list[Pair] = []
                for k, v in split:
                    out.extend(spec.mapper(k, v))
                return MapReduceEngine._apply_combiner(spec, out)

        backups_launched = 0
        backups_won = 0
        map_outputs: list[list[Pair] | None] = [None] * m
        # Double the pool so backups never starve behind stragglers; shut
        # down without waiting so killed stragglers don't serialize us.
        pool = ThreadPoolExecutor(max_workers=2 * self.n_workers)
        try:
            primaries = {
                index: pool.submit(map_task, index, split, True)
                for index, split in enumerate(splits)
            }
            if speculate:
                self.clock.wait_futures(
                    list(primaries.values()), timeout=self.straggler_wait_s
                )
                backups = {}
                for index, future in primaries.items():
                    if not future.done():
                        telemetry.instant("mr.backup.launched", task=index)
                        telemetry.inc("mr.backups.launched")
                        backups[index] = pool.submit(map_task, index, splits[index], False)
                        backups_launched += 1
                        telemetry.counter_event("mr.backups", backups_launched)
                for index in primaries:
                    if index in backups:
                        done, _pending = wait(
                            [primaries[index], backups[index]],
                            return_when=FIRST_COMPLETED,
                        )
                        winner = next(iter(done))
                        if winner is backups[index]:
                            backups_won += 1
                            telemetry.instant("mr.backup.won", task=index)
                            telemetry.inc("mr.backups.won")
                            kill_events[index].set()
                        map_outputs[index] = winner.result()
                    else:
                        map_outputs[index] = primaries[index].result()
            else:
                for index, future in primaries.items():
                    map_outputs[index] = future.result()
        finally:
            pool.shutdown(wait=False)

        # Reduce phase: reuse the base engine by feeding it pre-mapped pairs
        # through an identity mapper (the shuffle/reduce path is identical).
        flat: list[Pair] = [pair for output in map_outputs for pair in output]  # type: ignore[union-attr]
        identity = MapReduceSpec(
            name=spec.name + "+speculation",
            mapper=lambda k, v: [(k, v)],
            reducer=spec.reducer,
            n_reduce_tasks=spec.n_reduce_tasks,
        )
        result = base.run(identity, flat, n_map_tasks=1)
        return SpeculativeResult(
            result=JobResult(
                name=spec.name,
                output=result.output,
                n_map_tasks=m,
                n_reduce_tasks=spec.n_reduce_tasks,
                map_attempts=m + backups_launched,
                reduce_attempts=result.reduce_attempts,
                intermediate_pairs=len(flat),
            ),
            backups_launched=backups_launched,
            backups_won=backups_won,
            wall_seconds=self.clock.monotonic() - start,
        )
