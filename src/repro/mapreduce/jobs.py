"""The canonical MapReduce computations.

Assignment 5: "List and describe three examples that are expressed as
MapReduce computations."  The Google paper's classics, plus the two the
course handout walks through:

- word count — mapper emits (word, 1), reducer sums (combiner-safe);
- distributed grep — mapper emits matching lines, identity reducer;
- inverted index — mapper emits (word, document id), reducer sorts and
  dedups the posting list;
- URL access count — word count over log lines' URL field;
- per-key mean — shows why a naive mean reducer cannot be its own
  combiner: the combiner emits (sum, count) pairs instead.
"""

from __future__ import annotations

import re
from typing import Any, Hashable, Iterable

from repro.mapreduce.engine import MapReduceSpec

__all__ = [
    "tokenize",
    "word_count_job",
    "grep_job",
    "inverted_index_job",
    "url_access_count_job",
    "mean_by_key_job",
    "make_range_partitioner",
    "distributed_sort_job",
]

_WORD_RE = re.compile(r"[A-Za-z0-9']+")


def tokenize(text: str) -> list[str]:
    """Lower-cased word tokens of a line of text."""
    return [w.lower() for w in _WORD_RE.findall(text)]


def word_count_job(n_reduce_tasks: int = 4) -> MapReduceSpec:
    """Count occurrences of every word.  Input records: (doc_id, text)."""

    def mapper(_key: Hashable, text: Any) -> Iterable[tuple[str, int]]:
        return [(word, 1) for word in tokenize(str(text))]

    def reducer(_word: Hashable, counts: list[int]) -> int:
        return sum(counts)

    return MapReduceSpec(
        name="word_count",
        mapper=mapper,
        reducer=reducer,
        combiner=reducer,            # sum is associative: safe as a combiner
        n_reduce_tasks=n_reduce_tasks,
    )


def grep_job(pattern: str, n_reduce_tasks: int = 4) -> MapReduceSpec:
    """Distributed grep: emit lines matching ``pattern``.

    Input records: (line_number, line).  Output: (line_number, line) for
    matching lines.
    """
    compiled = re.compile(pattern)

    def mapper(line_no: Hashable, line: Any) -> Iterable[tuple[Hashable, str]]:
        text = str(line)
        if compiled.search(text):
            return [(line_no, text)]
        return []

    def reducer(_line_no: Hashable, lines: list[str]) -> str:
        return lines[0]

    return MapReduceSpec(
        name=f"grep({pattern!r})",
        mapper=mapper,
        reducer=reducer,
        n_reduce_tasks=n_reduce_tasks,
    )


def inverted_index_job(n_reduce_tasks: int = 4) -> MapReduceSpec:
    """Build word -> sorted list of documents containing it."""

    def mapper(doc_id: Hashable, text: Any) -> Iterable[tuple[str, Hashable]]:
        return [(word, doc_id) for word in set(tokenize(str(text)))]

    def reducer(_word: Hashable, doc_ids: list[Hashable]) -> tuple[Hashable, ...]:
        return tuple(sorted(set(doc_ids), key=repr))

    return MapReduceSpec(
        name="inverted_index",
        mapper=mapper,
        reducer=reducer,
        n_reduce_tasks=n_reduce_tasks,
    )


def url_access_count_job(n_reduce_tasks: int = 4) -> MapReduceSpec:
    """Count accesses per URL from web-server log lines.

    Input records: (line_number, log_line) where the URL is the second
    whitespace-separated field (``<client> <url> <status>``).
    """

    def mapper(_line_no: Hashable, line: Any) -> Iterable[tuple[str, int]]:
        fields = str(line).split()
        if len(fields) >= 2:
            return [(fields[1], 1)]
        return []

    def reducer(_url: Hashable, counts: list[int]) -> int:
        return sum(counts)

    return MapReduceSpec(
        name="url_access_count",
        mapper=mapper,
        reducer=reducer,
        combiner=reducer,
        n_reduce_tasks=n_reduce_tasks,
    )


def mean_by_key_job(n_reduce_tasks: int = 4) -> MapReduceSpec:
    """Mean value per key, done correctly under combining.

    A mean of means is wrong when group sizes differ, so the mapper emits
    (key, (value, 1)) pairs, the combiner adds componentwise, and only the
    reducer divides.  Input records: (key, number).
    """

    def mapper(key: Hashable, value: Any) -> Iterable[tuple[Hashable, tuple[float, int]]]:
        return [(key, (float(value), 1))]

    def combiner(_key: Hashable, partials: list[tuple[float, int]]) -> tuple[float, int]:
        total = sum(p[0] for p in partials)
        count = sum(p[1] for p in partials)
        return (total, count)

    def reducer(_key: Hashable, partials: list[tuple[float, int]]) -> float:
        total = sum(p[0] for p in partials)
        count = sum(p[1] for p in partials)
        return total / count

    return MapReduceSpec(
        name="mean_by_key",
        mapper=mapper,
        reducer=reducer,
        combiner=combiner,
        n_reduce_tasks=n_reduce_tasks,
    )


def make_range_partitioner(boundaries: list[float]):
    """Range partitioner: key -> index of the first boundary it is below.

    ``boundaries`` are the R-1 split points of a TeraSort-style job; keys
    must be comparable to them.
    """
    import bisect

    ordered = sorted(boundaries)

    def partition(key) -> int:
        return bisect.bisect_right(ordered, key)

    return partition


def distributed_sort_job(boundaries: list[float]) -> MapReduceSpec:
    """Distributed sort (the TeraSort shape, Google paper §5.3).

    Input records: (anything, number).  The mapper emits the number as
    the key; the *range* partitioner sends each key range to one reduce
    task; each reduce bucket is sorted locally — so concatenating the
    per-reduce outputs in bucket order yields the globally sorted data
    (asserted by the tests and bench).  The reducer's value is the
    multiplicity, preserving duplicates.
    """

    def mapper(_key: Hashable, value: Any) -> Iterable[tuple[float, int]]:
        return [(value, 1)]

    def reducer(_key: Hashable, ones: list[int]) -> int:
        return sum(ones)

    return MapReduceSpec(
        name="distributed_sort",
        mapper=mapper,
        reducer=reducer,
        n_reduce_tasks=len(boundaries) + 1,
        partitioner=make_range_partitioner(boundaries),
    )
