"""Population-scale survey simulation with streaming aggregation.

``repro.megacohort`` regenerates the paper's Tables 1–6 for cohorts far
beyond the published N=124 — a million students by default — without
ever materialising the full response tensor.  The pipeline:

1. **Shard** the cohort (:mod:`~repro.megacohort.shards`): each shard
   draws its own rows from an independent PCG64 stream derived from the
   run seed and the shard index, through the same
   :func:`~repro.simulation.model.draw_response_blocks` /
   :func:`~repro.simulation.model.scores_from_blocks` map the N=124
   model uses.
2. **Reduce** each shard to sufficient statistics
   (:mod:`~repro.megacohort.aggregate`): streaming Welford/Chan moment
   accumulators covering every Table 1–6 cell.
3. **Merge** shard statistics in canonical shard-index order
   (order-independent by construction) and compute the analysis from
   the merged statistics alone (:mod:`~repro.megacohort.run`).

Correctness anchor: at N=124 with the calibrated knobs and a single
shard, the streamed pipeline renders Tables 1–6 **byte-identically** to
the in-memory path (``tests/test_megacohort.py`` pins this).
"""

from repro.megacohort.aggregate import SurveyStats, analyze
from repro.megacohort.run import (
    MegacohortResult,
    identity_check,
    run_in_memory,
    run_streamed,
)
from repro.megacohort.shards import (
    DEFAULT_SHARD_ROWS,
    FAULT_SITE,
    ShardSpec,
    plan_shards,
    shard_rng,
    shard_scores,
    shard_stats,
    shard_stats_task,
)

__all__ = [
    "DEFAULT_SHARD_ROWS",
    "FAULT_SITE",
    "MegacohortResult",
    "ShardSpec",
    "SurveyStats",
    "analyze",
    "identity_check",
    "plan_shards",
    "run_in_memory",
    "run_streamed",
    "shard_rng",
    "shard_scores",
    "shard_stats",
    "shard_stats_task",
]
