"""Shard planning and per-shard generation for the mega-cohort.

A run over N students is split into contiguous shards; each shard draws
its rows from its **own** PCG64 stream, so a shard is regenerable from
``(seed, shard_index)`` alone — the property the chaos scenario leans
on (a crashed shard retries from its own seed and the merged tables
come out byte-identical) and the property that makes the merge
order-independent (no stream is shared across shards).

Seed rule:

- shard 0 uses ``np.random.default_rng(seed)`` — exactly the stream the
  N=124 :class:`~repro.simulation.model.ResponseModel` uses, so a
  single-shard run reproduces the monolithic model's draws bit for bit
  (the identity anchor);
- shard ``i > 0`` uses the independent child stream
  ``SeedSequence(entropy=seed, spawn_key=(i,))``.

:func:`shard_stats_task` is the executor task body: module-level (so
``mode="mp"`` can pickle it) and a :mod:`repro.faults` injection site
(``megacohort.shard``) fired *before* the work, so an injected crash
costs nothing but a retry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.faults import hooks as faults
from repro.megacohort.aggregate import SurveyStats
from repro.simulation.model import (
    ModelKnobs,
    draw_response_blocks,
    scores_from_blocks,
)

__all__ = [
    "DEFAULT_SHARD_ROWS",
    "FAULT_SITE",
    "ShardSpec",
    "plan_shards",
    "shard_rng",
    "shard_scores",
    "shard_stats",
    "shard_stats_task",
]

#: Default shard granularity.  At ~2.7 KB of draw+score footprint per
#: row this keeps a shard's working set in the tens of megabytes —
#: large enough that NumPy dominates the task, small enough that
#: workers-many shards in flight stay far below the full-tensor cost.
DEFAULT_SHARD_ROWS = 16384

#: Fault-injection site fired once per shard-task attempt.
FAULT_SITE = "megacohort.shard"


@dataclass(frozen=True)
class ShardSpec:
    """One shard: its canonical index and row count."""

    index: int
    rows: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"shard index must be >= 0, got {self.index}")
        if self.rows < 1:
            raise ValueError(f"shard rows must be >= 1, got {self.rows}")


def plan_shards(n: int, shards: int | None = None) -> tuple[ShardSpec, ...]:
    """Balanced contiguous shard plan for ``n`` rows.

    ``shards=None`` (or 0) sizes the plan at :data:`DEFAULT_SHARD_ROWS`
    rows per shard; an explicit count is clamped to ``n`` so every
    shard has at least one row.  Row counts differ by at most one.
    """
    if n < 1:
        raise ValueError(f"need at least 1 row, got {n}")
    if shards is None or shards == 0:
        shards = math.ceil(n / DEFAULT_SHARD_ROWS)
    if shards < 0:
        raise ValueError(f"shard count must be >= 0, got {shards}")
    shards = min(shards, n)
    base, rem = divmod(n, shards)
    return tuple(
        ShardSpec(index=i, rows=base + (1 if i < rem else 0))
        for i in range(shards)
    )


def shard_rng(seed: int, index: int) -> np.random.Generator:
    """The shard's own PCG64 stream (see the module docstring's seed rule)."""
    if index == 0:
        return np.random.default_rng(seed)
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(index,))
    )


def shard_scores(
    spec: ShardSpec,
    knobs: ModelKnobs,
    k: int,
    items_per_skill: int,
    seed: int,
) -> np.ndarray:
    """Raw item scores (rows, K, 2, 2, items) for one shard.

    Pure function of ``(spec, knobs, k, items_per_skill, seed)`` — the
    regeneration guarantee behind retry-based fault recovery.
    """
    rng = shard_rng(seed, spec.index)
    p_raw, q_raw, e = draw_response_blocks(rng, spec.rows, k, items_per_skill)
    return scores_from_blocks(knobs, p_raw, q_raw, e)


def shard_stats(
    spec: ShardSpec,
    knobs: ModelKnobs,
    skills: Sequence[str],
    items_per_skill: int,
    seed: int,
) -> SurveyStats:
    """One shard reduced to sufficient statistics (pure, no fault site)."""
    scores = shard_scores(spec, knobs, len(skills), items_per_skill, seed)
    return SurveyStats.from_scores(skills, scores)


def shard_stats_task(
    spec: ShardSpec,
    knobs: ModelKnobs,
    skills: tuple[str, ...],
    items_per_skill: int,
    seed: int,
) -> tuple[int, SurveyStats]:
    """Executor task body: ``(shard_index, statistics)``.

    Fires the :data:`FAULT_SITE` injection point before generating, so
    a planned crash/transient lands before any work is wasted; the
    executor's retry re-runs this body and the shard regenerates from
    its own seed.
    """
    faults.fire(FAULT_SITE, key=f"s{spec.index}",
                shard=spec.index, rows=spec.rows)
    return spec.index, shard_stats(spec, knobs, skills, items_per_skill, seed)
