"""The ``megacohort`` workload: trace, sched, and chaos registrations.

One name in the unified :mod:`repro.workloads` registry, three modes:

- **trace** — a small streamed run, summarised in one line;
- **sched** — the shard fan-out dispatched through the caller's
  deterministic stepping executor, reporting a digest of the merged
  analysis (byte-identical across workers and ``mode``, because the
  merged statistics are a pure function of ``(n, shards, seed)``);
- **chaos** — a planned worker crash on one shard and a transient
  exception on another; the executor's retry regenerates each shard
  from its own seed, and the scenario passes only if the merged tables
  come out **byte-identical** to a fault-free reference.

Runtime imports live inside the runners (the registry's provider
pattern) so importing this module costs only the registration.
"""

from __future__ import annotations

from repro import workloads as registry
from repro.faults.plan import FaultKind, FaultPlan, FaultRule
from repro.megacohort.shards import FAULT_SITE

__all__ = ["CHAOS_N", "CHAOS_SHARDS"]

#: Cohort size for the chaos/sched/trace demonstrations: big enough for
#: several shards, small enough for CI.
CHAOS_N = 1200
CHAOS_SHARDS = 6


def _tr_megacohort(threads: int) -> str:
    """A small streamed run: shard fan-out, merge, analysis."""
    from repro.megacohort.run import run_streamed

    result = run_streamed(n=CHAOS_N, shards=CHAOS_SHARDS,
                          workers=max(1, threads))
    analysis = result.analysis
    return (
        f"megacohort streamed: n={result.n} over {result.shards} shards, "
        f"t_emphasis={analysis.ttest_emphasis.t:.4f} "
        f"t_growth={analysis.ttest_growth.t:.4f}"
    )


def _wl_megacohort(executor, workers: int, seed: int) -> tuple[str, list[str]]:
    """Shard fan-out through the scheduler's deterministic executor."""
    from repro.megacohort.run import run_streamed

    result = run_streamed(n=CHAOS_N, shards=CHAOS_SHARDS, seed=seed,
                          executor=executor)
    analysis = result.analysis
    lines = [
        f"n={result.n} shards={result.shards}",
        f"t_emphasis={analysis.ttest_emphasis.t:.6f}",
        f"t_growth={analysis.ttest_growth.t:.6f}",
        f"d_emphasis={analysis.cohens_d_emphasis.d:.6f}",
        f"d_growth={analysis.cohens_d_growth.d:.6f}",
    ]
    summary = (
        f"megacohort fan-out: {result.shards} shard reductions merged "
        f"into one analysis of {result.n} students"
    )
    return summary, lines


def _megacohort_plan(seed: int) -> FaultPlan:
    return FaultPlan(name="megacohort", seed=seed, rules=(
        # A worker crash on shard 1's first attempt: the executor
        # re-queues the task and the shard regenerates from its seed.
        FaultRule(FAULT_SITE, FaultKind.CRASH, at=(0,),
                  where={"shard": 1}, note="shard 1 worker crash"),
        # A transient failure on shard 3, absorbed the same way.
        FaultRule(FAULT_SITE, FaultKind.EXCEPTION, at=(0,),
                  where={"shard": 3}, note="shard 3 transient"),
    ))


def _run_megacohort(injector, seed: int, threads: int) -> tuple[int, list[str], bool]:
    from repro.megacohort.run import (
        _calibration,
        render_analysis_tables,
        run_streamed,
    )
    from repro.megacohort.aggregate import analyze
    from repro.megacohort.shards import plan_shards, shard_stats
    from repro.stats.streaming import merge_indexed

    # Fault-free reference through the pure per-shard path (no fault
    # site fires, so the plan's invocation indices are untouched).
    targets, model, calibration = _calibration(seed)
    plan = plan_shards(CHAOS_N, CHAOS_SHARDS)
    reference = merge_indexed([
        (spec.index, shard_stats(spec, calibration.knobs, targets.skills,
                                 model.items_per_skill, seed))
        for spec in plan
    ])
    expected = render_analysis_tables(analyze(reference))

    # The faulted run: same cohort through the executor, plan active.
    result = run_streamed(n=CHAOS_N, shards=CHAOS_SHARDS, seed=seed,
                          workers=max(1, threads))
    recovered = int(result.sched_stats.get("retries", 0))
    identical = result.render_tables() == expected
    detail = [
        f"{result.shards} shards, 1 crash + 1 transient injected: "
        f"{recovered} executor retry(ies) regenerated the lost shards "
        f"from their own seeds",
        f"merged Tables 1-6 byte-identical to fault-free run: {identical}",
    ]
    ok = identical and recovered >= 2
    return recovered, detail, ok


registry.register(
    "megacohort",
    description="population-scale survey: shard, reduce, merge, report",
    trace=_tr_megacohort,
    sched=_wl_megacohort,
    chaos=_run_megacohort,
    chaos_plan=_megacohort_plan,
)
