"""Shard-level sufficient statistics for the paper's full analysis.

:class:`SurveyStats` is the streaming counterpart of a raw score tensor:
four accumulators that together determine every cell of Tables 1–6,

- ``overall``  — :class:`~repro.stats.streaming.Moments` of the
  per-student overall average, shape (category, wave): the means, SDs
  and n behind the Cohen's d of Tables 2–3;
- ``diff``     — Moments of the per-student first−second overall
  difference, shape (category,): the paired t-tests of Table 1;
- ``composite``— Moments of the per-student Beyerlein composite score,
  shape (skill, category, wave): the cohort-mean rankings of Tables
  5–6, plus the Discussion's spreads and emphasis−growth gaps;
- ``skill_pair`` — :class:`~repro.stats.streaming.CoMoments` of the
  (emphasis, growth) skill-score pair, shape (skill, wave): the Pearson
  correlations of Table 4.

:func:`analyze` turns merged statistics into the same
:class:`~repro.core.analysis.StudyAnalysis` the in-memory path produces
(with ``scores={}`` — the raw per-student vectors no longer exist),
via the ``*_from_stats`` entry points of :mod:`repro.stats`, whose
floating-point operation order mirrors the array versions exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.stats.streaming import CoMoments, Moments

__all__ = ["SurveyStats", "analyze"]


@dataclass(frozen=True)
class SurveyStats:
    """Mergeable sufficient statistics of one shard (or a whole cohort)."""

    skills: tuple[str, ...]
    items_per_skill: int
    overall: Moments        # (category, wave)
    diff: Moments           # (category,)
    composite: Moments      # (skill, category, wave)
    skill_pair: CoMoments   # (skill, wave): x=emphasis, y=growth

    @property
    def count(self) -> int:
        return self.overall.count

    @classmethod
    def from_scores(cls, skills: Sequence[str], scores: np.ndarray) -> "SurveyStats":
        """Reduce a raw item-score tensor (n, K, 2, 2, items) to statistics.

        The derived per-student quantities use the same arithmetic as
        :class:`~repro.simulation.model.RawScores` and
        :mod:`repro.survey.scoring` — integer sums are exact, so the
        per-student values entering the accumulators are bit-identical
        to the in-memory path's.
        """
        skills = tuple(skills)
        if scores.ndim != 5:
            raise ValueError(f"scores must be 5-d, got shape {scores.shape}")
        n, k, n_cat, n_wave, items = scores.shape
        if k != len(skills):
            raise ValueError(f"{k} score skills for {len(skills)} names")
        if n_cat != 2 or n_wave != 2:
            raise ValueError("scores must have 2 categories and 2 waves")
        overall = scores.mean(axis=(1, 4))                # (n, C, W)
        diff = overall[:, :, 0] - overall[:, :, 1]        # (n, C) first - second
        definition = scores[..., 0]
        components = scores[..., 1:].mean(axis=-1)
        composite = (definition + components) / 2.0       # (n, K, C, W)
        skill = scores.mean(axis=-1)                      # (n, K, C, W)
        return cls(
            skills=skills,
            items_per_skill=items,
            overall=Moments.from_batch(overall),
            diff=Moments.from_batch(diff),
            composite=Moments.from_batch(composite),
            skill_pair=CoMoments.from_batch(skill[:, :, 0, :], skill[:, :, 1, :]),
        )

    def merge(self, other: "SurveyStats") -> "SurveyStats":
        """Combine two shards' statistics (Chan merges, elementwise)."""
        if self.skills != other.skills:
            raise ValueError(
                f"cannot merge stats over different skills: "
                f"{self.skills} vs {other.skills}"
            )
        if self.items_per_skill != other.items_per_skill:
            raise ValueError(
                f"cannot merge stats with {self.items_per_skill} and "
                f"{other.items_per_skill} items per skill"
            )
        return SurveyStats(
            skills=self.skills,
            items_per_skill=self.items_per_skill,
            overall=self.overall.merge(other.overall),
            diff=self.diff.merge(other.diff),
            composite=self.composite.merge(other.composite),
            skill_pair=self.skill_pair.merge(other.skill_pair),
        )

    def as_dict(self) -> dict:
        return {
            "skills": list(self.skills),
            "items_per_skill": self.items_per_skill,
            "count": self.count,
            "overall": self.overall.as_dict(),
            "diff": self.diff.as_dict(),
            "composite": self.composite.as_dict(),
            "skill_pair": self.skill_pair.as_dict(),
        }


def analyze(stats: SurveyStats):
    """The paper's full analysis from merged sufficient statistics alone.

    Returns a :class:`~repro.core.analysis.StudyAnalysis` identical in
    shape to :func:`~repro.core.analysis.analyze_waves`'s, except that
    ``scores`` is empty — the raw per-student vectors were never held.
    Everything the report renders (Tables 1–6, fidelity checks) comes
    from the other fields.
    """
    from repro.core.analysis import StudyAnalysis
    from repro.simulation.model import WAVES
    from repro.stats.correlation import pearson_r_from_stats
    from repro.stats.effectsize import cohens_d_from_stats
    from repro.stats.ranking import emphasis_growth_gaps, rank_by_score, spread
    from repro.stats.ttest import ttest_paired_from_stats

    n = stats.count
    diff_mean = stats.diff.mean
    diff_var = stats.diff.variance()
    ttest_emphasis = ttest_paired_from_stats(
        n, float(diff_mean[0]), float(diff_var[0])
    )
    ttest_growth = ttest_paired_from_stats(
        n, float(diff_mean[1]), float(diff_var[1])
    )

    o_mean = stats.overall.mean
    o_var = stats.overall.variance()
    cohens_emphasis = cohens_d_from_stats(
        n, float(o_mean[0, 0]), float(o_var[0, 0]),
        n, float(o_mean[0, 1]), float(o_var[0, 1]),
    )
    cohens_growth = cohens_d_from_stats(
        n, float(o_mean[1, 0]), float(o_var[1, 0]),
        n, float(o_mean[1, 1]), float(o_var[1, 1]),
    )

    pair = stats.skill_pair
    correlations = {
        (skill, wave): pearson_r_from_stats(
            n,
            float(pair.m2x[ki, wi]),
            float(pair.m2y[ki, wi]),
            float(pair.cxy[ki, wi]),
        )
        for ki, skill in enumerate(stats.skills)
        for wi, wave in enumerate(WAVES)
    }

    c_mean = stats.composite.mean
    emphasis_ranking: dict[str, tuple] = {}
    growth_ranking: dict[str, tuple] = {}
    emphasis_spread: dict[str, float] = {}
    growth_spread: dict[str, float] = {}
    gaps: dict[str, dict] = {}
    for wi, wave in enumerate(WAVES):
        emph = {s: float(c_mean[ki, 0, wi]) for ki, s in enumerate(stats.skills)}
        grow = {s: float(c_mean[ki, 1, wi]) for ki, s in enumerate(stats.skills)}
        emphasis_ranking[wave] = tuple(rank_by_score(emph))
        growth_ranking[wave] = tuple(rank_by_score(grow))
        emphasis_spread[wave] = spread(emph)
        growth_spread[wave] = spread(grow)
        gaps[wave] = emphasis_growth_gaps(emph, grow)

    return StudyAnalysis(
        n=n,
        ttest_emphasis=ttest_emphasis,
        ttest_growth=ttest_growth,
        cohens_d_emphasis=cohens_emphasis,
        cohens_d_growth=cohens_growth,
        pearson=correlations,
        emphasis_ranking=emphasis_ranking,
        growth_ranking=growth_ranking,
        growth_spread=growth_spread,
        emphasis_spread=emphasis_spread,
        gaps=gaps,
        scores={},
    )
