"""Run the mega-cohort pipeline: shard → reduce → merge → tables.

:func:`run_streamed` is the entry point behind ``python -m repro
megacohort``: it calibrates the response model once at the published
N=124 (the knobs are *population parameters* — the same latent means,
factor shares and residual correlations applied to every shard), plans
the shards, dispatches one task per shard through a
:class:`~repro.sched.executor.WorkStealingExecutor` (threaded or
``mode="mp"``), merges the returned statistics in canonical shard-index
order, and computes the analysis from the merged statistics alone.

Peak memory is bounded by the shards in flight, never by N: the full
response tensor at N=1,000,000 would need roughly
:func:`full_tensor_bytes` ≈ 2.7 GB, while the streamed run holds a few
tens of MB per in-flight shard.

:func:`run_in_memory` is the reference path — the existing
``ResponseModel → assemble_waves → analyze_waves`` pipeline — and
:func:`identity_check` pins the correctness anchor: at N=124 with one
shard, both paths render Tables 1–6 **byte-identically**.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Mapping

from repro.config import resolve_mp_workers
from repro.megacohort.aggregate import SurveyStats, analyze
from repro.megacohort.shards import plan_shards, shard_stats_task
from repro.sched.core import Call
from repro.sched.executor import WorkStealingExecutor
from repro.stats.streaming import merge_indexed

__all__ = [
    "DEFAULT_N",
    "DEFAULT_SEED",
    "MegacohortResult",
    "full_tensor_bytes",
    "identity_check",
    "run_in_memory",
    "run_streamed",
]

#: The tentpole cohort size: the paper's study, scaled ~8000x.
DEFAULT_N = 1_000_000

#: The repo-wide study seed (the paper's year).
DEFAULT_SEED = 2018

#: Table order for rendered-output helpers.
TABLE_IDS = tuple(f"table{i}" for i in range(1, 7))


@lru_cache(maxsize=4)
def _calibration(seed: int):
    """Targets, the N=124 model, and its calibrated knobs (cached per seed)."""
    from repro.core.targets import simulation_targets
    from repro.simulation.calibration import calibrate
    from repro.simulation.model import ResponseModel

    targets = simulation_targets()
    model = ResponseModel(
        skills=targets.skills, n_students=targets.n_students, seed=seed
    )
    calibration = calibrate(model, targets)
    return targets, model, calibration


def full_tensor_bytes(n: int, k: int = 7, items_per_skill: int = 5) -> int:
    """What the *materialised* pipeline would hold for ``n`` students:
    the int64 score tensor plus the standard-normal draw blocks the
    N=124 model keeps for calibration."""
    scores = k * 2 * 2 * items_per_skill * 8
    draws = (2 * 2 * 2 + k * 2 * 2 * 2 + k * 2 * 2 * items_per_skill) * 8
    return n * (scores + draws)


@dataclass(frozen=True)
class MegacohortResult:
    """Outcome of one streamed run."""

    n: int
    shards: int
    mode: str
    workers: int
    seed: int
    stats: SurveyStats
    analysis: Any                    # StudyAnalysis
    sched_stats: Mapping[str, Any]

    def report(self):
        """The standard :class:`~repro.core.report.ReproductionReport`."""
        from repro.core.report import ReproductionReport
        from repro.core.targets import PAPER

        return ReproductionReport(analysis=self.analysis, paper=PAPER)

    def render_tables(self) -> str:
        """Tables 1–6, rendered exactly as ``repro reproduce`` prints them."""
        report = self.report()
        return "\n\n".join(report.render_table(t) for t in TABLE_IDS)

    def summary(self) -> str:
        return (
            f"megacohort: n={self.n} shards={self.shards} "
            f"mode={self.mode} workers={self.workers} seed={self.seed}"
        )


def run_streamed(
    n: int = DEFAULT_N,
    shards: int | None = None,
    seed: int = DEFAULT_SEED,
    mode: str = "threaded",
    workers: int | None = None,
    executor: WorkStealingExecutor | None = None,
    speculate: bool = False,
    spec_k: float = 2.0,
) -> MegacohortResult:
    """Regenerate the survey analysis for ``n`` students, streamed.

    With ``executor`` the caller's executor is used as-is (and left
    open) — the hook the deterministic ``repro sched`` runner uses;
    otherwise a fresh threaded (real-concurrency) executor is built for
    ``mode`` and closed afterwards.  The merged statistics are a pure
    function of ``(n, shards, seed)``: completion order, worker count
    and executor mode cannot change a bit of the result.

    ``speculate`` installs a straggler policy
    (:class:`~repro.sched.spec.SpecPolicy` with ``k=spec_k``) on the
    owned executor: a shard stuck on a slow worker gets a backup copy,
    first completion wins, and — because every shard is a pure function
    of its own seed — the merged tables are byte-identical either way.
    """
    targets, model, calibration = _calibration(seed)
    plan = plan_shards(n, shards)
    tasks = [
        Call(shard_stats_task, spec, calibration.knobs, targets.skills,
             model.items_per_skill, seed)
        for spec in plan
    ]
    owns_executor = executor is None
    if executor is None:
        workers = workers if workers is not None else resolve_mp_workers()
        executor = WorkStealingExecutor(
            n_workers=workers, seed=seed, deterministic=False, mode=mode,
        )
        if speculate:
            from repro.sched.spec import SpecPolicy

            executor.speculate(SpecPolicy(k=spec_k))
    try:
        handles = executor.submit_batch(tasks, name="megacohort.shard")
        executor.drain()
        indexed = [handle.result() for handle in handles]
        sched_stats = executor.stats().as_dict()
        n_workers = executor.n_workers
        executor_mode = executor.mode
    finally:
        if owns_executor:
            executor.close()
    merged = merge_indexed(indexed)
    if merged.count != n:
        raise RuntimeError(
            f"merged statistics cover {merged.count} rows, expected {n}"
        )
    return MegacohortResult(
        n=n,
        shards=len(plan),
        mode=executor_mode,
        workers=n_workers,
        seed=seed,
        stats=merged,
        analysis=analyze(merged),
        sched_stats=sched_stats,
    )


def run_in_memory(seed: int = DEFAULT_SEED):
    """The reference pipeline at the published N=124.

    Generates the full tensor with the calibrated knobs, assembles
    typed survey waves, and runs :func:`~repro.core.analysis.analyze_waves`
    — exactly what :class:`~repro.core.study.PBLStudy` does for the
    survey, with synthetic zero-padded student ids (sorted id order ==
    row order, so the pairing is identical).  Returns a StudyAnalysis.
    """
    from repro.core.analysis import analyze_waves
    from repro.simulation.assemble import assemble_waves
    from repro.survey.instrument import team_design_skills_survey

    targets, model, calibration = _calibration(seed)
    raw = model.generate(calibration.knobs)
    student_ids = [f"s{i:05d}" for i in range(targets.n_students)]
    waves = assemble_waves(raw, team_design_skills_survey(), student_ids)
    return analyze_waves(waves["first_half"], waves["second_half"])


def render_analysis_tables(analysis) -> str:
    """Tables 1–6 for any StudyAnalysis (streamed or in-memory)."""
    from repro.core.report import ReproductionReport
    from repro.core.targets import PAPER

    report = ReproductionReport(analysis=analysis, paper=PAPER)
    return "\n\n".join(report.render_table(t) for t in TABLE_IDS)


def identity_check(seed: int = DEFAULT_SEED) -> tuple[bool, list[str]]:
    """The N=124 anchor: streamed single-shard vs in-memory, per table.

    Returns ``(all_identical, detail_lines)`` where each line names a
    table and whether its rendered text matched byte for byte.
    """
    targets = _calibration(seed)[0]
    streamed = run_streamed(n=targets.n_students, shards=1, seed=seed)
    reference = run_in_memory(seed)
    streamed_report = streamed.report()
    from repro.core.report import ReproductionReport
    from repro.core.targets import PAPER

    reference_report = ReproductionReport(analysis=reference, paper=PAPER)
    detail: list[str] = []
    all_ok = True
    for table_id in TABLE_IDS:
        same = (streamed_report.render_table(table_id)
                == reference_report.render_table(table_id))
        all_ok &= same
        detail.append(
            f"{table_id}: {'identical' if same else 'DIFFERS'}"
        )
    return all_ok, detail
