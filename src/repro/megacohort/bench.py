"""The mega-cohort benchmark behind ``python -m repro bench megacohort``.

Three questions, one point (``BENCH_megacohort.json``):

- **Identity** — does the streamed single-shard N=124 run render Tables
  1–6 byte-identically to the in-memory pipeline?  (The correctness
  anchor; gates ``ok`` unconditionally.)
- **Throughput** — rows/second streaming the full cohort through the
  threaded executor and through the ``mode="mp"`` process pool.  The
  speedup gate (mp ≥ threaded) applies only on machines with two or
  more cores, mirroring the ``bench mp`` convention — on one core a
  process pool is pickle transport with nothing to buy it back.
- **Memory** — peak RSS (:func:`repro.benchutil.peak_rss_bytes`) against
  the estimated footprint of materialising the full response tensor
  (:func:`repro.megacohort.run.full_tensor_bytes`).  The streamed run
  must stay under half the full-tensor estimate; at the default
  N=1,000,000 the estimate is ~2.7 GB and the streamed peak is tens of
  MB per in-flight shard plus the interpreter.

``quick`` shrinks the cohort to 50,000 rows for the CI smoke step; the
full run streams one million.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any

from repro.benchutil import format_bytes, peak_rss_bytes
from repro.config import resolve_mp_workers
from repro.megacohort.run import DEFAULT_N, full_tensor_bytes, identity_check, run_streamed

__all__ = ["run_megacohort_bench", "render_point"]

#: The streamed peak must stay under this fraction of the full-tensor
#: estimate for ``ok`` (generous: the real margin at N=1e6 is ~40x).
_RSS_FRACTION = 0.5


def _timed_arm(n: int, shards: int | None, seed: int, mode: str,
               workers: int) -> tuple[float, Any]:
    start = time.perf_counter()
    result = run_streamed(n=n, shards=shards, seed=seed, mode=mode,
                          workers=workers)
    return time.perf_counter() - start, result


def run_megacohort_bench(
    quick: bool = False,
    out_path: str | None = "BENCH_megacohort.json",
    seed: int = 2018,
) -> dict[str, Any]:
    """Run the mega-cohort benchmark; write and return the point."""
    n = 50_000 if quick else DEFAULT_N
    shards = 16 if quick else None          # full run: auto (~62 shards)
    workers = resolve_mp_workers()
    cores = os.cpu_count() or 1

    identity, identity_detail = identity_check(seed)

    threaded_s, threaded_result = _timed_arm(n, shards, seed, "threaded",
                                             workers)
    mp_s, mp_result = _timed_arm(n, shards, seed, "mp", workers)
    tables_identical = (
        threaded_result.render_tables() == mp_result.render_tables()
    )

    peak_rss = peak_rss_bytes()
    full_tensor = full_tensor_bytes(n)
    rss_bounded = (
        peak_rss < _RSS_FRACTION * full_tensor if not quick
        # The 50k tensor (~140 MB) is smaller than a warm interpreter's
        # RSS; the memory gate is only meaningful at full scale.
        else True
    )

    point: dict[str, Any] = {
        "bench": "megacohort",
        "quick": quick,
        "n": n,
        "shards": threaded_result.shards,
        "workers": workers,
        "cores": cores,
        "seed": seed,
        "identity_124": identity,
        "tables_identical_mp": tables_identical,
        "threaded_s": threaded_s,
        "mp_s": mp_s,
        "threaded_rows_per_s": n / threaded_s,
        "mp_rows_per_s": n / mp_s,
        "mp_speedup": threaded_s / mp_s,
        "peak_rss_bytes": peak_rss,
        "full_tensor_bytes": full_tensor,
        "rss_fraction_of_full_tensor": peak_rss / full_tensor,
        "rss_bounded": rss_bounded,
        "retries": int(threaded_result.sched_stats.get("retries", 0)),
    }
    for key, value in list(point.items()):
        if isinstance(value, float):
            point[key] = round(value, 6)
    # Identity and the memory bound always gate; the speedup gate needs
    # parallel hardware (the bench-mp convention).  ``gate_applied``
    # records whether the speedup gate actually ran.
    point["gate_applied"] = cores >= 2
    faster = bool(not point["gate_applied"]
                  or point["mp_rows_per_s"] >= point["threaded_rows_per_s"])
    point["ok"] = bool(identity and tables_identical and rss_bounded
                       and faster)
    point["identity_detail"] = identity_detail
    point["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(point, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return point


def render_point(point: dict[str, Any]) -> str:
    """The benchmark point as the aligned table the CLI prints."""
    lines = [
        f"megacohort bench (quick={point['quick']}): n={point['n']} "
        f"shards={point['shards']} workers={point['workers']} "
        f"cores={point['cores']} ok={point['ok']}",
        f"  N=124 identity vs in-memory: {point['identity_124']}  "
        f"mp tables identical: {point['tables_identical_mp']}",
        f"  threaded   {point['threaded_s'] * 1e3:10.1f} ms  "
        f"{point['threaded_rows_per_s']:12.0f} rows/s",
        f"  process    {point['mp_s'] * 1e3:10.1f} ms  "
        f"{point['mp_rows_per_s']:12.0f} rows/s  "
        f"({point['mp_speedup']:.2f}x)",
        f"  peak RSS {format_bytes(point['peak_rss_bytes'])} vs "
        f"full tensor {format_bytes(point['full_tensor_bytes'])} "
        f"({point['rss_fraction_of_full_tensor']:.3f}x, "
        f"bounded={point['rss_bounded']})",
    ]
    return "\n".join(lines)
