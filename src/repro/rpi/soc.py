"""The BCM2837B0 SoC and the Raspberry Pi 3 Model B+ board.

Assignment 2 asks: "Identify the components on the Raspberry PI B+.  How
many cores does the Raspberry Pi's B+ CPU have?"  Assignment 3 asks:
"What is System On Chip (SOC)?  Does Raspberry PI use SOC?  Explain what
the advantages are of having a System on a Chip rather than separate CPU,
GPU and RAM components?"  This module is the data those answers come from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Component", "BCM2837B0", "RaspberryPi3BPlus", "soc_advantages"]


@dataclass(frozen=True)
class Component:
    """One identifiable component of the board or SoC."""

    name: str
    kind: str
    description: str
    on_soc: bool


@dataclass(frozen=True)
class BCM2837B0:
    """Broadcom BCM2837B0 — the Pi 3 B+'s system-on-chip."""

    name: str = "Broadcom BCM2837B0"
    cpu: str = "ARM Cortex-A53 (ARMv8-A, 64-bit)"
    n_cores: int = 4
    clock_ghz: float = 1.4
    l1_icache_kib: int = 32
    l1_dcache_kib: int = 32
    l2_cache_kib: int = 512          # shared by all four cores
    gpu: str = "Broadcom VideoCore IV @ 400 MHz"
    isa_family: str = "RISC (ARM)"

    @property
    def is_soc(self) -> bool:
        """Yes — CPU, GPU and peripherals share one die; RAM is stacked
        package-on-package next to it."""
        return True

    def components(self) -> tuple[Component, ...]:
        return (
            Component("CPU cluster", "processor",
                      f"{self.n_cores}x {self.cpu} @ {self.clock_ghz} GHz", True),
            Component("L1 caches", "memory",
                      f"{self.l1_icache_kib} KiB I + {self.l1_dcache_kib} KiB D per core", True),
            Component("L2 cache", "memory",
                      f"{self.l2_cache_kib} KiB shared by all cores", True),
            Component("GPU", "processor", self.gpu, True),
            Component("Interconnect", "bus", "AMBA AXI on-die fabric", True),
        )


@dataclass(frozen=True)
class RaspberryPi3BPlus:
    """The full board, as the students unbox it ($59 kit)."""

    soc: BCM2837B0 = field(default_factory=BCM2837B0)
    ram_mib: int = 1024              # 1 GiB LPDDR2, package-on-package
    storage: str = "microSD card slot (boot + filesystem)"

    @property
    def n_cores(self) -> int:
        """The answer to Assignment 2's first question: four."""
        return self.soc.n_cores

    def components(self) -> tuple[Component, ...]:
        board = (
            Component("RAM", "memory", f"{self.ram_mib} MiB LPDDR2 SDRAM (PoP)", False),
            Component("microSD slot", "storage", self.storage, False),
            Component("Ethernet", "network", "Gigabit Ethernet over USB 2.0 (LAN7515)", False),
            Component("Wireless", "network", "2.4/5 GHz 802.11ac Wi-Fi + Bluetooth 4.2", False),
            Component("USB", "io", "4x USB 2.0 ports", False),
            Component("HDMI", "io", "full-size HDMI display output", False),
            Component("GPIO", "io", "40-pin general-purpose header", False),
            Component("Power", "power", "5 V / 2.5 A via micro-USB", False),
        )
        return self.soc.components() + board

    def component_names(self) -> list[str]:
        return [c.name for c in self.components()]


def soc_advantages() -> tuple[str, ...]:
    """The Assignment-3 answer: why SoC beats separate CPU/GPU/RAM.

    Returned as structured content so examples and tests can consume it.
    """
    return (
        "shorter interconnects: on-die communication is faster and uses "
        "less energy than traversing a motherboard bus",
        "lower power: one die, one supply domain, aggressive power gating "
        "— essential for phones and embedded boards",
        "smaller and cheaper: one package replaces several chips and "
        "their sockets and routing",
        "higher integration reliability: fewer discrete parts and "
        "solder joints to fail",
        "trade-off: fixed configuration — you cannot upgrade the GPU or "
        "RAM of an SoC independently",
    )
