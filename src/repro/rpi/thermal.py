"""Thermal throttling of the Pi under sustained load.

Every lab that runs all four Pi cores flat out discovers this: the
BCM2837 soft-throttles from 1.4 GHz to 1.2 GHz at 60 °C and clamps
harder approaching 80 °C.  The model is a standard lumped-thermal RC:

    T' = T + dt * (P(load, f) / C  -  (T - T_ambient) / (R * C))

with power split into idle and per-core dynamic components, and a
throttle curve mapping temperature to allowed clock.  Deterministic and
dimensionally honest (parameters in K, W, s), so the shapes — sustained
4-core load throttles, a heatsink (smaller R) delays it, idling cools —
are assertable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ThermalConfig", "ThermalSample", "ThermalModel"]


@dataclass(frozen=True)
class ThermalConfig:
    """Thermal and power parameters (Pi-3B+-shaped defaults)."""

    ambient_c: float = 25.0
    thermal_resistance: float = 8.0       # K/W junction->ambient (no heatsink)
    thermal_capacitance: float = 6.0      # J/K
    idle_power_w: float = 1.0
    per_core_power_w: float = 1.0         # at full clock
    base_clock_ghz: float = 1.4
    soft_throttle_c: float = 60.0         # drop to 1.2 GHz
    hard_throttle_c: float = 80.0         # clamp toward 0.6 GHz
    soft_clock_ghz: float = 1.2
    hard_clock_ghz: float = 0.6

    def __post_init__(self) -> None:
        if self.thermal_resistance <= 0 or self.thermal_capacitance <= 0:
            raise ValueError("thermal constants must be positive")
        if not self.soft_throttle_c < self.hard_throttle_c:
            raise ValueError("soft throttle must trip below hard throttle")


@dataclass(frozen=True)
class ThermalSample:
    """One simulation step's output."""

    t_seconds: float
    temperature_c: float
    clock_ghz: float
    throttled: bool


@dataclass
class ThermalModel:
    """Integrates die temperature and applies the throttle curve."""

    config: ThermalConfig = field(default_factory=ThermalConfig)
    temperature_c: float = field(default=None)  # type: ignore[assignment]
    _time_s: float = 0.0

    def __post_init__(self) -> None:
        if self.temperature_c is None:
            self.temperature_c = self.config.ambient_c

    def clock_ghz(self) -> float:
        """Allowed clock at the current temperature."""
        c = self.config
        if self.temperature_c >= c.hard_throttle_c:
            return c.hard_clock_ghz
        if self.temperature_c >= c.soft_throttle_c:
            return c.soft_clock_ghz
        return c.base_clock_ghz

    @property
    def throttled(self) -> bool:
        return self.clock_ghz() < self.config.base_clock_ghz

    def step(self, active_cores: int, dt_s: float = 1.0) -> ThermalSample:
        """Advance ``dt_s`` seconds with ``active_cores`` busy cores.

        Dynamic power scales with the *throttled* clock — throttling is
        what keeps the model stable instead of running away.
        """
        if not 0 <= active_cores <= 4:
            raise ValueError(f"active_cores must be 0..4, got {active_cores}")
        if dt_s <= 0:
            raise ValueError(f"dt_s must be positive, got {dt_s}")
        c = self.config
        clock = self.clock_ghz()
        power = c.idle_power_w + active_cores * c.per_core_power_w * (
            clock / c.base_clock_ghz
        )
        dT = dt_s * (
            power / c.thermal_capacitance
            - (self.temperature_c - c.ambient_c)
            / (c.thermal_resistance * c.thermal_capacitance)
        )
        self.temperature_c += dT
        self._time_s += dt_s
        return ThermalSample(
            t_seconds=self._time_s,
            temperature_c=self.temperature_c,
            clock_ghz=self.clock_ghz(),
            throttled=self.throttled,
        )

    def run(self, active_cores: int, seconds: float, dt_s: float = 1.0
            ) -> list[ThermalSample]:
        """Simulate a sustained load; returns the full trace."""
        steps = int(round(seconds / dt_s))
        return [self.step(active_cores, dt_s) for _ in range(steps)]

    def steady_state_c(self, active_cores: int) -> float:
        """Analytic steady-state temperature at the (possibly throttled)
        operating point — found by iterating the throttle fixed point."""
        c = self.config
        clock = c.base_clock_ghz
        for _ in range(8):
            power = c.idle_power_w + active_cores * c.per_core_power_w * (
                clock / c.base_clock_ghz
            )
            temp = c.ambient_c + power * c.thermal_resistance
            new_clock = (
                c.hard_clock_ghz if temp >= c.hard_throttle_c
                else c.soft_clock_ghz if temp >= c.soft_throttle_c
                else c.base_clock_ghz
            )
            if new_clock == clock:
                return temp
            clock = new_clock
        return temp
