"""Simulated Raspberry Pi 3 Model B+.

The paper gives each team a Raspberry Pi kit as "a uniform work
environment" because "components such as the processor, memory unit,
storage device, and others are clearly visible".  We cannot ship silicon,
so this package is the executable substitute:

- :mod:`repro.rpi.soc` — the BCM2837B0 SoC and board inventory
  (Assignment 2: "Identify the components on the Raspberry PI B+.  How
  many cores does the Raspberry Pi's B+ CPU have?").
- :mod:`repro.rpi.machine` — a deterministic multicore timing model.
  Parallel constructs from :mod:`repro.openmp` can be *costed* on it:
  region time = fork overhead + max per-core busy time + join overhead,
  with per-chunk scheduling overhead that differs between static and
  dynamic schedules.  Every performance-shaped experiment (speedup
  curves, schedule comparison, the drug-design timing table) runs on this
  model, the way the paper's numbers come from its physical Pi.
- :mod:`repro.rpi.setup` — the Assignment-2 bring-up procedure (flash
  RASPBIAN to microSD, boot, connect a display) as a checked state
  machine.
"""

from repro.rpi.cache import Cache, CacheConfig, MemoryHierarchy
from repro.rpi.machine import CostedLoop, SimulatedPi, TimingModel
from repro.rpi.setup import BootError, PiSetup, SetupStep
from repro.rpi.soc import BCM2837B0, Component, RaspberryPi3BPlus
from repro.rpi.thermal import ThermalConfig, ThermalModel, ThermalSample

__all__ = [
    "BCM2837B0",
    "BootError",
    "Cache",
    "CacheConfig",
    "Component",
    "MemoryHierarchy",
    "CostedLoop",
    "PiSetup",
    "RaspberryPi3BPlus",
    "SetupStep",
    "SimulatedPi",
    "ThermalConfig",
    "ThermalModel",
    "ThermalSample",
    "TimingModel",
]
