"""Deterministic multicore timing model.

Python threads cannot show real speedup under the GIL, so — per the
substitution rule — performance-shaped experiments are *costed* on a model
of the Pi's four cores instead of wall-clocked.  The model is the standard
one for work-sharing loops:

- a parallel region costs ``fork + max(core busy time) + join``;
- a core's busy time is the sum of its iterations' costs plus a per-chunk
  scheduling overhead (higher for dynamic than static — each dynamic
  chunk is a trip to a shared counter);
- concurrent cores contend for the shared memory system: iteration costs
  are inflated by ``1 + beta * (active_cores - 1)``, the usual linear
  contention approximation;
- dynamic/guided chunks are dispatched by list scheduling (next chunk to
  the earliest-free core), which is what an OpenMP runtime's work queue
  converges to.

The shapes this produces — near-linear speedup for balanced loops, static
losing to dynamic on imbalanced loops, small chunks paying more overhead —
are the phenomena Assignments 3–5 have students observe.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Sequence

from repro.openmp.loops import Schedule, ScheduleKind, chunk_iterations

__all__ = ["TimingModel", "CostedLoop", "SimulatedPi"]


@dataclass(frozen=True)
class TimingModel:
    """Cost parameters, in microseconds (us)."""

    fork_us: float = 5.0
    join_us: float = 3.0
    static_chunk_us: float = 0.05
    dynamic_chunk_us: float = 0.8    # a fetch-add on a shared counter
    barrier_us: float = 2.0
    contention_beta: float = 0.03    # memory-system slowdown per extra core

    def __post_init__(self) -> None:
        for name in ("fork_us", "join_us", "static_chunk_us", "dynamic_chunk_us",
                     "barrier_us", "contention_beta"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def contention_factor(self, active_cores: int) -> float:
        return 1.0 + self.contention_beta * max(0, active_cores - 1)


@dataclass(frozen=True)
class CostedLoop:
    """Cost breakdown of one work-shared loop on the model."""

    schedule: Schedule
    num_threads: int
    elapsed_us: float
    per_core_busy_us: tuple[float, ...]
    sequential_us: float
    n_chunks: int

    @property
    def speedup(self) -> float:
        return self.sequential_us / self.elapsed_us

    @property
    def efficiency(self) -> float:
        return self.speedup / self.num_threads

    @property
    def load_imbalance(self) -> float:
        """max/mean core busy time − 1 (0 = perfectly balanced)."""
        mean = sum(self.per_core_busy_us) / len(self.per_core_busy_us)
        if mean == 0:
            return 0.0
        return max(self.per_core_busy_us) / mean - 1.0

    def __str__(self) -> str:
        return (
            f"{self.schedule} x{self.num_threads}: {self.elapsed_us:.1f} us "
            f"(speedup {self.speedup:.2f}, efficiency {self.efficiency:.2f}, "
            f"imbalance {self.load_imbalance:.2f})"
        )


def _chunks_in_order(n: int, chunk: int) -> list[range]:
    return [range(s, min(s + chunk, n)) for s in range(0, n, chunk)]


@dataclass(frozen=True)
class SimulatedPi:
    """Four Cortex-A53 cores with a shared memory system."""

    n_cores: int = 4
    timing: TimingModel = field(default_factory=TimingModel)

    def sequential_us(self, costs: Sequence[float]) -> float:
        """Cost of the sequential loop (no overheads, no contention)."""
        return float(sum(costs))

    def cost_loop(
        self,
        costs: Sequence[float],
        schedule: Schedule | None = None,
        num_threads: int | None = None,
    ) -> CostedLoop:
        """Cost a work-shared loop whose iteration *i* takes ``costs[i]`` us."""
        if any(c < 0 for c in costs):
            raise ValueError("iteration costs must be >= 0")
        if schedule is None:
            schedule = Schedule.static()
        n_threads = num_threads if num_threads is not None else self.n_cores
        if n_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {n_threads}")
        n = len(costs)
        sequential = self.sequential_us(costs)
        if n == 0:
            return CostedLoop(schedule, n_threads, self.timing.fork_us + self.timing.join_us,
                              tuple([0.0] * n_threads), 0.0, 0)

        active = min(n_threads, n)
        factor = self.timing.contention_factor(active)

        if schedule.kind is ScheduleKind.STATIC:
            mapping = chunk_iterations(n, n_threads, schedule)
            busy = []
            n_chunks = 0
            chunk = schedule.chunk
            for iterations in mapping:
                work = factor * sum(costs[i] for i in iterations)
                if chunk is None:
                    my_chunks = 1 if iterations else 0
                else:
                    my_chunks = (len(iterations) + chunk - 1) // chunk
                n_chunks += my_chunks
                busy.append(work + my_chunks * self.timing.static_chunk_us)
        else:
            min_chunk = schedule.chunk or 1
            busy = [0.0] * n_threads
            # List scheduling: a heap of (free-at time, core id).
            heap = [(0.0, core) for core in range(n_threads)]
            heapq.heapify(heap)
            start = 0
            n_chunks = 0
            remaining = n
            while start < n:
                if schedule.kind is ScheduleKind.GUIDED:
                    size = max(remaining // n_threads, min_chunk)
                else:
                    size = min_chunk
                end = min(start + size, n)
                work = factor * sum(costs[start:end]) + self.timing.dynamic_chunk_us
                free_at, core = heapq.heappop(heap)
                heapq.heappush(heap, (free_at + work, core))
                busy[core] += work
                n_chunks += 1
                remaining -= end - start
                start = end

        elapsed = self.timing.fork_us + max(busy) + self.timing.join_us
        return CostedLoop(
            schedule=schedule,
            num_threads=n_threads,
            elapsed_us=elapsed,
            per_core_busy_us=tuple(busy),
            sequential_us=sequential,
            n_chunks=n_chunks,
        )

    def speedup_curve(
        self,
        costs: Sequence[float],
        schedule: Schedule | None = None,
        max_threads: int | None = None,
    ) -> list[CostedLoop]:
        """Cost the loop at 1..max_threads threads (default: core count)."""
        top = max_threads if max_threads is not None else self.n_cores
        return [self.cost_loop(costs, schedule, t) for t in range(1, top + 1)]
