"""The Assignment-2 bring-up procedure as a checked state machine.

"The groups are required to 1) download and install the Operating System
(RASPBIAN) Images on MicroSD, and 2) setup the Raspberry PI to connect
with a monitor or a laptop."

:class:`PiSetup` enforces the real ordering constraints (you cannot boot
an unflashed card; you cannot see a desktop without a display) and raises
:class:`BootError` with the same failure modes students hit in the lab.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["SetupStep", "BootError", "PiSetup"]


class SetupStep(enum.Enum):
    DOWNLOAD_IMAGE = "download RASPBIAN image"
    FLASH_SD = "flash image to microSD"
    INSERT_SD = "insert microSD into the Pi"
    CONNECT_DISPLAY = "connect HDMI monitor (or laptop over SSH)"
    CONNECT_KEYBOARD = "connect keyboard and mouse"
    POWER_ON = "connect 5V power"


class BootError(RuntimeError):
    """The Pi failed to boot; the message says what the student forgot."""


#: Steps that must precede POWER_ON for a successful boot to desktop.
_REQUIRED_BEFORE_BOOT = (
    SetupStep.DOWNLOAD_IMAGE,
    SetupStep.FLASH_SD,
    SetupStep.INSERT_SD,
)

#: Order constraints: step -> steps that must already be done.
_PREREQS: dict[SetupStep, tuple[SetupStep, ...]] = {
    SetupStep.FLASH_SD: (SetupStep.DOWNLOAD_IMAGE,),
    SetupStep.INSERT_SD: (SetupStep.FLASH_SD,),
}


@dataclass
class PiSetup:
    """Tracks the bring-up of one team's Pi."""

    completed: list[SetupStep] = field(default_factory=list)
    booted: bool = False

    def perform(self, step: SetupStep) -> None:
        """Perform a setup step, enforcing its prerequisites."""
        if self.booted:
            raise BootError("the Pi is already running; power off before re-imaging")
        for prereq in _PREREQS.get(step, ()):
            if prereq not in self.completed:
                raise BootError(
                    f"cannot {step.value!r} before {prereq.value!r}"
                )
        if step is SetupStep.POWER_ON:
            missing = [s for s in _REQUIRED_BEFORE_BOOT if s not in self.completed]
            if missing:
                raise BootError(
                    "rainbow splash / no boot: missing "
                    + ", ".join(s.value for s in missing)
                )
            self.booted = True
        if step not in self.completed:
            self.completed.append(step)

    @property
    def has_display(self) -> bool:
        return SetupStep.CONNECT_DISPLAY in self.completed

    def desktop_visible(self) -> bool:
        """True when the team can actually see the RASPBIAN desktop."""
        return self.booted and self.has_display

    @classmethod
    def quickstart(cls) -> "PiSetup":
        """Run the full happy path, returning a booted setup."""
        setup = cls()
        for step in (
            SetupStep.DOWNLOAD_IMAGE,
            SetupStep.FLASH_SD,
            SetupStep.INSERT_SD,
            SetupStep.CONNECT_DISPLAY,
            SetupStep.CONNECT_KEYBOARD,
            SetupStep.POWER_ON,
        ):
            setup.perform(step)
        return setup
