"""A set-associative cache model for the Pi's memory hierarchy.

CSc 3210 covers memory layout, and the HPC guides this reproduction
follows devote a section to cache effects ("accessing a big array in a
continuous way is much faster than random access … smaller strides are
faster").  This module makes those statements measurable: a
set-associative, LRU, write-back cache with the Cortex-A53's shape
(32 KiB, 4-way, 64-byte lines for L1D; 512 KiB 16-way shared L2), plus a
two-level :class:`MemoryHierarchy` that costs an access trace.

The classic demonstrations (tested, and run by the architecture lab
example):

- row-major vs column-major traversal of a 2-D array;
- stride sweep: hit rate falls until the stride reaches the line size;
- a working set larger than L1 but inside L2 stays fast; larger than L2
  pays DRAM on every miss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["CacheConfig", "Cache", "AccessStats", "MemoryHierarchy"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    line_bytes: int
    ways: int

    def __post_init__(self) -> None:
        for name in ("size_bytes", "line_bytes", "ways"):
            value = getattr(self, name)
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{name} must be a positive power of two, got {value}")
        if self.size_bytes < self.line_bytes * self.ways:
            raise ValueError("cache smaller than one set")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)


#: The BCM2837B0's per-core L1 data cache.
L1D = CacheConfig(size_bytes=32 * 1024, line_bytes=64, ways=4)
#: The shared L2.
L2 = CacheConfig(size_bytes=512 * 1024, line_bytes=64, ways=16)


@dataclass
class AccessStats:
    """Hit/miss counts for one level."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class Cache:
    """One set-associative LRU cache level."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        # sets[i] is an ordered list of tags, most-recently-used last.
        self._sets: list[list[int]] = [[] for _ in range(config.n_sets)]
        self.stats = AccessStats()

    def access(self, address: int) -> bool:
        """Touch one byte address; returns True on hit."""
        if address < 0:
            raise ValueError(f"address must be >= 0, got {address}")
        line = address // self.config.line_bytes
        index = line % self.config.n_sets
        tag = line // self.config.n_sets
        ways = self._sets[index]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        ways.append(tag)
        if len(ways) > self.config.ways:
            ways.pop(0)   # evict LRU
        return False

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.config.n_sets)]
        self.stats = AccessStats()


@dataclass
class MemoryHierarchy:
    """L1 → L2 → DRAM, with per-level latencies in cycles.

    Latencies are the usual Cortex-A53 ballpark: L1 hit 4 cycles, L2 hit
    ~20, DRAM ~150.
    """

    l1: Cache = field(default_factory=lambda: Cache(L1D))
    l2: Cache = field(default_factory=lambda: Cache(L2))
    l1_cycles: int = 4
    l2_cycles: int = 20
    dram_cycles: int = 150

    def access(self, address: int) -> int:
        """Cost of one access, in cycles."""
        if self.l1.access(address):
            return self.l1_cycles
        if self.l2.access(address):
            return self.l2_cycles
        return self.dram_cycles

    def run_trace(self, addresses: Iterable[int]) -> int:
        """Total cycles for an address trace."""
        return sum(self.access(a) for a in addresses)

    def reset(self) -> None:
        self.l1.reset()
        self.l2.reset()

    # -- canonical traces -----------------------------------------------------

    @staticmethod
    def row_major_trace(rows: int, cols: int, element_bytes: int = 8,
                        base: int = 0) -> Iterable[int]:
        """Addresses of a row-major traversal of a rows x cols array."""
        for r in range(rows):
            for c in range(cols):
                yield base + (r * cols + c) * element_bytes

    @staticmethod
    def column_major_trace(rows: int, cols: int, element_bytes: int = 8,
                           base: int = 0) -> Iterable[int]:
        """Addresses of a column-major traversal of the same array."""
        for c in range(cols):
            for r in range(rows):
                yield base + (r * cols + c) * element_bytes

    @staticmethod
    def strided_trace(n_bytes: int, stride: int, base: int = 0) -> Iterable[int]:
        """Every ``stride``-th byte of an ``n_bytes`` region."""
        if stride <= 0:
            raise ValueError(f"stride must be positive, got {stride}")
        for address in range(base, base + n_bytes, stride):
            yield address
