"""The process-pool benchmark behind ``python -m repro bench mp``.

The question this suite answers is the one the tentpole makes: does
``mode="mp"`` actually escape the GIL?  Two sweeps of *honestly
GIL-bound* scalar-Python compute run twice each — once through the
threaded executor, once through the process-pool backend — with the
scheduling layer, task structure, and arithmetic identical:

- **stencil** — independent heat rods advanced by the per-cell Python
  loop (:func:`repro.kernels.stencil.heat_steps_python`), one rod per
  task;
- **lcs** — the Assignment-5 ligand sweep scored by the scalar DP
  (:func:`repro.kernels.lcs.lcs_scores_python`), one chunk per task.

Threads cannot speed these up — the interpreter serializes them — so on
a multi-core box the pool backend must win; that ratio is the gate.
Executor construction and pool fork happen *outside* the timed region
(they are paid once per run, not once per task), and both arms submit
the same :class:`~repro.sched.core.Call` objects so the only variable
is the execution vehicle.

Two identity checks ride along, because a fast wrong answer is worse
than a slow right one:

- every task result must be equal across arms, element for element;
- the drug-design stepping workload's full rendered report
  (:func:`repro.sched.workloads.run_sched_workload`) must be
  byte-identical between ``mode="threaded"`` and ``mode="mp"``.

Results go to ``BENCH_mp.json``.  ``ok`` requires both identity checks
always; the speedup gate applies only when the machine actually has
two or more cores (``cores`` is recorded so CI can tell which gate
ran) — on a single core a process pool is transport overhead with no
parallelism to buy it back.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from typing import Any, Callable

import numpy as np

from repro.benchutil import peak_rss_bytes
from repro.config import resolve_mp_workers
from repro.drugdesign.ligands import DEFAULT_PROTEIN, generate_ligands
from repro.kernels.lcs import lcs_scores_python
from repro.kernels.stencil import heat_steps_python
from repro.sched.core import Call
from repro.sched.executor import WorkStealingExecutor

__all__ = ["run_mp_bench", "render_point"]


def _noop() -> None:
    """Warm-up body (module-level so the pool can pickle it)."""


def _median_arm(
    mode: str,
    workers: int,
    make_tasks: Callable[[], list[Call]],
    repeats: int,
) -> tuple[float, list[Any]]:
    """Median wall time of one submit/drain round on ``mode``.

    One executor serves every repeat: thread spin-up and (for mp) the
    pool fork are setup cost, excluded from the measurement by a no-op
    warm-up round before the clock starts.
    """
    executor = WorkStealingExecutor(n_workers=workers, mode=mode)
    try:
        executor.submit_batch([Call(_noop) for _ in range(workers)],
                              name="mpbench.warmup")
        executor.drain()
        times: list[float] = []
        results: list[Any] = []
        for _ in range(repeats):
            tasks = make_tasks()
            start = time.perf_counter()
            handles = executor.submit_batch(tasks, name="mpbench.task")
            executor.drain()
            results = [handle.result() for handle in handles]
            times.append(time.perf_counter() - start)
        return statistics.median(times), results
    finally:
        executor.close()


def _bench_pair(
    label: str,
    workers: int,
    make_tasks: Callable[[], list[Call]],
    repeats: int,
) -> dict[str, Any]:
    threaded_s, threaded_out = _median_arm(
        "threaded", workers, make_tasks, repeats
    )
    mp_s, mp_out = _median_arm("mp", workers, make_tasks, repeats)
    return {
        f"{label}_threaded_s": threaded_s,
        f"{label}_mp_s": mp_s,
        f"{label}_speedup": threaded_s / mp_s,
        f"{label}_identical": threaded_out == mp_out,
    }


def _stencil_tasks(n_rods: int, cells: int, steps: int) -> Callable[[], list[Call]]:
    rng = np.random.default_rng(41)
    rods = [rng.uniform(0.0, 100.0, cells).tolist() for _ in range(n_rods)]

    def make() -> list[Call]:
        return [Call(heat_steps_python, rod, 0.25, steps) for rod in rods]

    return make


def _lcs_tasks(n_ligands: int, max_ligand: int, chunk: int) -> Callable[[], list[Call]]:
    ligands = generate_ligands(n_ligands, max_ligand, seed=500)
    chunks = [ligands[i : i + chunk] for i in range(0, len(ligands), chunk)]

    def make() -> list[Call]:
        return [Call(lcs_scores_python, part, DEFAULT_PROTEIN)
                for part in chunks]

    return make


def _stepping_logs_identical(workers: int, seed: int) -> bool:
    """Full drug-design stepping report, threaded vs mp, byte for byte."""
    from repro.sched.workloads import run_sched_workload

    renders = [
        run_sched_workload("drugdesign", workers=workers, seed=seed,
                           mode=mode).render()
        for mode in ("threaded", "mp")
    ]
    return renders[0] == renders[1]


def run_mp_bench(
    quick: bool = False, out_path: str | None = "BENCH_mp.json"
) -> dict[str, Any]:
    """Run the mp-vs-threaded benchmark; write and return the point.

    ``quick`` shrinks sizes and repeats for the CI smoke step; the work
    per task stays large enough that the pickle hop does not dominate.
    """
    repeats = 3 if quick else 5
    workers = resolve_mp_workers()
    cores = os.cpu_count() or 1
    point: dict[str, Any] = {
        "bench": "mp",
        "quick": quick,
        "workers": workers,
        "cores": cores,
    }
    point.update(_bench_pair(
        "stencil", workers,
        _stencil_tasks(n_rods=2 * workers,
                       cells=256 if quick else 512,
                       steps=40 if quick else 120),
        repeats,
    ))
    point.update(_bench_pair(
        "lcs", workers,
        _lcs_tasks(n_ligands=96 if quick else 240,
                   max_ligand=7,
                   chunk=12),
        repeats,
    ))
    point["stepping_log_identical"] = _stepping_logs_identical(
        workers=workers, seed=7
    )
    # High-water mark over both arms, children included (the pool's
    # workers have been joined by close()); informational, not a gate.
    point["peak_rss_bytes"] = peak_rss_bytes()
    for key, value in list(point.items()):
        if isinstance(value, float):
            point[key] = round(value, 6)
    identical = bool(
        point["stencil_identical"]
        and point["lcs_identical"]
        and point["stepping_log_identical"]
    )
    # The speedup gate needs parallel hardware; identity never does.
    # ``gate_applied`` records honestly whether the speedup gate ran —
    # a single-core ``ok`` certifies identity only, and the trajectory
    # table renders it as a skipped gate, not a pass.
    point["gate_applied"] = cores >= 2
    faster = bool(
        not point["gate_applied"]
        or (point["stencil_speedup"] >= 1.0 and point["lcs_speedup"] >= 1.0)
    )
    point["ok"] = identical and faster
    point["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(point, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return point


def render_point(point: dict[str, Any]) -> str:
    """The benchmark point as the aligned table the CLI prints."""
    rows = [
        ("stencil rods (threaded)", point["stencil_threaded_s"], 1.0),
        ("stencil rods (process pool)", point["stencil_mp_s"],
         point["stencil_speedup"]),
        ("lcs sweep (threaded)", point["lcs_threaded_s"], 1.0),
        ("lcs sweep (process pool)", point["lcs_mp_s"],
         point["lcs_speedup"]),
    ]
    lines = [
        f"mp bench (quick={point['quick']}): workers={point['workers']} "
        f"cores={point['cores']} ok={point['ok']}",
        f"  results identical: stencil={point['stencil_identical']} "
        f"lcs={point['lcs_identical']} "
        f"stepping_log={point['stepping_log_identical']}",
    ]
    for label, seconds, speedup in rows:
        lines.append(f"  {label:34s} {seconds * 1e3:9.2f} ms  {speedup:6.1f}x")
    return "\n".join(lines)
