"""Vectorized longest-common-subsequence kernels.

The scalar DP in :mod:`repro.drugdesign.scoring` walks the O(m·n) table
one cell at a time.  Both kernels here remove the inner Python loop by
exploiting two classical LCS facts:

1. **max-of-three is exact.**  Adjacent LCS cells differ by at most 1,
   so on a match ``L[i-1][j-1] + 1`` dominates both neighbours and
   ``L[i][j] = max(L[i-1][j-1] + eq, L[i-1][j], L[i][j-1])`` produces
   *exactly* the standard table, never just a bound.
2. **the in-row dependency is a running max.**  With ``t[j] =
   max(prev[j], (prev[j-1] + 1)·eq)`` the recurrence collapses to
   ``cur[j] = max(t[j], cur[j-1])`` — a prefix maximum, which is one
   ``np.maximum.accumulate`` over the whole row.

:func:`lcs_score_numpy` loops over the *ligand* characters (at most
``max_ligand`` ≈ 7 iterations) and vectorizes each row over the protein
axis (~150 wide).  :func:`lcs_scores_numpy` batches L ligands into one
(L, max_m) code matrix and advances all L dynamic programs together, one
(L, n+1) row per step.  Padded positions use code 0, which matches no
protein character; because LCS rows are non-decreasing in j, a no-match
step is the identity (``accumulate(max(prev, 0)) == prev``), so short
ligands simply coast while longer ones finish — no masking needed.

All values are small integers, so the NumPy tables are *exactly* equal
to the scalar oracle's (property-tested in ``tests/test_kernels.py``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.drugdesign.scoring import lcs_score as lcs_score_python

__all__ = [
    "lcs_score_python",
    "lcs_scores_python",
    "lcs_score_numpy",
    "lcs_scores_numpy",
    "lcs_scores_codes_numpy",
    "encode_protein",
    "encode_ligands",
]


def encode_protein(protein: str) -> np.ndarray:
    """Protein as an int16 code vector (int16 so pad code 0 never collides)."""
    return np.frombuffer(protein.encode("utf-8"), dtype=np.uint8).astype(np.int16)


def encode_ligands(ligands: Sequence[str], max_m: int) -> np.ndarray:
    """Ligands as one zero-padded (L, max_m) int16 code matrix.

    Pad code 0 matches no protein character, and a no-match DP step is
    the identity on a non-decreasing row — so rows padded to a *global*
    ``max_m`` simply coast, which is what lets the multiprocess backend
    slice this matrix into row shards without changing any score.
    """
    batch = np.zeros((len(ligands), max_m), dtype=np.int16)
    for row, ligand in enumerate(ligands):
        if ligand:
            batch[row, : len(ligand)] = np.frombuffer(
                ligand.encode("utf-8"), dtype=np.uint8
            )
    return batch


def lcs_scores_python(ligands: Sequence[str], protein: str) -> list[int]:
    """Scalar oracle for the batched API: one DP per ligand."""
    return [lcs_score_python(ligand, protein) for ligand in ligands]


def lcs_score_numpy(
    ligand: str, protein: str, protein_codes: np.ndarray | None = None
) -> int:
    """Row-vectorized LCS length: outer loop over ligand chars only.

    ``protein_codes`` (from :func:`encode_protein`) lets a caller scoring
    many ligands against one protein skip the re-encode per call.
    """
    if not ligand or not protein:
        return 0
    codes = encode_protein(protein) if protein_codes is None else protein_codes
    n = codes.size
    previous = np.zeros(n + 1, dtype=np.int32)
    current = np.zeros(n + 1, dtype=np.int32)
    for ch in ligand.encode("utf-8"):
        np.maximum.accumulate(
            np.maximum(previous[1:], np.where(codes == ch, previous[:-1] + 1, 0)),
            out=current[1:],
        )
        previous, current = current, previous
    return int(previous[n])


def lcs_scores_numpy(ligands: Sequence[str], protein: str) -> list[int]:
    """Score L ligands in one padded batch: max_m steps of (L, n+1) rows."""
    if not ligands:
        return []
    if not protein:
        return [0] * len(ligands)
    codes = encode_protein(protein)
    max_m = max(len(ligand) for ligand in ligands)
    if max_m == 0:
        return [0] * len(ligands)
    return lcs_scores_codes_numpy(encode_ligands(ligands, max_m), codes)


def lcs_scores_codes_numpy(batch: np.ndarray, codes: np.ndarray) -> list[int]:
    """The matrix DP on pre-encoded inputs: (L, max_m) ligand codes
    against one protein code vector.

    Row-independent, so any row slice of ``batch`` yields exactly the
    scores of those ligands — the entry point the multiprocess backend
    calls per shard after shipping ``batch[lo:hi]`` through shared
    memory.
    """
    n = codes.size
    rows = batch.shape[0]
    previous = np.zeros((rows, n + 1), dtype=np.int32)
    current = np.zeros_like(previous)
    for k in range(batch.shape[1]):
        column = batch[:, k : k + 1]
        candidate = np.where(codes[None, :] == column, previous[:, :-1] + 1, 0)
        np.maximum.accumulate(
            np.maximum(previous[:, 1:], candidate), axis=1, out=current[:, 1:]
        )
        previous, current = current, previous
    return [int(score) for score in previous[:, n]]
