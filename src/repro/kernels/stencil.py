"""Slice-arithmetic heat-diffusion kernels.

The scalar loop in :mod:`repro.mpi.stencil` applies

    u[i] = prev[i] + alpha * (prev[i-1] - 2 prev[i] + prev[i+1])

one cell at a time.  Each cell is independent within a step, so the
update is one slice expression; written with the *same* left-to-right
operation order as the scalar code, IEEE-754 gives bit-identical floats
(NumPy evaluates ``a - b + c`` elementwise in the same order as Python),
which is what lets ``heat_mpi`` keep its float-for-float property test
against ``heat_sequential`` while both run on either backend.

Two entry points: :func:`heat_steps_numpy` advances a whole rod with
fixed Dirichlet boundaries for ``steps`` iterations; and
:func:`heat_block_step_numpy` advances one rank's block of the
decomposed rod for a single step given its ghost cells — the per-step
unit ``heat_mpi`` calls between halo exchanges.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "heat_steps_python",
    "heat_steps_numpy",
    "heat_block_step_python",
    "heat_block_step_numpy",
]


def heat_steps_python(
    u0: Sequence[float], alpha: float, steps: int
) -> list[float]:
    """Scalar oracle: the original per-cell loop."""
    u = list(map(float, u0))
    n = len(u)
    for _ in range(steps):
        prev = u[:]
        for i in range(1, n - 1):
            u[i] = prev[i] + alpha * (prev[i - 1] - 2.0 * prev[i] + prev[i + 1])
    return u


def heat_steps_numpy(
    u0: Sequence[float], alpha: float, steps: int
) -> list[float]:
    """The same diffusion as one slice expression per step."""
    u = np.asarray(u0, dtype=np.float64).copy()
    for _ in range(steps):
        u[1:-1] = u[1:-1] + alpha * (u[:-2] - 2.0 * u[1:-1] + u[2:])
    return u.tolist()


def heat_block_step_python(
    block: Sequence[float],
    ghost_left: float | None,
    ghost_right: float | None,
    alpha: float,
    start: int,
    n: int,
) -> list[float]:
    """Scalar oracle for one block step (``start`` = global index of cell 0)."""
    previous = list(block)
    updated = list(previous)
    for i in range(len(previous)):
        global_index = start + i
        if global_index in (0, n - 1):
            continue                     # fixed boundary
        left_value = previous[i - 1] if i > 0 else ghost_left
        right_value = previous[i + 1] if i + 1 < len(previous) else ghost_right
        updated[i] = previous[i] + alpha * (
            left_value - 2.0 * previous[i] + right_value
        )
    return updated


def heat_block_step_numpy(
    block: Sequence[float],
    ghost_left: float | None,
    ghost_right: float | None,
    alpha: float,
    start: int,
    n: int,
) -> list[float]:
    """One block step as a slice update over a ghost-padded array.

    Missing ghosts (``None``) only ever occur on blocks whose edge cell
    is a global Dirichlet boundary, so the pad value is never read: the
    boundary cells are restored from ``previous`` after the update.
    """
    previous = np.asarray(block, dtype=np.float64)
    padded = np.empty(previous.size + 2, dtype=np.float64)
    padded[1:-1] = previous
    padded[0] = 0.0 if ghost_left is None else ghost_left
    padded[-1] = 0.0 if ghost_right is None else ghost_right
    updated = padded[1:-1] + alpha * (
        padded[:-2] - 2.0 * padded[1:-1] + padded[2:]
    )
    if start == 0:
        updated[0] = previous[0]
    if start + previous.size == n:
        updated[-1] = previous[-1]
    return updated.tolist()
