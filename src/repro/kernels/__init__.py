"""``repro.kernels`` — vectorized NumPy fast paths for every hot loop.

The compute heart of the reproduction is three scalar Python loops: the
O(m·n) LCS dynamic program behind Assignment-5 ligand scoring, the
per-cell heat update behind the MPI stencil, and the per-resample loop
behind the bootstrap CIs.  NumPy is already a hard dependency; this
package rewrites each loop as array arithmetic and routes callers
through one **backend registry**:

- ``numpy`` (default) — the vectorized kernels in
  :mod:`~repro.kernels.lcs`, :mod:`~repro.kernels.stencil`, and
  :mod:`~repro.kernels.resample`;
- ``python`` — the original scalar implementations, kept verbatim as
  the correctness oracle the property tests compare against
  (bit-identical integers and floats, not approximately equal);
- ``mp`` — the batched-LCS and heat-stencil kernels shard across a
  process pool (:mod:`~repro.kernels.mp`) with
  ``multiprocessing.shared_memory`` array handoff, escaping the GIL;
  every other kernel (and any input too small to amortise the hop)
  falls back to the in-process ``numpy`` path.  Results stay
  bit-identical to the oracle on every backend.

Selection follows the repo-wide knob rule (:mod:`repro.config`): an
explicit :func:`set_backend` / :func:`use_backend` wins, else the
``REPRO_KERNELS`` environment variable, else ``numpy``.  Every dispatch
emits a telemetry span tagged with the backend that actually ran, so a
Chrome trace shows exactly where a speedup (or a fallback) came from.

Usage::

    from repro import kernels

    kernels.lcs_scores(ligands, protein)        # batched fast path
    with kernels.use_backend("python"):
        kernels.lcs_scores(ligands, protein)    # scalar oracle
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Sequence

from repro.config import KERNEL_BACKENDS, resolve_kernels_backend
from repro.kernels import lcs as _lcs
from repro.kernels import resample
from repro.kernels import stencil as _stencil
from repro.telemetry import instrument as telemetry

__all__ = [
    "KERNEL_BACKENDS",
    "backend",
    "set_backend",
    "use_backend",
    "lcs_score",
    "lcs_scores",
    "heat_steps",
    "heat_block_step",
    "bootstrap_estimates",
    "paired_bootstrap_estimates",
    "resample",
]

#: Process-wide override; ``None`` defers to ``$REPRO_KERNELS``.
_BACKEND: str | None = None


def backend() -> str:
    """The backend the next kernel call will use."""
    return resolve_kernels_backend(_BACKEND)


def set_backend(name: str | None) -> None:
    """Set (or with ``None`` clear) the process-wide backend override."""
    global _BACKEND
    _BACKEND = None if name is None else resolve_kernels_backend(name)


@contextlib.contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Temporarily pin the backend (the property tests' lever)."""
    global _BACKEND
    previous = _BACKEND
    _BACKEND = resolve_kernels_backend(name)
    try:
        yield _BACKEND
    finally:
        _BACKEND = previous


def lcs_score(ligand: str, protein: str) -> int:
    """LCS length of one ligand against the protein, on the active backend."""
    chosen = backend()
    with telemetry.span("kernel.lcs", category="kernel", backend=chosen,
                        m=len(ligand), n=len(protein)):
        if chosen == "python":
            return _lcs.lcs_score_python(ligand, protein)
        return _lcs.lcs_score_numpy(ligand, protein)   # numpy and mp alike


def lcs_scores(ligands: Sequence[str], protein: str) -> list[int]:
    """Batched ligand scoring: one padded DP for the whole batch."""
    chosen = backend()
    with telemetry.span("kernel.lcs_batch", category="kernel", backend=chosen,
                        batch=len(ligands), n=len(protein)):
        if chosen == "numpy":
            scores = _lcs.lcs_scores_numpy(ligands, protein)
        elif chosen == "mp":
            from repro.kernels import mp as _mp

            scores = _mp.lcs_scores_mp(ligands, protein)
        else:
            scores = _lcs.lcs_scores_python(ligands, protein)
    telemetry.inc("kernel.lcs.ligands", len(ligands))
    return scores


def heat_steps(u0: Sequence[float], alpha: float, steps: int) -> list[float]:
    """Advance a whole rod ``steps`` diffusion steps (fixed boundaries)."""
    chosen = backend()
    with telemetry.span("kernel.stencil", category="kernel", backend=chosen,
                        cells=len(u0), steps=steps):
        if chosen == "numpy":
            return _stencil.heat_steps_numpy(u0, alpha, steps)
        if chosen == "mp":
            from repro.kernels import mp as _mp

            return _mp.heat_steps_mp(u0, alpha, steps)
        return _stencil.heat_steps_python(u0, alpha, steps)


def heat_block_step(
    block: Sequence[float],
    ghost_left: float | None,
    ghost_right: float | None,
    alpha: float,
    start: int,
    n: int,
) -> list[float]:
    """Advance one rank's block a single step given its ghost cells."""
    chosen = backend()
    with telemetry.span("kernel.stencil_block", category="kernel",
                        backend=chosen, cells=len(block), start=start):
        if chosen == "python":
            return _stencil.heat_block_step_python(
                block, ghost_left, ghost_right, alpha, start, n
            )
        # numpy and mp alike: one block step is too small to ship.
        return _stencil.heat_block_step_numpy(
            block, ghost_left, ghost_right, alpha, start, n
        )


def bootstrap_estimates(data, name: str, n_resamples: int, seed: int):
    """B bootstrap estimates of a named statistic, on the active backend."""
    chosen = backend()
    with telemetry.span("kernel.bootstrap", category="kernel", backend=chosen,
                        statistic=name, n_resamples=n_resamples, n=data.size):
        if chosen == "python":
            return resample.bootstrap_estimates_python(
                data, name, n_resamples, seed
            )
        # numpy and mp alike: sharding would split the single PCG64
        # stream and change the draws — vectorized-in-process it stays.
        return resample.bootstrap_estimates_numpy(data, name, n_resamples, seed)


def paired_bootstrap_estimates(a, b, name: str, n_resamples: int, seed: int):
    """B paired bootstrap estimates of a named statistic."""
    chosen = backend()
    with telemetry.span("kernel.bootstrap_paired", category="kernel",
                        backend=chosen, statistic=name,
                        n_resamples=n_resamples, n=a.size):
        if chosen == "python":
            return resample.paired_bootstrap_estimates_python(
                a, b, name, n_resamples, seed
            )
        return resample.paired_bootstrap_estimates_numpy(
            a, b, name, n_resamples, seed
        )
