"""Multiprocess kernel shards: the ``mp`` backend's two fast paths.

``REPRO_KERNELS=mp`` escapes the GIL for the two kernels whose work
decomposes into independent array blocks:

- **batched LCS** — the parent pre-encodes the *global* (L, max_m)
  ligand code matrix (padding to the global ``max_m`` is score-neutral:
  pad code 0 matches nothing and a no-match DP step is the identity),
  ships contiguous row shards to a persistent pool via shared memory,
  and concatenates per-shard scores in shard order.  Row DPs are
  independent, so the result is bit-identical to one in-process
  :func:`~repro.kernels.lcs.lcs_scores_codes_numpy` over the whole
  matrix.
- **heat stencil** — two shared-memory buffers hold the rod; each
  worker owns a contiguous interior block and advances it with the
  *same* slice expression as :func:`~repro.kernels.stencil.
  heat_steps_numpy`, double-buffering with one barrier per step (all
  step-k writes land before any step-k+1 read).  The update is
  elementwise in the previous state, so the block decomposition is
  bit-identical to the full-array slice — the DESIGN shared-memory rule
  in action.

Everything else (single-ligand LCS, block steps, bootstrap resampling)
falls back to the in-process NumPy kernels: single calls are too small
to amortise a hop, and sharding the bootstrap would split its single
PCG64 stream and change the draws.  Small inputs take the same fallback
(:data:`MIN_MP_LIGANDS` / :data:`MIN_MP_CELLS`) — shipping must never
make a call slower than running it here.
"""

from __future__ import annotations

import atexit
import multiprocessing
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np

from repro.config import resolve_mp_start_method, resolve_mp_workers
from repro.kernels import lcs as _lcs
from repro.kernels import stencil as _stencil
from repro.sched.core import Call

__all__ = [
    "MIN_MP_LIGANDS",
    "MIN_MP_CELLS",
    "lcs_scores_mp",
    "heat_steps_mp",
    "close_pool",
]

#: Below these sizes the in-process NumPy kernel runs instead — the
#: cross-process hop costs more than it saves.  Deliberately small so
#: the test suite exercises the real transport on modest inputs.
MIN_MP_LIGANDS = 8
MIN_MP_CELLS = 64

_POOL = None


def _pool():
    """The lazily-created module pool shared by every mp kernel call."""
    global _POOL
    if _POOL is None:
        from repro.procpool import ProcessPool

        _POOL = ProcessPool(resolve_mp_workers())
        atexit.register(close_pool)
    return _POOL


def close_pool() -> None:
    """Tear down the module pool (idempotent; re-creates on next use)."""
    global _POOL
    if _POOL is not None:
        _POOL.close()
        _POOL = None


def _lcs_shard(batch: np.ndarray, codes: np.ndarray) -> list[int]:
    """Pool-child entry point: the matrix DP over one row shard."""
    return _lcs.lcs_scores_codes_numpy(batch, codes)


def lcs_scores_mp(ligands: Sequence[str], protein: str) -> list[int]:
    """Batched LCS scores, row-sharded across the process pool."""
    if not ligands:
        return []
    if not protein:
        return [0] * len(ligands)
    pool = None if len(ligands) < MIN_MP_LIGANDS else _pool()
    if pool is None or pool.n_workers < 2:
        return _lcs.lcs_scores_numpy(ligands, protein)
    codes = _lcs.encode_protein(protein)
    max_m = max(len(ligand) for ligand in ligands)
    if max_m == 0:
        return [0] * len(ligands)
    batch = _lcs.encode_ligands(ligands, max_m)
    shards = min(pool.n_workers, len(ligands))
    bounds = [round(i * len(ligands) / shards) for i in range(shards + 1)]
    calls = [
        Call(_lcs_shard, batch[lo:hi], codes)
        for lo, hi in zip(bounds[:-1], bounds[1:])
        if hi > lo
    ]
    scores: list[int] = []
    for shard_scores in pool.scatter(calls):
        scores.extend(shard_scores)
    return scores


def _stencil_block_worker(
    name_a: str, name_b: str, n: int, lo: int, hi: int,
    alpha: float, steps: int, barrier,
) -> None:
    """Advance one contiguous interior block ``[lo, hi)`` for ``steps``.

    Reads one ghost cell either side of the block from the source
    buffer, writes the block into the destination buffer, then waits on
    the barrier before the buffers swap roles — the halo-exchange
    pattern of ``heat_mpi``, with shared memory standing in for
    messages.
    """
    shm_a = shared_memory.SharedMemory(name=name_a)
    shm_b = shared_memory.SharedMemory(name=name_b)
    try:
        buf_a = np.ndarray((n,), dtype=np.float64, buffer=shm_a.buf)
        buf_b = np.ndarray((n,), dtype=np.float64, buffer=shm_b.buf)
        src, dst = buf_a, buf_b
        for _ in range(steps):
            seg = src[lo - 1 : hi + 1]
            dst[lo:hi] = seg[1:-1] + alpha * (
                seg[:-2] - 2.0 * seg[1:-1] + seg[2:]
            )
            barrier.wait()
            src, dst = dst, src
    finally:
        shm_a.close()
        shm_b.close()


def heat_steps_mp(
    u0: Sequence[float], alpha: float, steps: int,
    n_workers: int | None = None,
) -> list[float]:
    """Advance a whole rod with the interior split across processes."""
    u = np.asarray(u0, dtype=np.float64)
    n = u.size
    interior = n - 2
    workers = resolve_mp_workers(n_workers)
    if (steps == 0 or interior < max(workers, MIN_MP_CELLS)
            or workers < 2):
        return _stencil.heat_steps_numpy(u0, alpha, steps)
    context = multiprocessing.get_context(resolve_mp_start_method())
    shm_a = shared_memory.SharedMemory(create=True, size=n * 8)
    shm_b = shared_memory.SharedMemory(create=True, size=n * 8)
    try:
        buf_a = np.ndarray((n,), dtype=np.float64, buffer=shm_a.buf)
        buf_b = np.ndarray((n,), dtype=np.float64, buffer=shm_b.buf)
        buf_a[:] = u
        buf_b[0] = u[0]          # Dirichlet boundaries never change, so
        buf_b[-1] = u[-1]        # both buffers carry them from step 0
        barrier = context.Barrier(workers)
        bounds = [1 + round(i * interior / workers)
                  for i in range(workers + 1)]
        processes = [
            context.Process(
                target=_stencil_block_worker,
                args=(shm_a.name, shm_b.name, n, lo, hi,
                      float(alpha), steps, barrier),
                daemon=True,
            )
            for lo, hi in zip(bounds[:-1], bounds[1:])
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60.0)
        bad = [p for p in processes if p.is_alive() or p.exitcode != 0]
        if bad:
            for process in bad:
                if process.is_alive():
                    process.terminate()
            raise RuntimeError(
                f"{len(bad)} stencil worker(s) failed "
                f"(exitcodes {[p.exitcode for p in processes]})"
            )
        final = buf_a if steps % 2 == 0 else buf_b
        return final.copy().tolist()
    finally:
        shm_a.close()
        shm_b.close()
        shm_a.unlink()
        shm_b.unlink()
