"""The kernel benchmark behind ``python -m repro bench kernels``.

Three measurements, one per hot loop, each scalar-vs-vectorized on the
same inputs:

- **lcs** — the Assignment-5 ligand-scoring sweep (the paper's
  ``max_ligand`` 5 → 7 protocol) scored three ways: the scalar DP per
  ligand, the row-vectorized kernel per ligand, and the padded batch
  kernel scoring the whole sweep per call; plus the *dispatch* pair —
  the same sweep through the work-stealing scheduler one-task-per-ligand
  on the scalar backend vs chunked tasks on the batched kernel;
- **stencil** — the heat rod advanced by the per-cell loop vs the slice
  kernel;
- **bootstrap** — ``bootstrap_ci(mean)`` at B resamples on the loop vs
  the (B, n) matrix kernel; plus the same pair for ``median``, where
  the loop pays a full sort per resample and the kernel one
  ``np.partition`` per block.

Results go to ``BENCH_kernels.json``; ``ok`` is true when no vectorized
path is slower than its scalar twin at the benchmark sizes — the CI
smoke gate.  Absolute times are machine-dependent; the *ratios* are the
trajectory the ROADMAP tracks.
"""

from __future__ import annotations

import json
import statistics
import time
from typing import Any, Callable

import numpy as np

from repro import kernels
from repro.drugdesign.ligands import DEFAULT_PROTEIN, generate_ligands
from repro.kernels import lcs as lcs_kernels
from repro.kernels import stencil as stencil_kernels

__all__ = ["run_kernels_bench", "render_point"]

#: The Assignment-5 sweep conditions: (n_ligands, max_ligand).  Raising
#: max_ligand from 5 to 7 is the assignment's "more work" step.
SWEEP = ((120, 5), (120, 7))


def _median_s(fn: Callable[[], Any], repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def _sweep_ligands() -> list[list[str]]:
    return [
        generate_ligands(n, max_ligand, seed=500) for n, max_ligand in SWEEP
    ]


def _bench_lcs(repeats: int) -> dict[str, float]:
    batches = _sweep_ligands()
    protein = DEFAULT_PROTEIN
    codes = lcs_kernels.encode_protein(protein)

    def scalar() -> None:
        for batch in batches:
            for ligand in batch:
                lcs_kernels.lcs_score_python(ligand, protein)

    def vectorized() -> None:
        for batch in batches:
            for ligand in batch:
                lcs_kernels.lcs_score_numpy(ligand, protein, codes)

    def batched() -> None:
        for batch in batches:
            lcs_kernels.lcs_scores_numpy(batch, protein)

    scalar_s = _median_s(scalar, repeats)
    vector_s = _median_s(vectorized, repeats)
    batched_s = _median_s(batched, repeats)
    return {
        "lcs_scalar_s": scalar_s,
        "lcs_vector_s": vector_s,
        "lcs_batched_s": batched_s,
        "lcs_vector_speedup": scalar_s / vector_s,
        "lcs_batched_speedup": scalar_s / batched_s,
    }


def _bench_dispatch(repeats: int, chunk: int) -> dict[str, float]:
    from repro.drugdesign.solvers import solve_sched
    from repro.sched.executor import WorkStealingExecutor

    batches = _sweep_ligands()
    protein = DEFAULT_PROTEIN

    def run(backend: str, chunk_size: int) -> None:
        with kernels.use_backend(backend):
            for batch in batches:
                executor = WorkStealingExecutor(n_workers=4, seed=7)
                solve_sched(batch, protein, executor, chunk=chunk_size)

    scalar_s = _median_s(lambda: run("python", 1), repeats)
    batched_s = _median_s(lambda: run("numpy", chunk), repeats)
    return {
        "dispatch_scalar_s": scalar_s,
        "dispatch_batched_s": batched_s,
        "dispatch_chunk": chunk,
        "dispatch_speedup": scalar_s / batched_s,
    }


def _bench_stencil(repeats: int, cells: int, steps: int) -> dict[str, float]:
    rng = np.random.default_rng(7)
    u0 = rng.uniform(0.0, 100.0, cells).tolist()
    scalar_s = _median_s(
        lambda: stencil_kernels.heat_steps_python(u0, 0.25, steps), repeats
    )
    vector_s = _median_s(
        lambda: stencil_kernels.heat_steps_numpy(u0, 0.25, steps), repeats
    )
    return {
        "stencil_cells": cells,
        "stencil_steps": steps,
        "stencil_scalar_s": scalar_s,
        "stencil_vector_s": vector_s,
        "stencil_speedup": scalar_s / vector_s,
    }


def _bench_bootstrap(repeats: int, n_resamples: int) -> dict[str, float]:
    from repro.stats.bootstrap import bootstrap_ci
    from repro.stats.descriptive import mean, median

    rng = np.random.default_rng(9)
    sample = rng.normal(4.0, 0.25, 124).tolist()

    def scalar() -> None:
        # The pre-kernel code path: a callable statistic keeps the
        # original per-resample loop — what every caller paid before.
        bootstrap_ci(sample, mean, n_resamples=n_resamples, seed=3)

    def vectorized() -> None:
        with kernels.use_backend("numpy"):
            bootstrap_ci(sample, "mean", n_resamples=n_resamples, seed=3)

    def median_scalar() -> None:
        # The callable keeps the loop: one full sort per resample.
        bootstrap_ci(sample, median, n_resamples=n_resamples, seed=3)

    def median_vectorized() -> None:
        # The named statistic rides the (B, n) matrix with one
        # np.partition per block — selection, not B sorts.
        with kernels.use_backend("numpy"):
            bootstrap_ci(sample, "median", n_resamples=n_resamples, seed=3)

    scalar_s = _median_s(scalar, repeats)
    vector_s = _median_s(vectorized, repeats)
    median_scalar_s = _median_s(median_scalar, repeats)
    median_vector_s = _median_s(median_vectorized, repeats)
    return {
        "bootstrap_n_resamples": n_resamples,
        "bootstrap_scalar_s": scalar_s,
        "bootstrap_vector_s": vector_s,
        "bootstrap_speedup": scalar_s / vector_s,
        "bootstrap_median_scalar_s": median_scalar_s,
        "bootstrap_median_vector_s": median_vector_s,
        "bootstrap_median_speedup": median_scalar_s / median_vector_s,
    }


def run_kernels_bench(
    quick: bool = False, out_path: str | None = "BENCH_kernels.json"
) -> dict[str, Any]:
    """Run every kernel benchmark; write and return the trajectory point.

    ``quick`` shrinks repeats and sizes for the CI smoke step — the
    speedup *ratios* shrink too (less work to amortize), so the gate on
    a quick run is only "vectorized is not slower".
    """
    repeats = 3 if quick else 7
    point: dict[str, Any] = {
        "bench": "kernels",
        "quick": quick,
        "sweep": [list(condition) for condition in SWEEP],
    }
    point.update(_bench_lcs(repeats))
    point.update(_bench_dispatch(max(1, repeats // 2), chunk=16))
    point.update(_bench_stencil(
        repeats, cells=512 if quick else 2048, steps=50 if quick else 200
    ))
    point.update(_bench_bootstrap(repeats, n_resamples=500 if quick else 2000))
    for key, value in list(point.items()):
        if isinstance(value, float):
            point[key] = round(value, 6)
    # Vectorized-vs-scalar needs no parallel hardware: always gated.
    point["gate_applied"] = True
    point["ok"] = bool(
        point["lcs_batched_speedup"] >= 1.0
        and point["stencil_speedup"] >= 1.0
        and point["bootstrap_speedup"] >= 1.0
        and point["bootstrap_median_speedup"] >= 1.0
    )
    point["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(point, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return point


def render_point(point: dict[str, Any]) -> str:
    """The benchmark point as the aligned table the CLI prints."""
    rows = [
        ("lcs sweep (scalar loop)", point["lcs_scalar_s"], 1.0),
        ("lcs sweep (vectorized)", point["lcs_vector_s"],
         point["lcs_vector_speedup"]),
        ("lcs sweep (batched)", point["lcs_batched_s"],
         point["lcs_batched_speedup"]),
        ("sched dispatch (1/task, scalar)", point["dispatch_scalar_s"], 1.0),
        (f"sched dispatch (chunk={point['dispatch_chunk']}, batched)",
         point["dispatch_batched_s"], point["dispatch_speedup"]),
        ("stencil (scalar loop)", point["stencil_scalar_s"], 1.0),
        ("stencil (slices)", point["stencil_vector_s"],
         point["stencil_speedup"]),
        ("bootstrap mean (loop)", point["bootstrap_scalar_s"], 1.0),
        ("bootstrap mean (matrix)", point["bootstrap_vector_s"],
         point["bootstrap_speedup"]),
        ("bootstrap median (loop)", point["bootstrap_median_scalar_s"], 1.0),
        ("bootstrap median (partition)", point["bootstrap_median_vector_s"],
         point["bootstrap_median_speedup"]),
    ]
    lines = [
        f"kernels bench (quick={point['quick']}): "
        f"sweep={point['sweep']} ok={point['ok']}"
    ]
    for label, seconds, speedup in rows:
        lines.append(f"  {label:34s} {seconds * 1e3:9.2f} ms  {speedup:6.1f}x")
    return "\n".join(lines)
