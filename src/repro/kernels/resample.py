"""Fully vectorized bootstrap resampling.

The scalar loop in :mod:`repro.stats.bootstrap` draws one index vector
per resample and applies a Python callable B times.  For the statistics
the reproduction actually bootstraps — the mean, the sample SD, the
median, the paper's average-variance Cohen's d, and the Pearson r — the
whole procedure collapses to array expressions: draw the complete (B, n)
index matrix in one call and reduce along ``axis=1``.

Bit-identity with the scalar path holds by construction and is pinned
by property tests:

- ``Generator.integers(0, n, size=(B, n))`` consumes the PCG64 stream
  in exactly the order of B successive ``size=n`` draws, so both
  backends see the *same resamples*;
- NumPy's pairwise summation depends only on the length and layout of
  the reduced axis, so ``mat.mean(axis=1)`` equals ``np.mean(row)`` for
  every C-contiguous row, float for float — and the per-row oracle here
  uses the same expressions the vectorized path uses.

Statistics are *named* (:data:`STATISTICS` / :data:`PAIRED_STATISTICS`);
:func:`resolve_statistic` also recognises ``np.mean`` itself so the
common ``bootstrap_ci(xs, np.mean)`` call takes the fast path without
any caller change.  Unknown callables stay on the loop.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

__all__ = [
    "STATISTICS",
    "PAIRED_STATISTICS",
    "resolve_statistic",
    "resolve_paired_statistic",
    "statistic_value",
    "paired_statistic_value",
    "bootstrap_estimates_python",
    "bootstrap_estimates_numpy",
    "paired_bootstrap_estimates_python",
    "paired_bootstrap_estimates_numpy",
]

#: Named one-sample statistics with a vectorized implementation.
STATISTICS = ("mean", "std", "median")

#: Named paired statistics with a vectorized implementation.
PAIRED_STATISTICS = ("mean_diff", "cohens_d", "pearson_r")


def resolve_statistic(statistic: Any) -> str | None:
    """Map a ``bootstrap_ci`` statistic to a kernel name, or ``None``.

    Strings must name a known statistic (anything else is an error —
    a typo should not silently fall back to calling a string).  The
    ``np.mean`` callable is recognised by identity.
    """
    if isinstance(statistic, str):
        if statistic not in STATISTICS:
            raise ValueError(
                f"unknown bootstrap statistic {statistic!r}; "
                f"expected one of {STATISTICS} (or pass a callable)"
            )
        return statistic
    if statistic is np.mean:
        return "mean"
    if statistic is np.median:
        return "median"
    return None


def resolve_paired_statistic(statistic: Any) -> str | None:
    """Paired counterpart of :func:`resolve_statistic`."""
    if isinstance(statistic, str):
        if statistic not in PAIRED_STATISTICS:
            raise ValueError(
                f"unknown paired bootstrap statistic {statistic!r}; "
                f"expected one of {PAIRED_STATISTICS} (or pass a callable)"
            )
        return statistic
    return None


# -- the statistics themselves (1-D row and (B, n) matrix forms) -------------
#
# Row and matrix forms use the same expressions in the same order; the
# matrix form only swaps ``.mean()`` for ``.mean(axis=1)`` etc., which
# NumPy reduces with the identical pairwise algorithm per row.

def statistic_value(data: np.ndarray, name: str) -> float:
    """The plug-in estimate of a named statistic on the full sample."""
    if name == "mean":
        return float(data.mean())
    if name == "std":
        return float(data.std(ddof=1))
    if name == "median":
        return float(_rows_median(data[None, :])[0])
    raise ValueError(f"unknown statistic {name!r}")


def _rows_median(matrix: np.ndarray) -> np.ndarray:
    """Per-row median, bit-identical to :func:`repro.stats.descriptive.median`.

    Deliberately *not* ``np.quantile(..., 0.5)``: NumPy's quantile
    interpolates with ``b - (b - a) * 0.5``, which is not the oracle's
    ``0.5 * (a + b)`` in IEEE-754 — e.g. a=-1.0, b=1.0000000000000002
    gives 2.220446049250313e-16 vs the oracle's 1.1102230246251565e-16.
    ``np.partition`` is pure selection (no arithmetic on values), after
    which the even-length midpoint uses the oracle's exact expression.
    """
    n = matrix.shape[1]
    mid = n // 2
    if n % 2:
        return np.partition(matrix, mid, axis=1)[:, mid].astype(np.float64)
    part = np.partition(matrix, (mid - 1, mid), axis=1)
    return 0.5 * (part[:, mid - 1] + part[:, mid])


def _rows_statistic(matrix: np.ndarray, name: str) -> np.ndarray:
    if name == "mean":
        return matrix.mean(axis=1)
    if name == "std":
        return matrix.std(axis=1, ddof=1)
    if name == "median":
        return _rows_median(matrix)
    raise ValueError(f"unknown statistic {name!r}")


def paired_statistic_value(a: np.ndarray, b: np.ndarray, name: str) -> float:
    """The plug-in estimate of a named paired statistic."""
    if name == "mean_diff":
        return float(b.mean() - a.mean())
    if name == "cohens_d":
        m1, m2 = a.mean(), b.mean()
        s1, s2 = a.std(ddof=1), b.std(ddof=1)
        return float((m2 - m1) / np.sqrt((s1 * s1 + s2 * s2) / 2.0))
    if name == "pearson_r":
        am = a - a.mean()
        bm = b - b.mean()
        r = (am * bm).sum() / np.sqrt((am * am).sum() * (bm * bm).sum())
        return float(np.clip(r, -1.0, 1.0))
    raise ValueError(f"unknown paired statistic {name!r}")


def _rows_paired_statistic(
    a: np.ndarray, b: np.ndarray, name: str
) -> np.ndarray:
    if name == "mean_diff":
        return b.mean(axis=1) - a.mean(axis=1)
    if name == "cohens_d":
        m1, m2 = a.mean(axis=1), b.mean(axis=1)
        s1, s2 = a.std(axis=1, ddof=1), b.std(axis=1, ddof=1)
        return (m2 - m1) / np.sqrt((s1 * s1 + s2 * s2) / 2.0)
    if name == "pearson_r":
        am = a - a.mean(axis=1, keepdims=True)
        bm = b - b.mean(axis=1, keepdims=True)
        r = (am * bm).sum(axis=1) / np.sqrt(
            (am * am).sum(axis=1) * (bm * bm).sum(axis=1)
        )
        return np.clip(r, -1.0, 1.0)
    raise ValueError(f"unknown paired statistic {name!r}")


# -- backends ----------------------------------------------------------------

#: Rows per block of the vectorized draw.  The index matrix is drawn and
#: reduced in (``_BLOCK_ROWS``, n) blocks instead of one (B, n) slab:
#: the stream is filled row-major, so blockwise draws consume PCG64
#: identically, every row statistic reduces the same bytes — and the
#: working set stays cache-resident instead of paying page faults on a
#: fresh multi-megabyte allocation each call (~2× on B=2000, n=124).
_BLOCK_ROWS = 256


def bootstrap_estimates_python(
    data: np.ndarray, name: str, n_resamples: int, seed: int
) -> np.ndarray:
    """Scalar oracle: B sequential draws, one row statistic per draw."""
    rng = np.random.default_rng(seed)
    n = data.size
    estimates = np.empty(n_resamples)
    row: Callable[[np.ndarray], np.ndarray] = lambda m: _rows_statistic(m, name)
    for b in range(n_resamples):
        resample = data[rng.integers(0, n, size=n)]
        estimates[b] = row(resample[None, :])[0]
    return estimates


def bootstrap_estimates_numpy(
    data: np.ndarray, name: str, n_resamples: int, seed: int
) -> np.ndarray:
    """The whole index matrix at once, reduced along ``axis=1``."""
    rng = np.random.default_rng(seed)
    n = data.size
    estimates = np.empty(n_resamples)
    for start in range(0, n_resamples, _BLOCK_ROWS):
        stop = min(start + _BLOCK_ROWS, n_resamples)
        index = rng.integers(0, n, size=(stop - start, n))
        estimates[start:stop] = _rows_statistic(data[index], name)
    return estimates


def paired_bootstrap_estimates_python(
    a: np.ndarray, b: np.ndarray, name: str, n_resamples: int, seed: int
) -> np.ndarray:
    """Scalar oracle for the paired case: one index vector per resample."""
    rng = np.random.default_rng(seed)
    n = a.size
    estimates = np.empty(n_resamples)
    for i in range(n_resamples):
        index = rng.integers(0, n, size=n)
        estimates[i] = _rows_paired_statistic(
            a[index][None, :], b[index][None, :], name
        )[0]
    return estimates


def paired_bootstrap_estimates_numpy(
    a: np.ndarray, b: np.ndarray, name: str, n_resamples: int, seed: int
) -> np.ndarray:
    """Paired draw: one index matrix applied to both samples."""
    rng = np.random.default_rng(seed)
    n = a.size
    estimates = np.empty(n_resamples)
    for start in range(0, n_resamples, _BLOCK_ROWS):
        stop = min(start + _BLOCK_ROWS, n_resamples)
        index = rng.integers(0, n, size=(stop - start, n))
        estimates[start:stop] = _rows_paired_statistic(
            a[index], b[index], name
        )
    return estimates
