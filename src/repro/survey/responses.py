"""Survey response records.

A :class:`StudentResponse` holds one student's ratings for every item of
the instrument, on both scales, for one wave.  A :class:`WaveResponses`
bundles a whole cohort's responses for one administration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.survey.instrument import Element, Instrument
from repro.survey.scales import Category, validate_likert

__all__ = ["ElementResponse", "StudentResponse", "WaveResponses"]


@dataclass(frozen=True)
class ElementResponse:
    """One student's ratings for one element under one category.

    ``definition`` is the score on the definition item; ``components`` the
    scores on the component items, in instrument order.
    """

    element: str
    category: Category
    definition: int
    components: tuple[int, ...]

    def __post_init__(self) -> None:
        validate_likert(self.definition)
        if not self.components:
            raise ValueError(f"element response {self.element!r} has no component scores")
        for score in self.components:
            validate_likert(score)

    @property
    def all_scores(self) -> tuple[int, ...]:
        return (self.definition, *self.components)


@dataclass(frozen=True)
class StudentResponse:
    """One student's complete response sheet for one wave.

    Maps ``(element name, category)`` to an :class:`ElementResponse`.
    """

    student_id: str
    ratings: Mapping[tuple[str, Category], ElementResponse] = field(default_factory=dict)

    def rating(self, element: str, category: Category) -> ElementResponse:
        try:
            return self.ratings[(element, category)]
        except KeyError:
            raise KeyError(
                f"student {self.student_id!r} has no rating for "
                f"({element!r}, {category.value})"
            ) from None

    def validate_against(self, instrument: Instrument) -> None:
        """Check the sheet is complete and structurally consistent."""
        for element in instrument.elements:
            for category in Category:
                resp = self.rating(element.name, category)
                _check_shape(resp, element)

    def element_names(self) -> set[str]:
        return {name for (name, _cat) in self.ratings}


def _check_shape(resp: ElementResponse, element: Element) -> None:
    if len(resp.components) != len(element.components):
        raise ValueError(
            f"element {element.name!r}: expected {len(element.components)} component "
            f"scores, got {len(resp.components)}"
        )


@dataclass(frozen=True)
class WaveResponses:
    """All responses collected in one survey administration."""

    wave_name: str
    instrument: Instrument
    responses: tuple[StudentResponse, ...]

    def __post_init__(self) -> None:
        ids = [r.student_id for r in self.responses]
        if len(set(ids)) != len(ids):
            raise ValueError(f"wave {self.wave_name!r}: duplicate student ids")

    @property
    def n(self) -> int:
        return len(self.responses)

    def validate(self) -> None:
        """Validate every sheet against the instrument."""
        for response in self.responses:
            response.validate_against(self.instrument)

    def by_student(self) -> dict[str, StudentResponse]:
        return {r.student_id: r for r in self.responses}

    def aligned_with(self, other: "WaveResponses") -> tuple[list[StudentResponse], list[StudentResponse]]:
        """Pair this wave's responses with another wave's, by student id.

        Only students who answered both waves are returned (the paper's
        paired analysis requires complete pairs; with N = 124 in both
        waves the cohorts were identical).
        """
        mine = self.by_student()
        theirs = other.by_student()
        common = sorted(set(mine) & set(theirs))
        if not common:
            raise ValueError("no students answered both waves")
        return [mine[s] for s in common], [theirs[s] for s in common]


def iter_scores(
    responses: Iterable[StudentResponse], category: Category
) -> Iterable[tuple[str, ElementResponse]]:
    """Yield (student_id, element response) pairs for one category."""
    for response in responses:
        for (name, cat), rating in response.ratings.items():
            if cat is category:
                yield response.student_id, rating
