"""The Beyerlein *Team Design Skills Growth Survey* substrate.

The paper (its Fig. 2 and §II.B) assesses the PBL module with the survey of
Beyerlein, Davishahl, Davis, Lyons and Gentili (ASEE 2005).  The instrument
measures seven elements — Teamwork, Information Gathering, Problem
Definition, Idea Generation, Evaluation & Decision Making, Implementation,
Communication — each through a *definition* item plus several *component*
(performance-indicator) items, on two 5-point scales:

- **Class Emphasis** (1 "Did not discuss" … 5 "Major emphasis")
- **Personal Growth** (1 "I did not use this skill within this class" …
  5 "I experienced a tremendous growth and added many new skills")

The survey is administered twice (mid-semester and end of semester).

Modules
-------
- :mod:`repro.survey.scales` — the two rating scales with their verbatim
  anchor labels.
- :mod:`repro.survey.instrument` — elements, items and the full instrument.
- :mod:`repro.survey.responses` — response records for students × waves.
- :mod:`repro.survey.scoring` — skill scores, overall averages, composite
  scores, cohort aggregation (the inputs of Tables 1–6).
- :mod:`repro.survey.administration` — wave scheduling against the course
  timeline.
"""

from repro.survey.administration import SurveyAdministration, Wave
from repro.survey.reliability import wave_reliability
from repro.survey.instrument import (
    ELEMENT_NAMES,
    Element,
    Instrument,
    Item,
    team_design_skills_survey,
)
from repro.survey.responses import ElementResponse, StudentResponse, WaveResponses
from repro.survey.scales import (
    CLASS_EMPHASIS_SCALE,
    PERSONAL_GROWTH_SCALE,
    Category,
    Scale,
    validate_likert,
)
from repro.survey.scoring import (
    CohortScores,
    cohort_scores,
    composite_scores,
    element_score,
    overall_average,
    skill_scores,
)

__all__ = [
    "CLASS_EMPHASIS_SCALE",
    "ELEMENT_NAMES",
    "Category",
    "CohortScores",
    "Element",
    "ElementResponse",
    "Instrument",
    "Item",
    "PERSONAL_GROWTH_SCALE",
    "Scale",
    "StudentResponse",
    "SurveyAdministration",
    "Wave",
    "WaveResponses",
    "cohort_scores",
    "composite_scores",
    "element_score",
    "overall_average",
    "skill_scores",
    "team_design_skills_survey",
    "validate_likert",
    "wave_reliability",
]
