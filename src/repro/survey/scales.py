"""The two 5-point rating scales of the survey.

Anchor labels are verbatim from the paper's §II.B ("Class Emphasis scores
are described as 1: Did not discuss, …" / "Personal Growth scores are
described as 1: I did not use this skill within this class, …").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

__all__ = [
    "Category",
    "Scale",
    "CLASS_EMPHASIS_SCALE",
    "PERSONAL_GROWTH_SCALE",
    "SCALE_FOR_CATEGORY",
    "validate_likert",
]

LIKERT_MIN = 1
LIKERT_MAX = 5


class Category(enum.Enum):
    """The two question categories the instrument pairs for every item."""

    CLASS_EMPHASIS = "class_emphasis"
    PERSONAL_GROWTH = "personal_growth"


@dataclass(frozen=True)
class Scale:
    """A 5-point Likert scale with verbal anchors."""

    name: str
    anchors: Mapping[int, str]

    def __post_init__(self) -> None:
        expected = set(range(LIKERT_MIN, LIKERT_MAX + 1))
        if set(self.anchors) != expected:
            raise ValueError(
                f"scale {self.name!r} must anchor exactly points {sorted(expected)}"
            )

    def label(self, score: int) -> str:
        """Verbal anchor for a score."""
        validate_likert(score)
        return self.anchors[score]

    def __str__(self) -> str:
        rows = ", ".join(f"{k}: {v}" for k, v in sorted(self.anchors.items()))
        return f"{self.name} [{rows}]"


def validate_likert(score: int) -> int:
    """Check that a raw item score is an integer on the 1–5 grid."""
    if isinstance(score, bool) or not isinstance(score, int):
        raise TypeError(f"Likert score must be an int, got {type(score).__name__}")
    if not LIKERT_MIN <= score <= LIKERT_MAX:
        raise ValueError(f"Likert score must be in [{LIKERT_MIN}, {LIKERT_MAX}], got {score}")
    return score


CLASS_EMPHASIS_SCALE = Scale(
    name="Class Emphasis",
    anchors={
        1: "Did not discuss",
        2: "Minor emphasis",
        3: "Some emphasis",
        4: "Significant emphasis",
        5: "Major emphasis",
    },
)

PERSONAL_GROWTH_SCALE = Scale(
    name="Personal Growth",
    anchors={
        1: "I did not use this skill within this class",
        2: "I used previous skills and had little growth",
        3: "I grew some and gained a few new skills",
        4: "I experienced a significant growth and added several skills",
        5: "I experienced a tremendous growth and added many new skills",
    },
)

SCALE_FOR_CATEGORY: Mapping[Category, Scale] = {
    Category.CLASS_EMPHASIS: CLASS_EMPHASIS_SCALE,
    Category.PERSONAL_GROWTH: PERSONAL_GROWTH_SCALE,
}
