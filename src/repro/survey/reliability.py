"""Scale reliability of the survey's elements.

Computes Cronbach's alpha for every element of a collected wave — the
standard internal-consistency check a survey replication reports.  The
latent-trait response model gives every element a genuine common factor,
so the generated data's alphas land in the internally-consistent range
(checked by the test suite and printed by the survey-analytics example).
"""

from __future__ import annotations

from repro.stats.reliability import CronbachResult, cronbach_alpha
from repro.survey.responses import WaveResponses
from repro.survey.scales import Category

__all__ = ["wave_reliability"]


def wave_reliability(
    wave: WaveResponses, category: Category
) -> dict[str, CronbachResult]:
    """Cronbach's alpha per element for one wave and category.

    Items are the element's definition + components; respondents are the
    wave's students.
    """
    ordered = sorted(wave.responses, key=lambda r: r.student_id)
    out: dict[str, CronbachResult] = {}
    for element in wave.instrument.elements:
        items: list[list[float]] = [[] for _ in range(element.n_items)]
        for response in ordered:
            rating = response.rating(element.name, category)
            for j, score in enumerate(rating.all_scores):
                items[j].append(float(score))
        out[element.name] = cronbach_alpha(items)
    return out
