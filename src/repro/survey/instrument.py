"""The survey instrument: elements, items, and the full survey.

Structure (paper §II.B): "The first item in each of the categories in the
survey is the basic definition of that element … The next items in that
category are components or performance indicators of that element."

The Teamwork element is transcribed verbatim from the paper's Fig. 2.  The
other six elements are reconstructed from the Beyerlein et al. (2005)
team-design-skills framework; their exact wording is not printed in the
paper, so the component texts below are faithful paraphrases of that
framework (this substitution only affects display strings — every number in
Tables 1–6 depends on the *structure*, which is exact: one definition item
plus the component items per element, scored on both scales).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

__all__ = [
    "Item",
    "Element",
    "Instrument",
    "ELEMENT_NAMES",
    "team_design_skills_survey",
]

# Canonical element order — the order the paper's tables list them in.
ELEMENT_NAMES: tuple[str, ...] = (
    "Teamwork",
    "Information Gathering",
    "Problem Definition",
    "Idea Generation",
    "Evaluation and Decision Making",
    "Implementation",
    "Communication",
)


@dataclass(frozen=True)
class Item:
    """One survey item (statement rated on both scales)."""

    item_id: str
    text: str
    is_definition: bool = False

    def __str__(self) -> str:
        marker = " [definition]" if self.is_definition else ""
        return f"{self.item_id}{marker}: {self.text}"


@dataclass(frozen=True)
class Element:
    """One of the seven skill elements: a definition item + components."""

    name: str
    definition: Item
    components: tuple[Item, ...]

    def __post_init__(self) -> None:
        if not self.definition.is_definition:
            raise ValueError(f"element {self.name!r}: definition item not flagged")
        if not self.components:
            raise ValueError(f"element {self.name!r} needs at least one component item")
        if any(c.is_definition for c in self.components):
            raise ValueError(f"element {self.name!r}: component flagged as definition")

    @property
    def items(self) -> tuple[Item, ...]:
        """Definition first, then components — presentation order."""
        return (self.definition, *self.components)

    @property
    def n_items(self) -> int:
        return 1 + len(self.components)


@dataclass(frozen=True)
class Instrument:
    """A complete survey instrument."""

    title: str
    elements: tuple[Element, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [e.name for e in self.elements]
        if len(set(names)) != len(names):
            raise ValueError("duplicate element names in instrument")
        ids = [i.item_id for i in self.all_items()]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate item ids in instrument")

    def element(self, name: str) -> Element:
        """Look up an element by name."""
        for e in self.elements:
            if e.name == name:
                return e
        raise KeyError(f"no element named {name!r}")

    def all_items(self) -> Iterator[Item]:
        for e in self.elements:
            yield from e.items

    @property
    def n_items(self) -> int:
        return sum(e.n_items for e in self.elements)

    @property
    def element_names(self) -> tuple[str, ...]:
        return tuple(e.name for e in self.elements)


def _element(name: str, prefix: str, definition: str, components: Sequence[str]) -> Element:
    return Element(
        name=name,
        definition=Item(item_id=f"{prefix}0", text=definition, is_definition=True),
        components=tuple(
            Item(item_id=f"{prefix}{i + 1}", text=text) for i, text in enumerate(components)
        ),
    )


def team_design_skills_survey() -> Instrument:
    """Build the Team Design Skills Growth Survey used by the paper.

    Seven elements; Teamwork's wording is verbatim from the paper's Fig. 2
    (definition + four performance indicators).  29 items total, each rated
    on both the Class-Emphasis and Personal-Growth scales.
    """
    return Instrument(
        title="Team Design Skills Growth Survey (Beyerlein et al. 2005)",
        elements=(
            _element(
                "Teamwork",
                "TW",
                "Individuals participate effectively in groups or teams.",
                (
                    "Individuals understand their own and other member's styles of "
                    "thinking and how they affect teamwork.",
                    "Individuals understand the different roles included in effective "
                    "teamwork and responsibilities of each role.",
                    "Individuals use effective group communication skills: listening, "
                    "speaking, visual communication.",
                    "Individuals cooperate to support effective teamwork.",
                ),
            ),
            _element(
                "Information Gathering",
                "IG",
                "Individuals locate, evaluate, and use information needed for the task.",
                (
                    "Individuals identify what information is needed to make progress.",
                    "Individuals search multiple sources (documentation, references, "
                    "measurements) for relevant information.",
                    "Individuals judge the quality and credibility of gathered information.",
                    "Individuals organize and share gathered information with the team.",
                ),
            ),
            _element(
                "Problem Definition",
                "PD",
                "Individuals formulate the problem to be solved, its requirements and "
                "constraints.",
                (
                    "Individuals identify the customer needs or assignment goals behind "
                    "a task.",
                    "Individuals state requirements and constraints explicitly.",
                    "Individuals decompose a complex problem into tractable sub-problems.",
                    "Individuals recognize when a problem statement must be revised.",
                ),
            ),
            _element(
                "Idea Generation",
                "IDG",
                "Individuals generate a variety of candidate solutions or approaches.",
                (
                    "Individuals brainstorm multiple alternative approaches before "
                    "committing.",
                    "Individuals build on and combine the ideas of others.",
                    "Individuals use analogy and prior patterns to propose solutions.",
                    "Individuals defer judgement while generating ideas.",
                ),
            ),
            _element(
                "Evaluation and Decision Making",
                "ED",
                "Individuals evaluate alternatives and make supportable decisions.",
                (
                    "Individuals define criteria before comparing alternatives.",
                    "Individuals weigh trade-offs among competing alternatives.",
                    "Individuals use evidence (measurements, tests) to support decisions.",
                    "Individuals reach team decisions that members accept and act on.",
                ),
            ),
            _element(
                "Implementation",
                "IM",
                "Individuals carry a chosen solution through to a working result.",
                (
                    "Individuals plan and schedule the work needed to realize a solution.",
                    "Individuals build, code, or assemble the designed solution.",
                    "Individuals test the realized solution against its requirements.",
                    "Individuals iterate on the solution when tests reveal problems.",
                ),
            ),
            _element(
                "Communication",
                "CM",
                "Individuals communicate ideas and results effectively in written, oral, "
                "and visual form.",
                (
                    "Individuals produce clear written reports of methods and results.",
                    "Individuals present results orally to an audience.",
                    "Individuals use figures, code listings, and screenshots effectively.",
                    "Individuals tailor communication to the audience and medium.",
                ),
            ),
        ),
    )
