"""Scoring: from raw item responses to the quantities in Tables 1–6.

The paper derives, per student and wave:

- an **overall average** per category ("The two variables were created by
  averaging all class emphasis question scores on the two surveys
  respectively") — the input of Table 1's paired t-tests and the Cohen's d
  of Tables 2–3;
- a **skill score** per element per category ("Each skill score was created
  by averaging all question scores under each skill") — the inputs of
  Table 4's Pearson correlations;
- a **composite score** per element ("averaging the 'definition' and the
  overall performance average of individual components") — the basis of
  the rankings in Tables 5–6.

Note the subtle difference: skill scores average *all* items of the element
(definition included), composite scores weight the definition item and the
mean of the components equally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.stats.composite import composite_score
from repro.stats.descriptive import mean
from repro.survey.responses import StudentResponse, WaveResponses
from repro.survey.scales import Category

__all__ = [
    "element_score",
    "skill_scores",
    "overall_average",
    "composite_scores",
    "CohortScores",
    "cohort_scores",
]


def element_score(response: StudentResponse, element: str, category: Category) -> float:
    """Skill score: average of all the element's item scores."""
    rating = response.rating(element, category)
    return mean(rating.all_scores)


def skill_scores(response: StudentResponse, category: Category) -> dict[str, float]:
    """Skill score for every element answered by this student."""
    names = sorted(response.element_names())
    return {name: element_score(response, name, category) for name in names}


def overall_average(response: StudentResponse, category: Category) -> float:
    """Average of *all* question scores of one category (Table 1's variable)."""
    scores: list[int] = []
    for (_name, cat), rating in response.ratings.items():
        if cat is category:
            scores.extend(rating.all_scores)
    if not scores:
        raise ValueError(
            f"student {response.student_id!r} has no scores for {category.value}"
        )
    return mean(scores)


def composite_scores(response: StudentResponse, category: Category) -> dict[str, float]:
    """Beyerlein composite score per element for one student."""
    out: dict[str, float] = {}
    for name in sorted(response.element_names()):
        rating = response.rating(name, category)
        out[name] = composite_score(rating.definition, rating.components)
    return out


@dataclass(frozen=True)
class CohortScores:
    """Cohort-level score vectors for one wave and one category.

    ``overall`` is the per-student overall average (length N, student order
    fixed by sorted id); ``per_skill`` maps element name to the per-student
    skill-score vector; ``composite_means`` maps element name to the cohort
    mean composite score (what Tables 5/6 rank).
    """

    wave_name: str
    category: Category
    student_ids: tuple[str, ...]
    overall: tuple[float, ...]
    per_skill: Mapping[str, tuple[float, ...]]
    composite_means: Mapping[str, float]

    @property
    def n(self) -> int:
        return len(self.student_ids)


def cohort_scores(wave: WaveResponses, category: Category) -> CohortScores:
    """Aggregate one wave's raw responses into cohort score vectors."""
    ordered = sorted(wave.responses, key=lambda r: r.student_id)
    if not ordered:
        raise ValueError(f"wave {wave.wave_name!r} has no responses")
    ids = tuple(r.student_id for r in ordered)
    overall = tuple(overall_average(r, category) for r in ordered)

    element_names = wave.instrument.element_names
    per_skill: dict[str, tuple[float, ...]] = {
        name: tuple(element_score(r, name, category) for r in ordered)
        for name in element_names
    }
    composite_means = {
        name: mean([composite_scores(r, category)[name] for r in ordered])
        for name in element_names
    }
    return CohortScores(
        wave_name=wave.wave_name,
        category=category,
        student_ids=ids,
        overall=overall,
        per_skill=per_skill,
        composite_means=composite_means,
    )


def paired_overall(
    first: Sequence[StudentResponse],
    second: Sequence[StudentResponse],
    category: Category,
) -> tuple[list[float], list[float]]:
    """Paired per-student overall averages for two waves (same order)."""
    if len(first) != len(second):
        raise ValueError("paired scoring requires aligned response lists")
    return (
        [overall_average(r, category) for r in first],
        [overall_average(r, category) for r in second],
    )
