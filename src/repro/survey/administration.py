"""Survey administration schedule.

Fig. 1 of the paper places the two administrations at the mid-point of the
semester (after Assignments 1–2, around week 8) and at the end of the term
(week 15).  :class:`SurveyAdministration` binds the instrument to those
two wave dates so the course simulator knows when to collect responses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.survey.instrument import Instrument

__all__ = ["Wave", "SurveyAdministration"]


class Wave(enum.Enum):
    """The two administrations of the survey."""

    FIRST_HALF = "first_half"    # mid-semester: covers the first half
    SECOND_HALF = "second_half"  # end of term: covers the second half

    @property
    def display_name(self) -> str:
        return {
            Wave.FIRST_HALF: "First Half Survey",
            Wave.SECOND_HALF: "Second Half Survey",
        }[self]


# Default schedule from Fig. 1 (15-week semester, survey at midpoint + end).
DEFAULT_WAVE_WEEKS: dict[Wave, int] = {Wave.FIRST_HALF: 8, Wave.SECOND_HALF: 15}


@dataclass(frozen=True)
class SurveyAdministration:
    """When each survey wave is administered, in semester weeks."""

    instrument: Instrument
    wave_weeks: dict[Wave, int]

    @classmethod
    def default(cls, instrument: Instrument) -> "SurveyAdministration":
        return cls(instrument=instrument, wave_weeks=dict(DEFAULT_WAVE_WEEKS))

    def __post_init__(self) -> None:
        if set(self.wave_weeks) != set(Wave):
            raise ValueError("administration must schedule both waves")
        first = self.wave_weeks[Wave.FIRST_HALF]
        second = self.wave_weeks[Wave.SECOND_HALF]
        if not 1 <= first < second:
            raise ValueError(
                f"first wave (week {first}) must precede second wave (week {second})"
            )

    def week_of(self, wave: Wave) -> int:
        return self.wave_weeks[wave]
