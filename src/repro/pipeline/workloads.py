"""Pipeline workloads: the registry provider for mode ``pipeline``.

Two registrations land here:

- the **drug-design pipeline** — the paper's Assignment-5 sweep as a
  durable ``generate → score → rank → report`` pipeline: ligand
  generation is seeded, scoring fans out into durable store jobs (one
  per chunk, ranked by expected score before dispatch through the
  deterministic work-stealing executor), ranking and reporting are pure
  functions of the scores.  ``python -m repro pipeline drugdesign`` and
  serve-submitted ``pipeline`` jobs both run exactly this;
- the **``pipeline`` chaos scenario** — crash rules on the
  ``pipeline.store`` fault site (mid-stage ``complete`` commits and a
  stage-boundary ``checkpoint`` commit); the runner reopens the store
  and resumes after every injected crash, then proves the survivors'
  final artifact is byte-identical to a fault-free run in a fresh store.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Any

from repro import workloads as registry
from repro.pipeline.stages import Pipeline, Stage, StageContext
from repro.pipeline.store import JobStore

__all__ = ["build_drugdesign_pipeline", "named_pipeline", "run_pipeline_workload"]

#: Ligands per durable scoring job: coarse enough that the store round-
#: trip amortises, fine enough that the ranking has something to order.
_SCORE_CHUNK = 4


def _dd_generate(ctx: StageContext, params: dict[str, Any]) -> dict[str, Any]:
    from repro.drugdesign.ligands import generate_ligands, generate_protein

    n_ligands = int(params.get("ligands", 24))
    max_ligand = int(params.get("max_ligand", 6))
    ligands = generate_ligands(n_ligands=n_ligands, max_ligand=max_ligand,
                               seed=ctx.seed)
    protein = generate_protein(length=int(params.get("protein", 48)),
                               seed=ctx.seed + 1)
    return {"ligands": ligands, "protein": protein}


def _dd_score(ctx: StageContext, data: dict[str, Any]) -> dict[str, Any]:
    from repro.drugdesign.solvers import score_ligands

    protein = data["protein"]
    ligands = data["ligands"]
    chunks = [
        ligands[i : i + _SCORE_CHUNK]
        for i in range(0, len(ligands), _SCORE_CHUNK)
    ]
    results = ctx.fan_out(
        "score",
        [{"chunk": chunk, "protein": protein} for chunk in chunks],
        lambda item: [
            [ligand, int(score)]
            for ligand, score in zip(
                item["chunk"], score_ligands(item["chunk"], item["protein"])
            )
        ],
        # A longer ligand can reach a higher LCS score — the prior the
        # ranking spends first, so a stopped sweep has already scored
        # its most promising chunks.
        expected_score=lambda item: float(max(len(l) for l in item["chunk"])),
    )
    scores = [pair for chunk_scores in results for pair in chunk_scores]
    return {"scores": scores, "protein": protein}


def _dd_rank(ctx: StageContext, data: dict[str, Any]) -> dict[str, Any]:
    ranked = sorted(data["scores"], key=lambda pair: (-pair[1], pair[0]))
    max_score = ranked[0][1] if ranked else 0
    best = sorted(lig for lig, score in ranked if score == max_score)
    return {
        "ranked": ranked,
        "max_score": max_score,
        "best": best,
        "n_scored": len(ranked),
    }


def _dd_report(ctx: StageContext, data: dict[str, Any]) -> dict[str, Any]:
    top = data["ranked"][:5]
    lines = [
        f"max_score={data['max_score']}",
        "best=" + ",".join(data["best"]),
        f"ligands_scored={data['n_scored']}",
        "top5=" + ",".join(f"{lig}:{score}" for lig, score in top),
    ]
    return {
        "summary": (
            f"drugdesign pipeline: {data['n_scored']} ligands scored, "
            f"max_score={data['max_score']}"
        ),
        "lines": lines,
        "max_score": data["max_score"],
        "best": data["best"],
    }


def build_drugdesign_pipeline() -> Pipeline:
    """The Assignment-5 sweep as a durable four-stage pipeline."""
    return Pipeline("drugdesign", [
        Stage("generate", _dd_generate),
        Stage("score", _dd_score),
        Stage("rank", _dd_rank),
        Stage("report", _dd_report),
    ])


_PIPELINES = {
    "drugdesign": build_drugdesign_pipeline,
}


def named_pipeline(workload: str) -> Pipeline:
    """Build the pipeline registered under ``workload`` (KeyError else)."""
    return _PIPELINES[registry.normalize(workload)]()


def run_pipeline_workload(
    workload: str,
    store: JobStore,
    workers: int = 4,
    seed: int = 7,
    resume: bool = True,
    kill_after: str | None = None,
    params: dict[str, Any] | None = None,
):
    """Run one registered pipeline against ``store``; the uniform entry
    point behind the CLI and :func:`repro.workloads.run_job`."""
    entry = registry.get(workload)
    fn = registry.runner_for(entry, "pipeline")
    return fn(store, workers=workers, seed=seed, resume=resume,
              kill_after=kill_after, params=params)


def _pl_drugdesign(store: JobStore, workers: int = 4, seed: int = 7,
                   resume: bool = True, kill_after: str | None = None,
                   params: dict[str, Any] | None = None):
    return build_drugdesign_pipeline().run(
        store, seed=seed, workers=workers, params=params,
        resume=resume, kill_after=kill_after,
    )


registry.register("drugdesign", pipeline=_pl_drugdesign)


# -- the pipeline chaos scenario ---------------------------------------------


def _pipeline_plan(seed: int):
    from repro.faults.plan import FaultKind, FaultPlan, FaultRule

    return FaultPlan(name="pipeline", seed=seed, rules=(
        # Crash the 3rd mid-stage result commit (inside the score fan-out)…
        FaultRule("pipeline.store", FaultKind.CRASH, at=(2,),
                  where={"op": "complete"},
                  note="crash mid-stage: 3rd scoring-job commit"),
        # …and the 2nd checkpoint commit (the score→rank stage boundary).
        FaultRule("pipeline.store", FaultKind.CRASH, at=(1,),
                  where={"op": "checkpoint"},
                  note="crash at a stage boundary: score checkpoint"),
    ))


def _run_pipeline(injector, seed: int, threads: int) -> tuple[int, list, bool]:
    from repro.faults.injector import InjectedCrash

    workdir = tempfile.mkdtemp(prefix="repro-pipeline-chaos-")
    try:
        db = os.path.join(workdir, "chaos.db")
        pipeline = build_drugdesign_pipeline()
        detail: list[str] = []
        restarts = 0
        run = None
        while run is None:
            with JobStore(db) as store:
                try:
                    run = pipeline.run(store, seed=seed, workers=threads,
                                       resume=True)
                except InjectedCrash as exc:
                    restarts += 1
                    detail.append(
                        f"restart {restarts}: store crashed ({exc}); "
                        f"reopened and resumed"
                    )
                    if restarts > 8:
                        detail.append("giving up: too many restarts")
                        return restarts, detail, False
        # Fault-free reference in a fresh store (the crash rules fire at
        # fixed invocation indices, all consumed by the chaotic run).
        with JobStore(os.path.join(workdir, "reference.db")) as ref_store:
            reference = pipeline.run(ref_store, seed=seed, workers=threads,
                                     resume=False)
        ok = run.output == reference.output and restarts >= 1
        detail.append(
            f"converged after {restarts} crash-resume cycle(s); artifact "
            f"{'byte-identical to' if run.output == reference.output else 'DIFFERS from'} "
            f"the fault-free run ({run.summary})"
        )
        return restarts, detail, ok
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


registry.register("pipeline", chaos=_run_pipeline, chaos_plan=_pipeline_plan)
