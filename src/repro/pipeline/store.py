"""The durable job store: SQLite with WAL, leases, and checkpoints.

One file holds three tables:

- ``jobs`` — the durable work queue.  States move along
  ``pending → leased → done | failed`` (with ``pending → cancelled``
  and ``leased → pending`` for retry/reclaim); any other transition
  raises :class:`TransitionError`.  Enqueue is **idempotent**: a job's
  identity is the content-addressed fingerprint of its
  ``(run_id, stage, payload)`` (the same SHA-256 canonicalisation as
  :mod:`repro.sched.cache`), so re-submitting after a crash finds the
  existing row — and its result, if the job already finished.
- ``checkpoints`` — per-stage pipeline outputs keyed by
  ``(run_id, stage)``; what :class:`~repro.pipeline.stages.Pipeline`
  resumes from.
- ``callbacks`` — durable ``on_complete`` follow-ups the serve layer
  arms against a job key and claims exactly once at terminal state.
- ``completions`` — a durable terminal marker per parent key (state +
  finish time).  Serve jobs themselves live in memory, so after a
  restart the callbacks table alone cannot distinguish "parent still
  running" from "parent finished while the service was closing"; this
  marker is what lets :meth:`JobStore.stranded_callbacks` find armed
  specs whose parent already ended so a new incarnation can resubmit
  them instead of waiting for a completion that will never recur.

Durability and atomicity come from SQLite itself: WAL journaling, and
every mutation inside an explicit ``BEGIN IMMEDIATE`` transaction, so a
``SIGKILL`` at any instant leaves either the old state or the new one,
never a torn row.  **Leases** make worker death recoverable: claiming a
job stamps an owner and an expiry; :meth:`JobStore.reclaim_expired`
moves timed-out leases back to ``pending`` (attempts preserved), and
:meth:`JobStore.release_owner` lets a restarted worker fence its own
previous incarnation immediately.

Every write transaction is a ``pipeline.store`` fault site — an
injected crash aborts the transaction (rollback, then the exception
propagates), which is exactly how chaos tests exercise the
crash-mid-commit path without a real ``kill -9``.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Sequence
from contextlib import contextmanager

from repro.faults import hooks as faults
from repro.sched.cache import fingerprint
from repro.telemetry import instrument as telemetry

__all__ = [
    "JobRecord",
    "JobStore",
    "StoreError",
    "TransitionError",
    "PENDING",
    "LEASED",
    "DONE",
    "FAILED",
    "CANCELLED",
    "TERMINAL_STATES",
    "job_key",
]

PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job never leaves.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: The legal state machine; anything else is a :class:`TransitionError`.
_TRANSITIONS: dict[str, frozenset[str]] = {
    PENDING: frozenset({LEASED, CANCELLED}),
    LEASED: frozenset({DONE, FAILED, PENDING}),
    DONE: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
}

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id             INTEGER PRIMARY KEY AUTOINCREMENT,
    key            TEXT NOT NULL UNIQUE,
    run_id         TEXT NOT NULL DEFAULT '',
    stage          TEXT NOT NULL DEFAULT '',
    payload        TEXT NOT NULL DEFAULT '{}',
    expected_score REAL NOT NULL DEFAULT 0.0,
    state          TEXT NOT NULL DEFAULT 'pending',
    attempts       INTEGER NOT NULL DEFAULT 0,
    lease_owner    TEXT,
    lease_expires_s REAL,
    created_s      REAL NOT NULL,
    updated_s      REAL NOT NULL,
    result         TEXT,
    error          TEXT
);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs(state, run_id, stage);
CREATE TABLE IF NOT EXISTS checkpoints (
    run_id    TEXT NOT NULL,
    stage     TEXT NOT NULL,
    payload   TEXT NOT NULL,
    created_s REAL NOT NULL,
    PRIMARY KEY (run_id, stage)
);
CREATE TABLE IF NOT EXISTS callbacks (
    id         INTEGER PRIMARY KEY AUTOINCREMENT,
    parent_key TEXT NOT NULL,
    spec       TEXT NOT NULL,
    state      TEXT NOT NULL DEFAULT 'armed',
    created_s  REAL NOT NULL,
    fired_s    REAL
);
CREATE INDEX IF NOT EXISTS callbacks_by_parent ON callbacks(parent_key, state);
CREATE TABLE IF NOT EXISTS completions (
    parent_key TEXT PRIMARY KEY,
    state      TEXT NOT NULL,
    finished_s REAL NOT NULL
);
"""


class StoreError(RuntimeError):
    """A job-store operation could not be applied."""


class TransitionError(StoreError):
    """An illegal job state transition was requested."""


def _canonical_json(obj: Any) -> str:
    """Deterministic JSON — the byte identity checkpoints rely on."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def job_key(run_id: str, stage: str, payload: Any) -> str:
    """The content-addressed identity of a job (idempotent enqueue)."""
    return fingerprint("pipeline.job", run_id, stage, _canonical_json(payload))


@dataclass(frozen=True)
class JobRecord:
    """One durable job row, decoded."""

    job_id: int
    key: str
    run_id: str
    stage: str
    payload: Any
    expected_score: float
    state: str
    attempts: int
    lease_owner: str | None
    lease_expires_s: float | None
    created_s: float
    updated_s: float
    result: Any
    error: str | None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


def _decode(row: sqlite3.Row) -> JobRecord:
    return JobRecord(
        job_id=row["id"],
        key=row["key"],
        run_id=row["run_id"],
        stage=row["stage"],
        payload=json.loads(row["payload"]),
        expected_score=row["expected_score"],
        state=row["state"],
        attempts=row["attempts"],
        lease_owner=row["lease_owner"],
        lease_expires_s=row["lease_expires_s"],
        created_s=row["created_s"],
        updated_s=row["updated_s"],
        result=None if row["result"] is None else json.loads(row["result"]),
        error=row["error"],
    )


class JobStore:
    """Durable SQLite-backed job store (thread-safe, multi-process-safe).

    ``path`` may be a filesystem path or ``":memory:"`` (the mechanism
    without the durability — useful for tests and the default serve
    callback store).  ``clock`` is injectable so lease expiry is
    testable without real waiting.
    """

    def __init__(
        self,
        path: str,
        clock: Callable[[], float] = time.time,
        lease_s: float = 30.0,
        busy_timeout_s: float = 10.0,
    ) -> None:
        if lease_s <= 0:
            raise ValueError(f"lease_s must be > 0, got {lease_s}")
        self.path = path
        self.clock = clock
        self.lease_s = lease_s
        directory = os.path.dirname(os.path.abspath(path))
        if path != ":memory:" and directory:
            os.makedirs(directory, exist_ok=True)
        # One connection, explicit transactions, cross-thread use guarded
        # by our own lock (SQLite serialises cross-process access itself).
        self._conn = sqlite3.connect(
            path, timeout=busy_timeout_s, check_same_thread=False,
            isolation_level=None,
        )
        self._conn.row_factory = sqlite3.Row
        self._lock = threading.RLock()
        with self._lock:
            if path != ":memory:":
                self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)

    # -- plumbing ------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    @contextmanager
    def _write(self, op: str) -> Iterator[sqlite3.Connection]:
        """One atomic write transaction; also the ``pipeline.store``
        fault site.  An injected crash (or any error) rolls the whole
        transaction back before propagating — the store never commits a
        partial mutation."""
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                yield self._conn
                faults.fire("pipeline.store", key=op, op=op)
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def _now(self) -> float:
        return float(self.clock())

    # -- enqueue -------------------------------------------------------------

    def enqueue(
        self,
        run_id: str = "",
        stage: str = "",
        payload: Any = None,
        expected_score: float = 0.0,
        key: str | None = None,
    ) -> tuple[JobRecord, bool]:
        """Admit one job; see :meth:`enqueue_batch`."""
        return self.enqueue_batch([{
            "run_id": run_id, "stage": stage, "payload": payload,
            "expected_score": expected_score, "key": key,
        }])[0]

    def enqueue_batch(
        self, specs: Sequence[Mapping[str, Any]]
    ) -> list[tuple[JobRecord, bool]]:
        """Admit jobs idempotently in one transaction.

        Returns ``(record, created)`` per spec: a spec whose key already
        exists returns the **existing** row (whatever its state —
        including ``done`` with its stored result) and ``created=False``.
        That is what makes a re-submitted sweep resume instead of
        duplicate.
        """
        now = self._now()
        out: list[tuple[JobRecord, bool]] = []
        created = 0
        with self._write("enqueue") as conn:
            for spec in specs:
                payload = spec.get("payload")
                run_id = str(spec.get("run_id", ""))
                stage = str(spec.get("stage", ""))
                key = spec.get("key") or job_key(run_id, stage, payload)
                cursor = conn.execute(
                    "INSERT INTO jobs (key, run_id, stage, payload, "
                    "  expected_score, state, created_s, updated_s) "
                    "VALUES (?, ?, ?, ?, ?, 'pending', ?, ?) "
                    "ON CONFLICT(key) DO NOTHING",
                    (key, run_id, stage, _canonical_json(payload),
                     float(spec.get("expected_score", 0.0)), now, now),
                )
                row = conn.execute(
                    "SELECT * FROM jobs WHERE key = ?", (key,)
                ).fetchone()
                was_created = cursor.rowcount == 1
                created += was_created
                out.append((_decode(row), was_created))
        if created:
            telemetry.inc("pipeline.jobs.enqueued", created)
        return out

    # -- lookup --------------------------------------------------------------

    def get(self, job_id: int) -> JobRecord:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise KeyError(job_id)
        return _decode(row)

    def get_by_key(self, key: str) -> JobRecord:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE key = ?", (key,)
            ).fetchone()
        if row is None:
            raise KeyError(key)
        return _decode(row)

    def jobs(
        self,
        run_id: str | None = None,
        stage: str | None = None,
        state: str | None = None,
    ) -> list[JobRecord]:
        """Matching jobs in enqueue (id) order."""
        clauses, params = [], []
        for column, value in (("run_id", run_id), ("stage", stage),
                              ("state", state)):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        with self._lock:
            rows = self._conn.execute(
                f"SELECT * FROM jobs {where} ORDER BY id", params
            ).fetchall()
        return [_decode(row) for row in rows]

    def pending_jobs(
        self, run_id: str | None = None, stage: str | None = None
    ) -> list[JobRecord]:
        return self.jobs(run_id=run_id, stage=stage, state=PENDING)

    def counts(self, run_id: str | None = None) -> dict[str, int]:
        """``{state: count}`` over (optionally one run's) jobs."""
        where, params = ("WHERE run_id = ?", (run_id,)) if run_id is not None \
            else ("", ())
        with self._lock:
            rows = self._conn.execute(
                f"SELECT state, COUNT(*) AS n FROM jobs {where} "
                f"GROUP BY state ORDER BY state", params
            ).fetchall()
        return {row["state"]: row["n"] for row in rows}

    # -- the state machine ---------------------------------------------------

    def _transition_locked(
        self,
        conn: sqlite3.Connection,
        job_id: int,
        to_state: str,
        *,
        expect: str,
        sets: str = "",
        params: Sequence[Any] = (),
    ) -> None:
        """Apply one guarded transition or raise :class:`TransitionError`.

        The guard is in the ``UPDATE ... WHERE state = ?`` itself, so the
        check-and-set is a single atomic statement even with concurrent
        writers on other connections.
        """
        cursor = conn.execute(
            f"UPDATE jobs SET state = ?, updated_s = ?{sets} "
            f"WHERE id = ? AND state = ?",
            (to_state, self._now(), *params, job_id, expect),
        )
        if cursor.rowcount == 1:
            return
        row = conn.execute(
            "SELECT state FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise KeyError(job_id)
        raise TransitionError(
            f"job {job_id}: illegal transition {row['state']!r} -> "
            f"{to_state!r} (legal from {row['state']!r}: "
            f"{sorted(_TRANSITIONS.get(row['state'], ())) or 'nothing'})"
        )

    def lease(
        self,
        owner: str,
        job_ids: Sequence[int],
        lease_s: float | None = None,
    ) -> list[JobRecord]:
        """Atomically claim specific pending jobs for ``owner``.

        Returns the claimed records (attempts incremented, lease expiry
        stamped).  Jobs that are no longer pending — another worker got
        there first — are silently skipped: leasing races, it does not
        raise.
        """
        ttl = self.lease_s if lease_s is None else float(lease_s)
        now = self._now()
        claimed: list[JobRecord] = []
        with self._write("lease") as conn:
            for job_id in job_ids:
                cursor = conn.execute(
                    "UPDATE jobs SET state = 'leased', lease_owner = ?, "
                    "  lease_expires_s = ?, attempts = attempts + 1, "
                    "  updated_s = ? "
                    "WHERE id = ? AND state = 'pending'",
                    (owner, now + ttl, now, job_id),
                )
                if cursor.rowcount == 1:
                    row = conn.execute(
                        "SELECT * FROM jobs WHERE id = ?", (job_id,)
                    ).fetchone()
                    claimed.append(_decode(row))
        if claimed:
            telemetry.inc("pipeline.jobs.leased", len(claimed))
        return claimed

    def lease_next(
        self, owner: str, limit: int = 1, lease_s: float | None = None
    ) -> list[JobRecord]:
        """Claim up to ``limit`` pending jobs in plain enqueue order
        (the unranked path; benchmarks and simple consumers)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT id FROM jobs WHERE state = 'pending' "
                "ORDER BY id LIMIT ?", (limit,)
            ).fetchall()
        return self.lease(owner, [row["id"] for row in rows], lease_s)

    def renew_lease(
        self,
        owner: str,
        job_ids: Sequence[int],
        lease_s: float | None = None,
    ) -> list[int]:
        """Extend ``owner``'s still-held leases by a fresh TTL.

        The heartbeat half of the lease protocol: a live worker running
        a handler longer than ``lease_s`` renews periodically, so the
        TTL can be sized for *detecting death quickly* instead of for
        the slowest handler.  Only jobs still leased **by this owner**
        are touched — a job another worker already reclaimed (this
        worker was presumed dead) is left alone, and its absence from
        the returned ids is the signal the renewal lost the race.
        """
        ttl = self.lease_s if lease_s is None else float(lease_s)
        now = self._now()
        renewed: list[int] = []
        with self._write("renew") as conn:
            for job_id in job_ids:
                cursor = conn.execute(
                    "UPDATE jobs SET lease_expires_s = ?, updated_s = ? "
                    "WHERE id = ? AND state = 'leased' AND lease_owner = ?",
                    (now + ttl, now, job_id, owner),
                )
                if cursor.rowcount == 1:
                    renewed.append(job_id)
        if renewed:
            telemetry.inc("pipeline.leases.renewed", len(renewed))
        return renewed

    def complete(self, job_id: int, result: Any = None) -> JobRecord:
        """``leased → done`` with a JSON-safe result payload."""
        with self._write("complete") as conn:
            self._transition_locked(
                conn, job_id, DONE, expect=LEASED,
                sets=", result = ?, lease_owner = NULL, lease_expires_s = NULL",
                params=(_canonical_json(result),),
            )
        telemetry.inc("pipeline.jobs.completed")
        return self.get(job_id)

    def fail(
        self, job_id: int, error: str, retry: bool = False
    ) -> JobRecord:
        """``leased → failed`` — or back to ``pending`` with ``retry``
        (attempts are preserved, so callers can cap retry counts)."""
        to_state = PENDING if retry else FAILED
        with self._write("fail") as conn:
            self._transition_locked(
                conn, job_id, to_state, expect=LEASED,
                sets=", error = ?, lease_owner = NULL, lease_expires_s = NULL",
                params=(str(error),),
            )
        telemetry.inc("pipeline.jobs.retried" if retry
                      else "pipeline.jobs.failed")
        return self.get(job_id)

    def cancel(self, job_id: int) -> bool:
        """``pending → cancelled``; False if the job was already claimed
        or terminal (cancelling a racing job is not an error)."""
        with self._write("cancel") as conn:
            cursor = conn.execute(
                "UPDATE jobs SET state = 'cancelled', updated_s = ? "
                "WHERE id = ? AND state = 'pending'",
                (self._now(), job_id),
            )
            ok = cursor.rowcount == 1
        if ok:
            telemetry.inc("pipeline.jobs.cancelled")
        return ok

    def reclaim_expired(self, now: float | None = None) -> list[int]:
        """Move every expired lease back to ``pending``.

        The crash-recovery path: a worker that died mid-job stops
        renewing its lease; once ``lease_expires_s`` passes, any other
        worker's reclaim sweep re-arms the job (attempts preserved).
        Returns the reclaimed job ids.
        """
        stamp = self._now() if now is None else float(now)
        with self._write("reclaim") as conn:
            rows = conn.execute(
                "SELECT id FROM jobs WHERE state = 'leased' "
                "AND lease_expires_s < ? ORDER BY id", (stamp,)
            ).fetchall()
            ids = [row["id"] for row in rows]
            if ids:
                conn.execute(
                    f"UPDATE jobs SET state = 'pending', lease_owner = NULL, "
                    f"  lease_expires_s = NULL, updated_s = ? "
                    f"WHERE id IN ({','.join('?' * len(ids))}) "
                    f"AND state = 'leased'",
                    (stamp, *ids),
                )
        if ids:
            telemetry.inc("pipeline.jobs.reclaimed", len(ids))
        return ids

    def release_owner(self, owner: str) -> list[int]:
        """Immediately re-arm every job leased by ``owner``.

        Restart fencing: a worker that just started cannot be running
        anything, so any lease under its own name belongs to a dead
        previous incarnation — reclaim without waiting out the TTL.
        """
        with self._write("release") as conn:
            rows = conn.execute(
                "SELECT id FROM jobs WHERE state = 'leased' "
                "AND lease_owner = ? ORDER BY id", (owner,)
            ).fetchall()
            ids = [row["id"] for row in rows]
            if ids:
                conn.execute(
                    f"UPDATE jobs SET state = 'pending', lease_owner = NULL, "
                    f"  lease_expires_s = NULL, updated_s = ? "
                    f"WHERE id IN ({','.join('?' * len(ids))})",
                    (self._now(), *ids),
                )
        if ids:
            telemetry.inc("pipeline.jobs.reclaimed", len(ids))
        return ids

    # -- checkpoints ---------------------------------------------------------

    def checkpoint_put(self, run_id: str, stage: str, payload: Any) -> None:
        """Store one stage's output (idempotent overwrite)."""
        with self._write("checkpoint") as conn:
            conn.execute(
                "INSERT INTO checkpoints (run_id, stage, payload, created_s) "
                "VALUES (?, ?, ?, ?) "
                "ON CONFLICT(run_id, stage) DO UPDATE SET "
                "  payload = excluded.payload, created_s = excluded.created_s",
                (run_id, stage, _canonical_json(payload), self._now()),
            )
        telemetry.inc("pipeline.checkpoints.written")

    def checkpoint_get(self, run_id: str, stage: str) -> Any | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM checkpoints WHERE run_id = ? AND stage = ?",
                (run_id, stage),
            ).fetchone()
        return None if row is None else json.loads(row["payload"])

    def checkpoint_stages(self, run_id: str) -> list[str]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT stage FROM checkpoints WHERE run_id = ? "
                "ORDER BY created_s, stage", (run_id,)
            ).fetchall()
        return [row["stage"] for row in rows]

    def clear_run(self, run_id: str) -> int:
        """Drop a run's checkpoints and jobs (a fresh, non-resumed start)."""
        with self._write("clear") as conn:
            removed = conn.execute(
                "DELETE FROM checkpoints WHERE run_id = ?", (run_id,)
            ).rowcount
            removed += conn.execute(
                "DELETE FROM jobs WHERE run_id = ?", (run_id,)
            ).rowcount
        return removed

    # -- completion callbacks ------------------------------------------------

    def add_callback(self, parent_key: str, spec: Mapping[str, Any]) -> int:
        """Arm a durable follow-up against ``parent_key``; returns its id."""
        with self._write("callback") as conn:
            cursor = conn.execute(
                "INSERT INTO callbacks (parent_key, spec, state, created_s) "
                "VALUES (?, ?, 'armed', ?)",
                (parent_key, _canonical_json(dict(spec)), self._now()),
            )
        telemetry.inc("pipeline.callbacks.armed")
        return int(cursor.lastrowid)

    def claim_callbacks(self, parent_key: str) -> list[dict[str, Any]]:
        """Atomically fire every armed callback for ``parent_key``.

        Each callback is claimed exactly once (armed → fired in the same
        transaction that reads it), so a parent completing twice — e.g.
        a cached resubmit — cannot double-enqueue the follow-up.
        """
        now = self._now()
        with self._write("callback") as conn:
            rows = conn.execute(
                "SELECT id, spec FROM callbacks "
                "WHERE parent_key = ? AND state = 'armed' ORDER BY id",
                (parent_key,),
            ).fetchall()
            ids = [row["id"] for row in rows]
            if ids:
                conn.execute(
                    f"UPDATE callbacks SET state = 'fired', fired_s = ? "
                    f"WHERE id IN ({','.join('?' * len(ids))})",
                    (now, *ids),
                )
        if ids:
            telemetry.inc("pipeline.callbacks.fired", len(ids))
        return [json.loads(row["spec"]) for row in rows]

    def armed_callbacks(self, parent_key: str | None = None) -> int:
        where, params = ("AND parent_key = ?", (parent_key,)) \
            if parent_key is not None else ("", ())
        with self._lock:
            row = self._conn.execute(
                f"SELECT COUNT(*) AS n FROM callbacks "
                f"WHERE state = 'armed' {where}", params
            ).fetchone()
        return int(row["n"])

    # -- terminal markers (restart-safe callback delivery) -------------------

    def mark_terminal(self, parent_key: str, state: str) -> None:
        """Durably record that ``parent_key`` reached a terminal state.

        Idempotent upsert; the serve layer writes it at every terminal
        transition (done/failed/cancelled), including during shutdown
        drain — which is exactly the window that strands callbacks.
        """
        if state not in TERMINAL_STATES:
            raise ValueError(f"not a terminal state: {state!r}")
        with self._write("terminal") as conn:
            conn.execute(
                "INSERT INTO completions (parent_key, state, finished_s) "
                "VALUES (?, ?, ?) "
                "ON CONFLICT(parent_key) DO UPDATE SET "
                "  state = excluded.state, finished_s = excluded.finished_s",
                (parent_key, state, self._now()),
            )

    def terminal_state(self, parent_key: str) -> str | None:
        """The recorded terminal state of ``parent_key``, or ``None``."""
        with self._lock:
            row = self._conn.execute(
                "SELECT state FROM completions WHERE parent_key = ?",
                (parent_key,),
            ).fetchone()
        return None if row is None else str(row["state"])

    def stranded_callbacks(self) -> list[tuple[str, str]]:
        """Parents with armed callbacks that already ended.

        Returns ``(parent_key, terminal_state)`` pairs, one per parent,
        in key order.  These specs will never fire on their own — the
        completion they wait for already happened — so a restarted
        service resubmits them (claiming each via
        :meth:`claim_callbacks`, which keeps exactly-once).
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT DISTINCT c.parent_key AS parent_key, "
                "       t.state AS state "
                "FROM callbacks c JOIN completions t "
                "  ON t.parent_key = c.parent_key "
                "WHERE c.state = 'armed' ORDER BY c.parent_key"
            ).fetchall()
        return [(str(row["parent_key"]), str(row["state"])) for row in rows]
