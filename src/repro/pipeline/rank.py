"""Risk-ranked scheduling over the durable store.

Which pending job should run next?  The k8s-auto-fix pipeline answers
with a scored ordering — acceptance probability, aging, exploration —
and this module builds the same shape over :class:`JobStore`:

- **expected score** — the caller's prior on how much the job is worth
  (for the drug-design sweep: a proxy for the best LCS score a chunk
  can reach), so promising candidates run first and a stopped sweep has
  already spent its budget on the best prospects;
- **staleness** — pending age feeds the priority linearly, so low-prior
  work cannot starve forever (aging);
- **exploration bonus** — a *seeded* hash of the job key in ``[0, 1)``,
  scaled by a weight: a deterministic stand-in for epsilon-greedy
  exploration that keeps the ranking a pure function of (seed, jobs)
  and therefore replayable.

:class:`StoreScheduler` is the pump between the durable store and the
in-memory :class:`~repro.sched.executor.WorkStealingExecutor`: reclaim
expired leases, rank the pending set, lease a batch in rank order,
dispatch it through the executor, write results/failures back — until
the store runs dry.  Durable state only ever lives in the store (the
DESIGN rule); the executor remains the ephemeral dispatch layer.
"""

from __future__ import annotations

import contextlib
import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.faults.injector import InjectedCrash
from repro.pipeline.store import JobRecord, JobStore
from repro.telemetry import instrument as telemetry

__all__ = ["RankWeights", "RankingPolicy", "StoreScheduler", "exploration_bonus"]


def exploration_bonus(seed: int, key: str) -> float:
    """A seeded, PYTHONHASHSEED-proof draw in ``[0, 1)`` for ``key``
    (the same canonical-hash discipline as :mod:`repro.faults.plan`)."""
    blob = f"{seed}:explore:{key}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") / 2**64


@dataclass(frozen=True)
class RankWeights:
    """Linear weights of the ranking score (all contributions add)."""

    expected_score: float = 1.0      # per unit of the caller's prior
    staleness_per_s: float = 0.02    # aging: priority per pending second
    exploration: float = 0.5         # scale of the seeded [0,1) bonus


class RankingPolicy:
    """Deterministic priority ordering over pending jobs."""

    def __init__(self, seed: int = 0, weights: RankWeights | None = None,
                 clock: Callable[[], float] = time.time) -> None:
        self.seed = seed
        self.weights = weights if weights is not None else RankWeights()
        self.clock = clock

    def priority(self, job: JobRecord, now: float | None = None) -> float:
        """The job's rank score at ``now`` (higher runs first)."""
        stamp = self.clock() if now is None else now
        w = self.weights
        age = max(0.0, stamp - job.created_s)
        return (
            w.expected_score * job.expected_score
            + w.staleness_per_s * age
            + w.exploration * exploration_bonus(self.seed, job.key)
        )

    def rank(self, jobs: list[JobRecord],
             now: float | None = None) -> list[JobRecord]:
        """Jobs in dispatch order: score-descending, key-ascending ties —
        a total order, so the ranking replays across processes."""
        stamp = self.clock() if now is None else now
        return sorted(jobs, key=lambda j: (-self.priority(j, stamp), j.key))


class StoreScheduler:
    """Drains a durable store through a work-stealing executor."""

    def __init__(
        self,
        store: JobStore,
        policy: RankingPolicy | None = None,
        owner: str = "worker",
        lease_s: float | None = None,
        batch_size: int = 32,
        max_attempts: int = 3,
        wait_s: float = 0.05,
        max_wait_rounds: int = 1200,
        speculate: bool = False,
        spec_k: float = 2.0,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.store = store
        self.policy = policy if policy is not None else RankingPolicy()
        self.owner = owner
        self.lease_s = lease_s
        self.batch_size = batch_size
        self.max_attempts = max_attempts
        self.wait_s = wait_s
        self.max_wait_rounds = max_wait_rounds
        self.speculate = speculate
        self.spec_k = spec_k

    def drain(
        self,
        executor: Any,
        handler: Callable[[JobRecord], Any],
        run_id: str | None = None,
        stage: str | None = None,
    ) -> dict[str, int]:
        """Run every matching job to a terminal state; returns counters.

        Per round: reclaim expired leases, rank the pending set, lease
        the top ``batch_size`` in rank order, dispatch the batch through
        ``executor.map`` (handler exceptions become ``failed`` rows,
        retried while attempts remain), repeat.  When pending is empty
        but another live worker still holds leases, the drain waits for
        those jobs to finish or expire instead of returning early.

        On entry any lease held under *this scheduler's own owner name*
        is released immediately (restart fencing): a scheduler that just
        started cannot be running anything, so such leases belong to a
        dead previous incarnation.

        While a batch runs, a background heartbeat renews this owner's
        leases every ``lease_s / 3`` seconds, so ``lease_s`` may be much
        shorter than the longest handler: a crashed worker's jobs are
        reclaimed after one short TTL, while a *live* worker's jobs keep
        their lease for as long as the handler actually runs — no other
        worker can reclaim mid-flight work and run it twice.

        With ``speculate=True`` a straggler policy
        (:class:`~repro.sched.spec.SpecPolicy` with ``k=spec_k``) is
        installed on ``executor`` before the first batch: a job stuck
        behind a slow worker gets a backup copy and the first completion
        wins.  Handlers must be pure/idempotent (the same contract
        resumable stages already demand) — exactly one result per job is
        committed to the store either way.
        """
        if self.speculate and hasattr(executor, "speculate"):
            from repro.sched.spec import SpecPolicy

            if getattr(executor, "spec_engine", None) is None:
                executor.speculate(SpecPolicy(k=self.spec_k))
        stats = {"rounds": 0, "leased": 0, "completed": 0, "failed": 0,
                 "retried": 0, "reclaimed": 0, "waits": 0, "renewed": 0}
        stats["reclaimed"] += len(self.store.release_owner(self.owner))
        waits = 0
        with telemetry.span("pipeline.drain", category="pipeline",
                            owner=self.owner, stage=stage or ""):
            while True:
                stats["reclaimed"] += len(self.store.reclaim_expired())
                pending = self.store.pending_jobs(run_id=run_id, stage=stage)
                if not pending:
                    others = [
                        job for job in self.store.jobs(
                            run_id=run_id, stage=stage, state="leased")
                    ]
                    if not others:
                        return stats
                    # Another worker on this store holds live leases;
                    # wait for completion or expiry (bounded).
                    waits += 1
                    stats["waits"] += 1
                    if waits > self.max_wait_rounds:
                        raise TimeoutError(
                            f"drain stalled: {len(others)} job(s) leased by "
                            f"other workers never finished or expired"
                        )
                    time.sleep(self.wait_s)
                    continue
                waits = 0
                stats["rounds"] += 1
                ranked = self.policy.rank(pending)
                batch = self.store.lease(
                    self.owner, [job.job_id for job in ranked[:self.batch_size]],
                    self.lease_s,
                )
                if not batch:
                    continue                    # lost every race this round
                stats["leased"] += len(batch)
                with self._heartbeat([job.job_id for job in batch], stats):
                    results = executor.map(
                        [lambda job=job: self._run_one(handler, job)
                         for job in batch],
                        name="pipeline.job",
                    )
                for job, (tag, value) in zip(batch, results):
                    if tag == "ok":
                        self.store.complete(job.job_id, value)
                        stats["completed"] += 1
                    else:
                        retry = job.attempts < self.max_attempts
                        self.store.fail(job.job_id, value, retry=retry)
                        stats["retried" if retry else "failed"] += 1

    @contextlib.contextmanager
    def _heartbeat(self, job_ids: list[int],
                   stats: dict[str, int]) -> Iterator[None]:
        """Renew this owner's leases in the background while a batch runs.

        Fires every ``lease_s / 3`` — two missed beats of margin before
        the lease actually expires.  The renewal UPDATE is fenced on
        ``state = 'leased' AND lease_owner = ?``, so a heartbeat that
        races a completed (or reclaimed) job is a no-op, never a
        resurrection.  With ``lease_s=None`` (the store default TTL
        still applies) the cadence falls back to a third of the store's
        own default.
        """
        ttl = self.lease_s if self.lease_s is not None else self.store.lease_s
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(ttl / 3.0):
                try:
                    renewed = self.store.renew_lease(
                        self.owner, job_ids, self.lease_s
                    )
                except Exception:  # noqa: BLE001 - next beat retries
                    continue
                with lock:
                    counts["renewed"] += len(renewed)

        lock = threading.Lock()
        counts = {"renewed": 0}
        thread = threading.Thread(
            target=beat, name=f"lease-heartbeat-{self.owner}", daemon=True
        )
        thread.start()
        try:
            yield
        finally:
            stop.set()
            thread.join()
            stats["renewed"] += counts["renewed"]

    @staticmethod
    def _run_one(handler: Callable[[JobRecord], Any],
                 job: JobRecord) -> tuple[str, Any]:
        """Tag the outcome instead of raising: a failed *workload* is a
        stored result, not a scheduler fault.  Injected crashes pass
        through untouched — the executor's own ``sched.task`` retry
        machinery (and the chaos scenarios) own that path."""
        try:
            return "ok", handler(job)
        except InjectedCrash:
            raise
        except Exception as exc:  # noqa: BLE001 - recorded on the job row
            return "err", repr(exc)
