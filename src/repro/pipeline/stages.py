"""Resumable multi-stage pipelines over the durable store.

A :class:`Pipeline` is an ordered list of named stages; each stage's
output is written to the store as a checkpoint (one atomic SQLite
transaction) before the next stage starts.  A killed run — ``SIGKILL``
at any stage boundary, a crashed worker mid-stage, a pulled power cord —
restarts with ``resume=True`` at the first stage whose checkpoint is
missing, and under a fixed seed the final artifact is **byte-identical**
to an uninterrupted run.  Two properties carry that guarantee:

- every stage output is canonicalised through a JSON round-trip before
  it is either checkpointed *or* handed to the next stage, so a resumed
  stage sees exactly the bytes an uninterrupted one did;
- fan-out work inside a stage (:meth:`StageContext.fan_out`) is durable
  too: one idempotent store job per item, drained through the ranking
  scheduler — a crash mid-stage resumes with the already-completed
  items' results read straight from the store, and only the remainder
  re-executes (deterministic handlers make the union identical).

``kill_after=<stage>`` is the crash hook the chaos-resume tests and the
CI smoke step use: the process ``SIGKILL``\\ s *itself* immediately after
that stage's checkpoint commits — a real, unhandleable death at the
exact stage boundary.
"""

from __future__ import annotations

import json
import os
import signal
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.pipeline.rank import RankingPolicy, StoreScheduler
from repro.pipeline.store import JobStore
from repro.telemetry import instrument as telemetry

__all__ = ["Stage", "StageContext", "Pipeline", "PipelineError", "PipelineRun"]


class PipelineError(RuntimeError):
    """A pipeline could not run a stage to completion."""


def _roundtrip(obj: Any) -> Any:
    """Canonicalise through JSON so live and resumed data are identical."""
    try:
        return json.loads(json.dumps(obj, sort_keys=True))
    except (TypeError, ValueError) as exc:
        raise PipelineError(f"stage output is not JSON-safe: {exc}") from exc


@dataclass(frozen=True)
class Stage:
    """One named step: ``fn(ctx, data) -> data`` (JSON-safe in and out)."""

    name: str
    fn: Callable[["StageContext", Any], Any]


@dataclass
class StageContext:
    """What a running stage sees: the store, the run identity, and the
    durable fan-out helper."""

    store: JobStore
    run_id: str
    seed: int
    workers: int
    params: dict[str, Any]
    stats: dict[str, int] = field(default_factory=dict)

    def _executor(self):
        """A fresh deterministic executor per fan-out: the dispatch
        schedule is a pure function of (workload, workers, seed)."""
        from repro.sched.executor import WorkStealingExecutor

        return WorkStealingExecutor(
            n_workers=self.workers, seed=self.seed, deterministic=True,
        )

    def fan_out(
        self,
        stage: str,
        items: Sequence[Any],
        handler: Callable[[Any], Any],
        expected_score: Callable[[Any], float] | None = None,
    ) -> list[Any]:
        """Run ``handler(item)`` durably for every item; results in
        item order.

        One store job per item (idempotent — a resumed stage finds the
        finished ones already ``done`` and only re-runs the remainder),
        ranked by ``expected_score`` + staleness + the seeded exploration
        bonus, dispatched through a deterministic work-stealing executor.
        """
        specs = [{
            "run_id": self.run_id,
            "stage": stage,
            "payload": {"index": index, "item": item},
            "expected_score": (
                float(expected_score(item)) if expected_score else 0.0
            ),
        } for index, item in enumerate(items)]
        records = self.store.enqueue_batch(specs)
        resumed_done = sum(
            1 for record, created in records if record.state == "done"
        )
        scheduler = StoreScheduler(
            self.store,
            policy=RankingPolicy(seed=self.seed),
            owner=f"{self.run_id}:{stage}",
        )
        drain_stats = scheduler.drain(
            self._executor(),
            lambda job: handler(job.payload["item"]),
            run_id=self.run_id, stage=stage,
        )
        for key, value in drain_stats.items():
            self.stats[key] = self.stats.get(key, 0) + value
        self.stats["jobs"] = self.stats.get("jobs", 0) + len(records)
        self.stats["resumed_done"] = (
            self.stats.get("resumed_done", 0) + resumed_done
        )
        out: list[Any] = []
        for record, _created in records:
            final = self.store.get_by_key(record.key)
            if final.state != "done":
                raise PipelineError(
                    f"fan-out job {final.job_id} ({stage}) ended "
                    f"{final.state!r}: {final.error}"
                )
            out.append(final.result)
        return out


@dataclass
class PipelineRun:
    """The outcome of one (possibly resumed) pipeline run."""

    pipeline: str
    run_id: str
    seed: int
    workers: int
    output: Any                               # final stage's checkpoint
    stage_status: list[tuple[str, str]]       # (name, "ran" | "resumed")
    stats: dict[str, int]

    @property
    def summary(self) -> str:
        if isinstance(self.output, Mapping) and "summary" in self.output:
            return str(self.output["summary"])
        return (f"pipeline {self.pipeline}: {len(self.stage_status)} "
                f"stage(s) complete")

    @property
    def output_lines(self) -> list[str]:
        if isinstance(self.output, Mapping) and "lines" in self.output:
            return [str(line) for line in self.output["lines"]]
        return [json.dumps(self.output, sort_keys=True)]

    @property
    def resumed_stages(self) -> int:
        return sum(1 for _name, status in self.stage_status
                   if status == "resumed")

    def render(self) -> str:
        """Deterministic report (timings live in telemetry, not here)."""
        lines = [
            f"pipeline {self.pipeline!r} run={self.run_id} seed={self.seed} "
            f"workers={self.workers}",
        ]
        for name, status in self.stage_status:
            lines.append(f"  stage {name}: {status}")
        lines.append(f"  {self.summary}")
        lines.append("result:")
        lines.extend(f"  {line}" for line in self.output_lines)
        return "\n".join(lines)


class Pipeline:
    """An ordered, named, resumable sequence of stages."""

    def __init__(self, name: str, stages: Sequence[Stage]) -> None:
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        seen: set[str] = set()
        for stage in stages:
            if stage.name in seen:
                raise ValueError(f"duplicate stage name {stage.name!r}")
            seen.add(stage.name)
        self.name = name
        self.stages = tuple(stages)

    def stage_names(self) -> tuple[str, ...]:
        return tuple(stage.name for stage in self.stages)

    def default_run_id(self, seed: int, params: Mapping[str, Any]) -> str:
        """Deterministic run identity: same pipeline + seed + params →
        same run, which is what lets ``--resume`` find its checkpoints."""
        from repro.sched.cache import fingerprint

        return f"{self.name}-s{seed}-{fingerprint(self.name, seed, dict(params))[:12]}"

    def run(
        self,
        store: JobStore,
        seed: int = 7,
        workers: int = 4,
        params: Mapping[str, Any] | None = None,
        run_id: str | None = None,
        resume: bool = True,
        kill_after: str | None = None,
    ) -> PipelineRun:
        """Run (or resume) the pipeline to completion.

        With ``resume=False`` the run's previous checkpoints and jobs
        are cleared first — a guaranteed-fresh start.  ``kill_after``
        SIGKILLs the process right after that stage's checkpoint commits
        (the crash/resume test hook).
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        clean_params = dict(params or {})
        rid = run_id or self.default_run_id(seed, clean_params)
        if kill_after is not None and kill_after not in self.stage_names():
            raise ValueError(
                f"kill_after names unknown stage {kill_after!r} "
                f"(stages: {', '.join(self.stage_names())})"
            )
        if not resume:
            store.clear_run(rid)
        ctx = StageContext(store=store, run_id=rid, seed=seed,
                           workers=workers, params=clean_params)
        status: list[tuple[str, str]] = []
        data: Any = _roundtrip(clean_params)
        with telemetry.span("pipeline.run", category="pipeline",
                            pipeline=self.name, run_id=rid, seed=seed,
                            workers=workers):
            for stage in self.stages:
                checkpoint = store.checkpoint_get(rid, stage.name) \
                    if resume else None
                if checkpoint is not None:
                    data = checkpoint
                    status.append((stage.name, "resumed"))
                    telemetry.inc("pipeline.stages.resumed")
                    continue
                with telemetry.span("pipeline.stage", category="pipeline",
                                    pipeline=self.name, stage=stage.name):
                    data = _roundtrip(stage.fn(ctx, data))
                store.checkpoint_put(rid, stage.name, data)
                status.append((stage.name, "ran"))
                telemetry.inc("pipeline.stages.ran")
                if stage.name == kill_after:
                    os.kill(os.getpid(), signal.SIGKILL)
        return PipelineRun(
            pipeline=self.name, run_id=rid, seed=seed, workers=workers,
            output=data, stage_status=status, stats=dict(ctx.stats),
        )
