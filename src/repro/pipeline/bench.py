"""The durable-store benchmark behind ``python -m repro bench pipeline``.

Three measurements against a real on-disk SQLite store (WAL, fsync —
the configuration every pipeline run uses, not ``:memory:``):

- **enqueue** — idempotent batched admission throughput (jobs/sec
  through :meth:`JobStore.enqueue_batch`);
- **lease/complete** — claim-and-finish throughput: ``lease_next`` a
  batch, ``complete`` each job, repeat until drained — the store-side
  cost floor under every pipeline fan-out;
- **resume overhead** — the drug-design pipeline cold (all four stages
  execute) vs resumed over the same store (all four checkpoints replay),
  plus the byte-identity check between the two outputs.

Results go to ``BENCH_pipeline.json``; ``ok`` is true when every job
reached ``done``, the resumed run was byte-identical to the cold run,
and the resume cost less than the cold run — the CI smoke gate.
Absolute throughput is machine- (and fsync-) dependent; the cold/resume
ratio and the identity bit are the point.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from typing import Any

from repro.pipeline.store import JobStore
from repro.pipeline.workloads import run_pipeline_workload

__all__ = ["run_pipeline_bench", "render_point"]

_LEASE_BATCH = 32


def _bench_enqueue(store: JobStore, n_jobs: int) -> dict[str, Any]:
    specs = [{
        "run_id": "bench-enqueue",
        "stage": "work",
        "payload": {"index": index},
        "expected_score": float(index % 7),
    } for index in range(n_jobs)]
    started = time.perf_counter()
    records = store.enqueue_batch(specs)
    elapsed = time.perf_counter() - started
    created = sum(1 for _record, was_created in records if was_created)
    return {
        "jobs": n_jobs,
        "created": created,
        "wall_s": elapsed,
        "jobs_per_s": n_jobs / elapsed if elapsed > 0 else 0.0,
    }


def _bench_lease_complete(store: JobStore) -> dict[str, Any]:
    completed = 0
    started = time.perf_counter()
    while True:
        batch = store.lease_next("bench-worker", limit=_LEASE_BATCH)
        if not batch:
            break
        for job in batch:
            store.complete(job.job_id, {"ok": True})
            completed += 1
    elapsed = time.perf_counter() - started
    return {
        "jobs": completed,
        "wall_s": elapsed,
        "jobs_per_s": completed / elapsed if elapsed > 0 else 0.0,
    }


def run_pipeline_bench(
    quick: bool = False,
    out_path: str | None = "BENCH_pipeline.json",
    workers: int = 4,
    seed: int = 7,
) -> dict[str, Any]:
    """Run the store + resume benchmark; write and return the point."""
    n_jobs = 200 if quick else 2000
    params = {"ligands": 16 if quick else 48}
    workdir = tempfile.mkdtemp(prefix="repro-pipeline-bench-")
    point: dict[str, Any] = {
        "bench": "pipeline",
        "quick": quick,
        "workers": workers,
        "seed": seed,
    }
    try:
        with JobStore(os.path.join(workdir, "throughput.db")) as store:
            enqueue = _bench_enqueue(store, n_jobs)
            drain = _bench_lease_complete(store)
            counts = store.counts(run_id="bench-enqueue")

        with JobStore(os.path.join(workdir, "resume.db")) as store:
            cold_started = time.perf_counter()
            cold = run_pipeline_workload(
                "drugdesign", store, workers=workers, seed=seed,
                resume=False, params=params,
            )
            cold_s = time.perf_counter() - cold_started
        with JobStore(os.path.join(workdir, "resume.db")) as store:
            resumed_started = time.perf_counter()
            resumed = run_pipeline_workload(
                "drugdesign", store, workers=workers, seed=seed,
                resume=True, params=params,
            )
            resumed_s = time.perf_counter() - resumed_started
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    point.update({f"enqueue_{key}": value for key, value in enqueue.items()})
    point.update({f"drain_{key}": value for key, value in drain.items()})
    point.update({
        "store_done": counts.get("done", 0),
        "cold_s": cold_s,
        "resumed_s": resumed_s,
        "resume_speedup": cold_s / resumed_s if resumed_s > 0 else 0.0,
        "resumed_stages": resumed.resumed_stages,
        "byte_identical": cold.output == resumed.output,
    })
    for key, value in list(point.items()):
        if isinstance(value, float):
            point[key] = round(value, 6)
    point["gate_applied"] = True       # durability gates run on any core count
    point["ok"] = bool(
        point["enqueue_created"] == point["enqueue_jobs"]
        and point["drain_jobs"] == point["enqueue_jobs"]
        and point["store_done"] == point["enqueue_jobs"]
        and point["byte_identical"]
        and point["resumed_stages"] == 4
        and point["resumed_s"] <= point["cold_s"]
    )
    point["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(point, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return point


def render_point(point: dict[str, Any]) -> str:
    """The benchmark point as the aligned table the CLI prints."""
    lines = [
        f"pipeline bench (quick={point['quick']}): "
        f"{point['enqueue_jobs']} store jobs, {point['workers']} workers, "
        f"ok={point['ok']}"
    ]
    lines.append(
        f"  enqueue        {point['enqueue_jobs_per_s']:9.1f} jobs/s  "
        f"({point['enqueue_created']}/{point['enqueue_jobs']} created)"
    )
    lines.append(
        f"  lease+complete {point['drain_jobs_per_s']:9.1f} jobs/s  "
        f"({point['drain_jobs']} drained, {point['store_done']} done)"
    )
    lines.append(
        f"  resume         cold {point['cold_s'] * 1e3:8.1f} ms   resumed "
        f"{point['resumed_s'] * 1e3:8.1f} ms   "
        f"({point['resume_speedup']:.1f}x, "
        f"{point['resumed_stages']} stages replayed, "
        f"byte_identical={point['byte_identical']})"
    )
    return "\n".join(lines)
