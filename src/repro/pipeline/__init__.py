"""``repro.pipeline`` — the durability layer under every other substrate.

Everything the repo schedules elsewhere — drug-design sweeps, MapReduce
phases, serve jobs — lives in an in-memory
:class:`~repro.sched.queue.JobQueue` and dies with the process.  This
package makes long-running multi-stage work *durable*:

- :mod:`repro.pipeline.store` — a SQLite-backed job store (WAL mode,
  atomic state transitions, lease expiry so a crashed worker's jobs are
  reclaimed, idempotent enqueue keyed by the content-addressed
  fingerprint from :mod:`repro.sched.cache`);
- :mod:`repro.pipeline.stages` — resumable multi-stage pipelines whose
  per-stage outputs checkpoint to the store, so a killed run restarts at
  the first incomplete stage and converges byte-identically to an
  uninterrupted seeded run;
- :mod:`repro.pipeline.rank` — a ranking scheduler that orders pending
  work by expected score, staleness, and a seeded exploration bonus,
  then feeds the existing :class:`~repro.sched.WorkStealingExecutor`
  for actual dispatch.

The DESIGN rule: **all durable state goes through the pipeline store**;
the in-memory queues remain for ephemeral dispatch only.  Every store
write is a ``pipeline.store`` fault site, so :mod:`repro.faults` can
chaos-test the crash/resume path (``python -m repro chaos pipeline``).
"""

from __future__ import annotations

import os
import tempfile

from repro.pipeline.rank import RankingPolicy, RankWeights, StoreScheduler
from repro.pipeline.stages import Pipeline, PipelineError, PipelineRun, Stage
from repro.pipeline.store import JobRecord, JobStore, TransitionError

__all__ = [
    "JobRecord",
    "JobStore",
    "Pipeline",
    "PipelineError",
    "PipelineRun",
    "RankWeights",
    "RankingPolicy",
    "Stage",
    "StoreScheduler",
    "TransitionError",
    "resolve_db",
    "set_default_db",
]

#: Process-wide default store path (set by ``repro serve --pipeline-db``)
#: so jobs submitted through the service land in the operator's store.
_DEFAULT_DB: str | None = None


def set_default_db(path: str | None) -> None:
    """Set (or clear) the process-wide default job-store path."""
    global _DEFAULT_DB
    _DEFAULT_DB = path


def resolve_db(explicit: str | None = None) -> str:
    """Resolve a job-store path: explicit argument > :func:`set_default_db`
    > ``REPRO_PIPELINE_DB`` > a stable per-user path under the temp dir
    (stable so that two invocations share their durable state)."""
    if explicit:
        return explicit
    if _DEFAULT_DB:
        return _DEFAULT_DB
    env = os.environ.get("REPRO_PIPELINE_DB", "").strip()
    if env:
        return env
    return os.path.join(tempfile.gettempdir(), "repro_pipeline.db")
