"""Beyerlein composite score.

The survey's scoring scheme (Beyerlein et al. 2005, adopted by the paper)
computes, for each element (e.g. Teamwork), a *Composite Score* defined as
"averaging the 'definition' and the overall performance average of
individual components":

    composite = (definition_score + mean(component_scores)) / 2

The paper motivates this as combining a *global* judgement (the definition
item) with a *focused* one (the component items).  Tables 5 and 6 rank the
seven elements by this score.
"""

from __future__ import annotations

from typing import Sequence

from repro.stats.descriptive import mean

__all__ = ["composite_score"]


def composite_score(definition: float, components: Sequence[float]) -> float:
    """Composite score of one element for one respondent (or one cohort mean).

    Parameters
    ----------
    definition:
        Score on the element's definition item (the "global" view).
    components:
        Scores on the element's component / performance-indicator items
        (the "focused" view).  Must be non-empty.
    """
    if not components:
        raise ValueError("composite score requires at least one component item")
    return (definition + mean(components)) / 2.0
