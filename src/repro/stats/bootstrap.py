"""Seeded bootstrap confidence intervals.

A replication should say how certain its regenerated statistics are.
:func:`bootstrap_ci` gives a percentile CI for any statistic of one
sample; :func:`bootstrap_paired_ci` resamples *pairs* (the right unit
for the paper's within-student design) for statistics of two aligned
samples, e.g. Cohen's d between waves or the emphasis↔growth
correlation.  Deterministic for a given seed.

Common statistics take the vectorized fast path in
:mod:`repro.kernels.resample`: pass ``"mean"`` / ``"std"`` / ``"median"``
(or the ``np.mean``/``np.median`` callables, recognised by identity) to
:func:`bootstrap_ci`,
or ``"mean_diff"`` / ``"cohens_d"`` / ``"pearson_r"`` to
:func:`bootstrap_paired_ci`, and the whole (B, n) index matrix is drawn
in one call with the statistic reduced along an axis — no Python loop,
same RNG stream, bit-identical estimates (property-tested).  Any other
callable keeps the original per-resample loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro import kernels
from repro.kernels.resample import (
    paired_statistic_value,
    resolve_paired_statistic,
    resolve_statistic,
    statistic_value,
)

__all__ = ["BootstrapCI", "bootstrap_ci", "bootstrap_paired_ci"]

DEFAULT_RESAMPLES = 2000


@dataclass(frozen=True)
class BootstrapCI:
    """A percentile bootstrap interval."""

    estimate: float
    low: float
    high: float
    level: float
    n_resamples: int

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low

    def __str__(self) -> str:
        return (
            f"{self.estimate:.3f} [{self.low:.3f}, {self.high:.3f}] "
            f"({self.level:.0%} bootstrap, B={self.n_resamples})"
        )


def _validate(level: float, n_resamples: int, n: int) -> None:
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0, 1), got {level}")
    if n_resamples < 100:
        raise ValueError(f"need at least 100 resamples, got {n_resamples}")
    if n < 2:
        raise ValueError(f"need at least 2 observations, got {n}")


def bootstrap_ci(
    xs: Sequence[float],
    statistic: Callable[[Sequence[float]], float] | str,
    level: float = 0.95,
    n_resamples: int = DEFAULT_RESAMPLES,
    seed: int = 0,
) -> BootstrapCI:
    """Percentile bootstrap CI for ``statistic(xs)``.

    ``statistic`` may be a callable (looped) or the name of a kernel
    statistic — ``"mean"``, ``"std"``, or ``"median"`` — for the
    vectorized path.
    """
    _validate(level, n_resamples, len(xs))
    data = np.asarray(xs, dtype=float)
    name = resolve_statistic(statistic)
    if name is not None:
        estimates = kernels.bootstrap_estimates(data, name, n_resamples, seed)
        estimate = statistic_value(data, name)
    else:
        rng = np.random.default_rng(seed)
        estimates = np.empty(n_resamples)
        n = len(data)
        for b in range(n_resamples):
            estimates[b] = statistic(data[rng.integers(0, n, size=n)])
        estimate = float(statistic(data))
    alpha = (1.0 - level) / 2.0
    return BootstrapCI(
        estimate=estimate,
        low=float(np.quantile(estimates, alpha)),
        high=float(np.quantile(estimates, 1.0 - alpha)),
        level=level,
        n_resamples=n_resamples,
    )


def bootstrap_paired_ci(
    xs: Sequence[float],
    ys: Sequence[float],
    statistic: Callable[[Sequence[float], Sequence[float]], float] | str,
    level: float = 0.95,
    n_resamples: int = DEFAULT_RESAMPLES,
    seed: int = 0,
) -> BootstrapCI:
    """Percentile bootstrap CI for ``statistic(xs, ys)`` resampling pairs.

    ``xs[i]`` and ``ys[i]`` belong to the same unit (student), so
    resampling draws index vectors, preserving the pairing — required for
    paired effect sizes and correlations.  ``statistic`` may be a
    callable (looped) or a kernel name — ``"mean_diff"``, ``"cohens_d"``
    (the paper's average-variance d), or ``"pearson_r"`` — for the
    vectorized path.
    """
    if len(xs) != len(ys):
        raise ValueError(f"paired bootstrap needs equal lengths, got "
                         f"{len(xs)} and {len(ys)}")
    _validate(level, n_resamples, len(xs))
    a = np.asarray(xs, dtype=float)
    b = np.asarray(ys, dtype=float)
    name = resolve_paired_statistic(statistic)
    if name is not None:
        estimates = kernels.paired_bootstrap_estimates(
            a, b, name, n_resamples, seed
        )
        estimate = paired_statistic_value(a, b, name)
    else:
        rng = np.random.default_rng(seed)
        n = len(a)
        estimates = np.empty(n_resamples)
        for i in range(n_resamples):
            index = rng.integers(0, n, size=n)
            estimates[i] = statistic(a[index], b[index])
        estimate = float(statistic(a, b))
    alpha = (1.0 - level) / 2.0
    return BootstrapCI(
        estimate=estimate,
        low=float(np.quantile(estimates, alpha)),
        high=float(np.quantile(estimates, 1.0 - alpha)),
        level=level,
        n_resamples=n_resamples,
    )
