"""Pearson and Spearman correlation.

Table 4 of the paper reports Pearson correlations between Class Emphasis
and Personal Growth for each of the seven survey elements, in each survey
wave, with p-values (all reported as ``p < 0.001`` following Greenland et
al.'s recommendation for very small p).  :func:`pearson` reproduces that
analysis, including the paper's p-value reporting convention via
:meth:`CorrelationResult.p_report`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.stats.descriptive import mean
from repro.stats.distributions import normal_ppf, t_sf
from repro.stats.guilford import GuilfordBand, guilford_band

__all__ = [
    "CorrelationResult",
    "pearson",
    "pearson_r_from_stats",
    "spearman",
    "fisher_confidence_interval",
]


@dataclass(frozen=True)
class CorrelationResult:
    """Correlation coefficient with its significance test.

    ``p_value`` comes from the exact t-transform
    ``t = r * sqrt((n-2) / (1-r^2))`` with ``n - 2`` degrees of freedom.
    """

    r: float
    p_value: float
    n: int
    method: str

    @property
    def strength(self) -> GuilfordBand:
        """Guilford (1956) strength band, as the paper interprets Table 4."""
        return guilford_band(self.r)

    def p_report(self, floor: float = 0.001) -> str:
        """The paper's reporting convention: tiny p become ``p < 0.001``."""
        if self.p_value < floor:
            return f"p < {floor:g}"
        return f"p = {self.p_value:.3f}"

    def __str__(self) -> str:
        return f"{self.method} r={self.r:.2f} ({self.p_report()}, N={self.n}) [{self.strength.label}]"


def _pearson_r(xs: Sequence[float], ys: Sequence[float]) -> float:
    n = len(xs)
    mx, my = mean(xs), mean(ys)
    sxy = math.fsum((x - mx) * (y - my) for x, y in zip(xs, ys))
    sxx = math.fsum((x - mx) ** 2 for x in xs)
    syy = math.fsum((y - my) ** 2 for y in ys)
    if sxx == 0.0 or syy == 0.0:
        raise ValueError("correlation undefined for a constant sequence")
    denom = math.sqrt(sxx * syy)
    if denom == 0.0:
        # sxx * syy underflowed to zero for denormal-scale sums; the
        # factored form cannot underflow when both inputs are nonzero.
        denom = math.sqrt(sxx) * math.sqrt(syy)
    r = sxy / denom
    # Guard against floating-point overshoot past +/-1.
    return max(-1.0, min(1.0, r))


def pearson(xs: Sequence[float], ys: Sequence[float]) -> CorrelationResult:
    """Pearson product-moment correlation with two-sided p-value."""
    if len(xs) != len(ys):
        raise ValueError(f"correlation requires equal lengths, got {len(xs)} and {len(ys)}")
    n = len(xs)
    if n < 3:
        raise ValueError("correlation requires at least 3 pairs")
    r = _pearson_r(xs, ys)
    if abs(r) == 1.0:
        p = 0.0
    else:
        t = r * math.sqrt((n - 2) / (1.0 - r * r))
        p = 2.0 * t_sf(abs(t), n - 2)
    return CorrelationResult(r=r, p_value=p, n=n, method="pearson")


def pearson_r_from_stats(
    n: int, sxx: float, syy: float, sxy: float
) -> CorrelationResult:
    """Pearson correlation from centered sufficient statistics alone.

    ``sxx``/``syy`` are the centered second moments and ``sxy`` the
    centered cross-product — exactly what a streamed
    :class:`~repro.stats.streaming.CoMoments` accumulator holds.  The
    arithmetic mirrors :func:`pearson` (same clamp, same t-transform),
    so feeding the sums that function computes internally reproduces
    its result bit for bit.
    """
    if n < 3:
        raise ValueError("correlation requires at least 3 pairs")
    if sxx == 0.0 or syy == 0.0:
        raise ValueError("correlation undefined for a constant sequence")
    denom = math.sqrt(sxx * syy)
    if denom == 0.0:
        denom = math.sqrt(sxx) * math.sqrt(syy)
    r = sxy / denom
    r = max(-1.0, min(1.0, r))
    if abs(r) == 1.0:
        p = 0.0
    else:
        t = r * math.sqrt((n - 2) / (1.0 - r * r))
        p = 2.0 * t_sf(abs(t), n - 2)
    return CorrelationResult(r=r, p_value=p, n=n, method="pearson")


def _rank(xs: Sequence[float]) -> list[float]:
    """Fractional (average) ranks, 1-based, ties share the mean rank."""
    order = sorted(range(len(xs)), key=lambda i: xs[i])
    ranks = [0.0] * len(xs)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and xs[order[j + 1]] == xs[order[i]]:
            j += 1
        avg_rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = avg_rank
        i = j + 1
    return ranks


def spearman(xs: Sequence[float], ys: Sequence[float]) -> CorrelationResult:
    """Spearman rank correlation (Pearson on fractional ranks)."""
    if len(xs) != len(ys):
        raise ValueError(f"correlation requires equal lengths, got {len(xs)} and {len(ys)}")
    if len(xs) < 3:
        raise ValueError("correlation requires at least 3 pairs")
    base = pearson(_rank(xs), _rank(ys))
    return CorrelationResult(r=base.r, p_value=base.p_value, n=base.n, method="spearman")


def fisher_confidence_interval(
    result: CorrelationResult, level: float = 0.95
) -> tuple[float, float]:
    """Fisher z-transform confidence interval for a Pearson correlation."""
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0, 1), got {level}")
    if result.n < 4:
        raise ValueError("Fisher CI requires at least 4 pairs")
    r = result.r
    if abs(r) == 1.0:
        return (r, r)
    z = math.atanh(r)
    se = 1.0 / math.sqrt(result.n - 3)
    half = normal_ppf(0.5 + level / 2.0) * se
    return (math.tanh(z - half), math.tanh(z + half))
