"""Guilford (1956) correlation-strength bands.

The paper interprets Table 4 with Guilford's verbal labels:

- |r| < 0.20          slight; almost negligible relationship
- 0.20 <= |r| < 0.40  low; definite but small relationship
- 0.40 <= |r| < 0.70  moderate; substantial relationship
- 0.70 <= |r| < 0.90  high; marked relationship
- 0.90 <= |r|         very high; very dependable relationship

e.g. "Evaluation and Decision Making ... fall[s] within the high range at
r = 0.73 (+/- 0.70 - +/- 0.90) and Teamwork at only the first half of the
semester ... within the low range at r = 0.38 (+/- 0.20 - +/- 0.40)".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GuilfordBand", "guilford_band", "GUILFORD_BANDS"]


@dataclass(frozen=True)
class GuilfordBand:
    """One row of Guilford's interpretation table."""

    label: str
    description: str
    low: float
    high: float

    def contains(self, r: float) -> bool:
        """Whether ``|r|`` falls in this band (lower bound inclusive)."""
        return self.low <= abs(r) < self.high

    def __str__(self) -> str:
        return f"{self.label} ({self.low:.2f}-{self.high:.2f}): {self.description}"


GUILFORD_BANDS: tuple[GuilfordBand, ...] = (
    GuilfordBand("slight", "almost negligible relationship", 0.0, 0.20),
    GuilfordBand("low", "definite but small relationship", 0.20, 0.40),
    GuilfordBand("moderate", "substantial relationship", 0.40, 0.70),
    GuilfordBand("high", "marked relationship", 0.70, 0.90),
    GuilfordBand("very high", "very dependable relationship", 0.90, 1.0 + 1e-12),
)


def guilford_band(r: float) -> GuilfordBand:
    """Classify a correlation coefficient into its Guilford band."""
    if not -1.0 <= r <= 1.0:
        raise ValueError(f"correlation must be in [-1, 1], got {r}")
    for band in GUILFORD_BANDS:
        if band.contains(r):
            return band
    # |r| == 1.0 exactly lands here only if floating point misbehaves.
    return GUILFORD_BANDS[-1]
