"""Descriptive statistics.

The paper reports means, standard deviations and sample sizes for each
survey wave (Tables 2 and 3) before computing effect sizes.  These helpers
are deliberately explicit about the variance denominator: the paper's
Cohen's d uses the *sample* standard deviation (``ddof=1``), which is what
:func:`describe` returns by default.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["Summary", "describe", "mean", "variance", "stdev", "sem", "median", "quantile"]


def mean(xs: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    n = len(xs)
    if n == 0:
        raise ValueError("mean of empty sequence")
    return math.fsum(xs) / n


def variance(xs: Sequence[float], ddof: int = 1) -> float:
    """Variance with ``ddof`` delta degrees of freedom (default: sample)."""
    n = len(xs)
    if n <= ddof:
        raise ValueError(f"variance requires more than ddof={ddof} observations, got {n}")
    m = mean(xs)
    # Two-pass algorithm with compensated summation for numerical stability.
    ss = math.fsum((x - m) ** 2 for x in xs)
    comp = math.fsum(x - m for x in xs)
    return (ss - comp * comp / n) / (n - ddof)


def stdev(xs: Sequence[float], ddof: int = 1) -> float:
    """Standard deviation (sample by default)."""
    return math.sqrt(variance(xs, ddof=ddof))


def sem(xs: Sequence[float]) -> float:
    """Standard error of the mean."""
    return stdev(xs) / math.sqrt(len(xs))


def median(xs: Sequence[float]) -> float:
    """Median (average of the two central order statistics for even n)."""
    n = len(xs)
    if n == 0:
        raise ValueError("median of empty sequence")
    s = sorted(xs)
    mid = n // 2
    if n % 2:
        return float(s[mid])
    return 0.5 * (s[mid - 1] + s[mid])


def quantile(xs: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile (numpy's default 'linear' method)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile requires 0 <= q <= 1, got {q}")
    n = len(xs)
    if n == 0:
        raise ValueError("quantile of empty sequence")
    s = sorted(xs)
    if n == 1:
        return float(s[0])
    pos = q * (n - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, n - 1)
    frac = pos - lo
    return s[lo] * (1.0 - frac) + s[hi] * frac


@dataclass(frozen=True)
class Summary:
    """Descriptive summary of a sample.

    Mirrors the per-wave rows of the paper's Tables 2 and 3:
    mean (M), standard deviation (s), sample size (n) — plus extras used
    elsewhere in the pipeline.
    """

    n: int
    mean: float
    sd: float
    sem: float
    minimum: float
    q25: float
    median: float
    q75: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.n}  M={self.mean:.6f}  SD={self.sd:.6f}  "
            f"SEM={self.sem:.6f}  range=[{self.minimum:.3f}, {self.maximum:.3f}]"
        )


def describe(xs: Sequence[float]) -> Summary:
    """Full descriptive summary of a sample (sample SD, ddof=1)."""
    if len(xs) < 2:
        raise ValueError("describe requires at least 2 observations")
    return Summary(
        n=len(xs),
        mean=mean(xs),
        sd=stdev(xs),
        sem=sem(xs),
        minimum=float(min(xs)),
        q25=quantile(xs, 0.25),
        median=median(xs),
        q75=quantile(xs, 0.75),
        maximum=float(max(xs)),
    )
