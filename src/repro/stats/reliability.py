"""Scale reliability: Cronbach's alpha.

The Beyerlein survey scores each element from multiple items; the
standard check that those items measure one construct is Cronbach's
alpha,

    alpha = (k / (k - 1)) * (1 - sum(item variances) / variance(total)),

with the usual reading: >= 0.9 excellent, >= 0.8 good, >= 0.7 acceptable,
>= 0.6 questionable, >= 0.5 poor, else unacceptable.  The paper does not
print alphas, but any replication of a survey study needs them — the
study driver computes per-element alphas on the generated responses and
the test suite checks they land in the internally-consistent range the
latent-trait model implies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.stats.descriptive import variance

__all__ = ["CronbachResult", "cronbach_alpha", "alpha_interpretation"]

_BANDS = (
    (0.9, "excellent"),
    (0.8, "good"),
    (0.7, "acceptable"),
    (0.6, "questionable"),
    (0.5, "poor"),
)


def alpha_interpretation(alpha: float) -> str:
    """The conventional verbal label for an alpha value."""
    for threshold, label in _BANDS:
        if alpha >= threshold:
            return label
    return "unacceptable"


@dataclass(frozen=True)
class CronbachResult:
    """Alpha plus the pieces it was computed from."""

    alpha: float
    n_items: int
    n_respondents: int

    @property
    def interpretation(self) -> str:
        return alpha_interpretation(self.alpha)

    def __str__(self) -> str:
        return (
            f"Cronbach's alpha = {self.alpha:.3f} ({self.interpretation}; "
            f"{self.n_items} items, N = {self.n_respondents})"
        )


def cronbach_alpha(items: Sequence[Sequence[float]]) -> CronbachResult:
    """Cronbach's alpha for a scale.

    ``items[j][i]`` is respondent *i*'s score on item *j* (items-major,
    the natural layout when iterating an instrument's items).  Requires
    at least 2 items and 2 respondents, and a non-constant total score.
    """
    k = len(items)
    if k < 2:
        raise ValueError("Cronbach's alpha requires at least 2 items")
    n = len(items[0])
    if n < 2:
        raise ValueError("Cronbach's alpha requires at least 2 respondents")
    if any(len(item) != n for item in items):
        raise ValueError("all items must have the same number of respondents")

    totals = [sum(item[i] for item in items) for i in range(n)]
    total_var = variance(totals)
    if total_var == 0.0:
        raise ValueError("alpha undefined: total score has zero variance")
    item_var_sum = sum(variance(list(item)) for item in items)
    alpha = (k / (k - 1)) * (1.0 - item_var_sum / total_var)
    return CronbachResult(alpha=alpha, n_items=k, n_respondents=n)
