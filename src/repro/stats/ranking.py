"""Ranking helpers for Tables 5 and 6.

The paper ranks the seven survey elements by their cohort-mean score,
separately for Course Emphasis (Table 5) and Personal Growth (Table 6) and
for each survey wave, then reads off which elements moved.  These helpers
produce those orderings plus the comparisons the Discussion section makes
(spread between top and bottom, emphasis-minus-growth gap, and the 0.2
course-redesign threshold from Beyerlein et al.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

__all__ = ["RankedItem", "rank_by_score", "rank_table", "spread", "emphasis_growth_gaps"]

# Beyerlein et al.: only if perceived emphasis exceeds perceived growth by
# more than this should the course design/delivery be modified.
REDESIGN_THRESHOLD = 0.2


@dataclass(frozen=True)
class RankedItem:
    """One row of a ranking table."""

    rank: int
    name: str
    score: float

    def __str__(self) -> str:
        return f"{self.rank}. {self.name}: {self.score:.2f}"


def rank_by_score(scores: Mapping[str, float]) -> list[RankedItem]:
    """Rank items by descending score; ties broken alphabetically.

    Rank numbers are 1-based and dense in presentation order (the paper's
    tables number rows 1..7 even where scores tie to 2 decimals).
    """
    if not scores:
        raise ValueError("cannot rank an empty mapping")
    ordered = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
    return [RankedItem(rank=i + 1, name=k, score=v) for i, (k, v) in enumerate(ordered)]


def rank_table(
    first_half: Mapping[str, float], second_half: Mapping[str, float]
) -> list[tuple[RankedItem, RankedItem]]:
    """Side-by-side ranking of the two waves (the layout of Tables 5/6)."""
    if set(first_half) != set(second_half):
        raise ValueError("both waves must score the same elements")
    return list(zip(rank_by_score(first_half), rank_by_score(second_half)))


def spread(scores: Mapping[str, float]) -> float:
    """Top-minus-bottom score spread, used to argue wave-1 growth was
    'more selective' (larger spread) than wave-2 growth."""
    if not scores:
        raise ValueError("spread of an empty mapping")
    values = list(scores.values())
    return max(values) - min(values)


def emphasis_growth_gaps(
    emphasis: Mapping[str, float],
    growth: Mapping[str, float],
    threshold: float = REDESIGN_THRESHOLD,
) -> dict[str, tuple[float, bool]]:
    """Per-element (emphasis - growth) gap and whether it exceeds the
    Beyerlein redesign threshold.

    The Discussion highlights Implementation's near-zero second-half gap
    (0.03) and notes emphasis almost always exceeds perceived growth.
    """
    if set(emphasis) != set(growth):
        raise ValueError("emphasis and growth must cover the same elements")
    return {
        name: (emphasis[name] - growth[name], emphasis[name] - growth[name] > threshold)
        for name in emphasis
    }
