"""Statistical power for the paired t-test.

Lakens (2013) — the paper's effect-size reference — frames effect sizes
as the bridge to power analysis.  This module answers the two questions
a replication should: *what power did the design have?* (post hoc, given
the observed d_z and N) and *what N would a replication need?* (a priori,
for a target power).

Power of a two-sided one-sample/paired t at level ``alpha`` uses the
noncentral t distribution with noncentrality ``delta = d_z * sqrt(n)``:

    power = P(|T'| > t_crit)

computed here with the standard normal approximation to the noncentral t
(Johnson & Kotz): ``T' ~ N(delta, 1)`` scaled by the df adjustment —
accurate to ~1e-3 for the df this study has (>30), which the tests
verify against exact values from scipy's noncentral t.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.stats.distributions import normal_cdf, t_ppf

__all__ = ["PowerResult", "paired_t_power", "required_n_paired_t"]


@dataclass(frozen=True)
class PowerResult:
    """Power of a paired design."""

    effect_size: float     # d_z
    n: int
    alpha: float
    power: float

    def __str__(self) -> str:
        return (
            f"paired t: d_z = {self.effect_size:.2f}, N = {self.n}, "
            f"alpha = {self.alpha:g} -> power = {self.power:.3f}"
        )


def _noncentral_t_sf(x: float, df: float, delta: float) -> float:
    """P(T' > x) for noncentral t, via the Johnson-Kotz normal approx."""
    # T' > x  <=>  Z > (x (1 - 1/(4 df)) - delta) / sqrt(1 + x^2/(2 df))
    numerator = x * (1.0 - 1.0 / (4.0 * df)) - delta
    denominator = math.sqrt(1.0 + x * x / (2.0 * df))
    return 1.0 - normal_cdf(numerator / denominator)


def paired_t_power(effect_size: float, n: int, alpha: float = 0.05) -> PowerResult:
    """Power of a two-sided paired t-test.

    ``effect_size`` is d_z (mean difference / SD of differences).
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    df = n - 1
    delta = abs(effect_size) * math.sqrt(n)
    t_crit = t_ppf(1.0 - alpha / 2.0, df)
    power = _noncentral_t_sf(t_crit, df, delta) + (
        1.0 - _noncentral_t_sf(-t_crit, df, delta)
    )
    return PowerResult(
        effect_size=effect_size, n=n, alpha=alpha, power=min(1.0, power)
    )


def required_n_paired_t(
    effect_size: float, power: float = 0.8, alpha: float = 0.05, max_n: int = 100_000
) -> int:
    """Smallest N giving at least ``power`` for a two-sided paired t."""
    if effect_size == 0.0:
        raise ValueError("cannot power a null effect")
    if not 0.0 < power < 1.0:
        raise ValueError(f"power must be in (0, 1), got {power}")
    # Exponential then binary search on the monotone power curve.
    lo, hi = 2, 4
    while paired_t_power(effect_size, hi, alpha).power < power:
        hi *= 2
        if hi > max_n:
            raise ValueError(
                f"no N <= {max_n} reaches power {power} for d = {effect_size}"
            )
    while lo < hi:
        mid = (lo + hi) // 2
        if paired_t_power(effect_size, mid, alpha).power >= power:
            hi = mid
        else:
            lo = mid + 1
    return lo
