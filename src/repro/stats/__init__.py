"""Statistics substrate.

Everything the paper's evaluation section uses, implemented from scratch
(no scipy at runtime; scipy is only used in the test suite to cross-check):

- :mod:`repro.stats.distributions` — normal / Student-t distribution
  functions built on our own incomplete-beta and error-function
  implementations.
- :mod:`repro.stats.descriptive` — descriptive statistics.
- :mod:`repro.stats.ttest` — one-sample, paired, pooled and Welch
  two-sample t-tests (Table 1).
- :mod:`repro.stats.effectsize` — Cohen's d family, including the exact
  pooled-SD formula printed in the paper (Tables 2 and 3), and the
  small/medium/large interpretation bands.
- :mod:`repro.stats.correlation` — Pearson and Spearman correlation with
  p-values and Fisher confidence intervals (Table 4).
- :mod:`repro.stats.guilford` — Guilford (1956) correlation-strength bands
  used by the paper to describe Table 4.
- :mod:`repro.stats.composite` — the Beyerlein composite score.
- :mod:`repro.stats.ranking` — ranking helpers for Tables 5 and 6.
- :mod:`repro.stats.streaming` — parallel-mergeable Welford/Chan moment
  accumulators; with the ``*_from_stats`` entry points in
  :mod:`~repro.stats.ttest` / :mod:`~repro.stats.effectsize` /
  :mod:`~repro.stats.correlation`, every Table 1–6 cell is computable
  from merged sufficient statistics alone (the mega-cohort path).
"""

from repro.stats.anova import AnovaResult, f_sf, one_way_anova
from repro.stats.bootstrap import BootstrapCI, bootstrap_ci, bootstrap_paired_ci
from repro.stats.composite import composite_score
from repro.stats.correlation import (
    CorrelationResult,
    fisher_confidence_interval,
    pearson,
    pearson_r_from_stats,
    spearman,
)
from repro.stats.descriptive import Summary, describe
from repro.stats.distributions import (
    betainc,
    erf,
    erfc,
    normal_cdf,
    normal_ppf,
    normal_sf,
    t_cdf,
    t_ppf,
    t_sf,
)
from repro.stats.effectsize import (
    CohensDResult,
    cohens_d_av,
    cohens_d_from_stats,
    cohens_d_interpretation,
    cohens_d_paired,
    cohens_d_paper,
    cohens_d_pooled,
    hedges_g,
)
from repro.stats.guilford import GuilfordBand, guilford_band
from repro.stats.power import PowerResult, paired_t_power, required_n_paired_t
from repro.stats.reliability import (
    CronbachResult,
    alpha_interpretation,
    cronbach_alpha,
)
from repro.stats.ranking import rank_by_score, rank_table
from repro.stats.streaming import CoMoments, Moments, merge_indexed
from repro.stats.ttest import (
    TTestResult,
    ttest_independent,
    ttest_one_sample,
    ttest_paired,
    ttest_paired_from_stats,
    ttest_welch,
)

__all__ = [
    "AnovaResult",
    "BootstrapCI",
    "CohensDResult",
    "CorrelationResult",
    "CronbachResult",
    "GuilfordBand",
    "PowerResult",
    "Summary",
    "TTestResult",
    "alpha_interpretation",
    "betainc",
    "bootstrap_ci",
    "bootstrap_paired_ci",
    "CoMoments",
    "Moments",
    "cohens_d_av",
    "cohens_d_from_stats",
    "cohens_d_interpretation",
    "cohens_d_paired",
    "cohens_d_paper",
    "cohens_d_pooled",
    "composite_score",
    "cronbach_alpha",
    "describe",
    "f_sf",
    "erf",
    "erfc",
    "fisher_confidence_interval",
    "guilford_band",
    "hedges_g",
    "normal_cdf",
    "normal_ppf",
    "normal_sf",
    "paired_t_power",
    "one_way_anova",
    "merge_indexed",
    "pearson",
    "pearson_r_from_stats",
    "rank_by_score",
    "required_n_paired_t",
    "rank_table",
    "spearman",
    "t_cdf",
    "t_ppf",
    "t_sf",
    "ttest_independent",
    "ttest_one_sample",
    "ttest_paired",
    "ttest_paired_from_stats",
    "ttest_welch",
]
