"""One-way ANOVA with eta-squared effect size.

The paper's statistics reference (Lakens 2013) is "a practical primer for
t-tests and ANOVAs"; the course simulation uses ANOVA for the natural
multi-group questions the two-section design invites (does any team /
section differ?).  The F survival function is built on our own
incomplete-beta, like the t distribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.stats.descriptive import mean
from repro.stats.distributions import betainc

__all__ = ["AnovaResult", "f_sf", "one_way_anova"]


def f_sf(f: float, dfn: float, dfd: float) -> float:
    """Survival function of the F distribution.

    ``P(F > f) = I_{dfd/(dfd + dfn f)}(dfd/2, dfn/2)`` for f >= 0.
    """
    if dfn <= 0 or dfd <= 0:
        raise ValueError("degrees of freedom must be positive")
    if f < 0:
        return 1.0
    if f == 0.0:
        return 1.0
    return betainc(dfd / 2.0, dfn / 2.0, dfd / (dfd + dfn * f))


@dataclass(frozen=True)
class AnovaResult:
    """One-way ANOVA table row."""

    f: float
    df_between: int
    df_within: int
    p_value: float
    ss_between: float
    ss_within: float

    @property
    def eta_squared(self) -> float:
        """Proportion of variance explained by group membership."""
        total = self.ss_between + self.ss_within
        if total == 0.0:
            return 0.0
        return self.ss_between / total

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha

    def __str__(self) -> str:
        return (
            f"F({self.df_between}, {self.df_within}) = {self.f:.3f}, "
            f"p = {self.p_value:.4g}, eta^2 = {self.eta_squared:.3f}"
        )


def one_way_anova(groups: Sequence[Sequence[float]]) -> AnovaResult:
    """One-way fixed-effects ANOVA over two or more groups."""
    if len(groups) < 2:
        raise ValueError("ANOVA requires at least 2 groups")
    if any(len(g) < 2 for g in groups):
        raise ValueError("every group needs at least 2 observations")

    all_values = [x for g in groups for x in g]
    grand = mean(all_values)
    n_total = len(all_values)
    k = len(groups)

    ss_between = math.fsum(len(g) * (mean(g) - grand) ** 2 for g in groups)
    ss_within = math.fsum(
        math.fsum((x - mean(g)) ** 2 for x in g) for g in groups
    )
    df_between = k - 1
    df_within = n_total - k
    if ss_within == 0.0:
        raise ValueError("ANOVA undefined: zero within-group variance")

    f = (ss_between / df_between) / (ss_within / df_within)
    return AnovaResult(
        f=f,
        df_between=df_between,
        df_within=df_within,
        p_value=f_sf(f, df_between, df_within),
        ss_between=ss_between,
        ss_within=ss_within,
    )
