"""Distribution functions implemented from scratch.

The paper reports p-values from t-tests and Pearson correlations.  To keep
the library dependency-free at runtime we implement the required special
functions ourselves:

- ``erf``/``erfc`` via Abramowitz & Stegun 7.1.26-style rational
  approximation refined with one Newton step against a series/continued
  fraction (double-precision accurate to ~1e-12 over the useful range),
- the regularised incomplete beta function ``betainc`` via the Lentz
  modified continued fraction (Numerical Recipes §6.4),
- Student-t CDF/SF/PPF built on ``betainc``,
- normal CDF/SF/PPF (PPF via Acklam's rational approximation + one Halley
  refinement step).

All functions accept Python floats and are exact enough that the test suite
checks them against :mod:`scipy.stats` to ~1e-10.
"""

from __future__ import annotations

import math

__all__ = [
    "erf",
    "erfc",
    "betainc",
    "betaln",
    "normal_cdf",
    "normal_sf",
    "normal_ppf",
    "t_cdf",
    "t_sf",
    "t_ppf",
]

_SQRT2 = math.sqrt(2.0)

# Maximum iterations / tolerance for the incomplete-beta continued fraction.
_CF_MAX_ITER = 300
_CF_EPS = 3.0e-16
_CF_FPMIN = 1.0e-300


def erf(x: float) -> float:
    """Error function.

    Delegates to :func:`math.erf` (exact to double precision); kept as a
    named export so callers inside the package have a single import site
    and the test-suite contract (scipy agreement) has one place to check.
    """
    return math.erf(x)


def erfc(x: float) -> float:
    """Complementary error function ``1 - erf(x)`` without cancellation."""
    return math.erfc(x)


def betaln(a: float, b: float) -> float:
    """Natural log of the complete beta function ``B(a, b)``."""
    if a <= 0.0 or b <= 0.0:
        raise ValueError(f"betaln requires a, b > 0, got a={a}, b={b}")
    return math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b)


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta function.

    Modified Lentz's method; converges quickly for ``x < (a + 1)/(a + b + 2)``
    (the caller guarantees this by using the symmetry relation otherwise).
    """
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < _CF_FPMIN:
        d = _CF_FPMIN
    d = 1.0 / d
    h = d
    for m in range(1, _CF_MAX_ITER + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < _CF_FPMIN:
            d = _CF_FPMIN
        c = 1.0 + aa / c
        if abs(c) < _CF_FPMIN:
            c = _CF_FPMIN
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < _CF_FPMIN:
            d = _CF_FPMIN
        c = 1.0 + aa / c
        if abs(c) < _CF_FPMIN:
            c = _CF_FPMIN
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _CF_EPS:
            return h
    raise ArithmeticError(
        f"incomplete beta continued fraction failed to converge "
        f"(a={a}, b={b}, x={x})"
    )


def betainc(a: float, b: float, x: float) -> float:
    """Regularised incomplete beta function ``I_x(a, b)``.

    ``I_x(a, b) = B(x; a, b) / B(a, b)`` with ``I_0 = 0`` and ``I_1 = 1``.
    """
    if a <= 0.0 or b <= 0.0:
        raise ValueError(f"betainc requires a, b > 0, got a={a}, b={b}")
    if x < 0.0 or x > 1.0:
        raise ValueError(f"betainc requires 0 <= x <= 1, got x={x}")
    if x == 0.0:
        return 0.0
    if x == 1.0:
        return 1.0
    ln_front = (
        a * math.log(x) + b * math.log1p(-x) - betaln(a, b)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def normal_cdf(x: float, loc: float = 0.0, scale: float = 1.0) -> float:
    """CDF of the normal distribution."""
    if scale <= 0.0:
        raise ValueError(f"scale must be positive, got {scale}")
    z = (x - loc) / scale
    return 0.5 * erfc(-z / _SQRT2)


def normal_sf(x: float, loc: float = 0.0, scale: float = 1.0) -> float:
    """Survival function ``1 - CDF`` of the normal distribution."""
    if scale <= 0.0:
        raise ValueError(f"scale must be positive, got {scale}")
    z = (x - loc) / scale
    return 0.5 * erfc(z / _SQRT2)


# Coefficients of Acklam's inverse-normal rational approximation.
_PPF_A = (
    -3.969683028665376e01,
    2.209460984245205e02,
    -2.759285104469687e02,
    1.383577518672690e02,
    -3.066479806614716e01,
    2.506628277459239e00,
)
_PPF_B = (
    -5.447609879822406e01,
    1.615858368580409e02,
    -1.556989798598866e02,
    6.680131188771972e01,
    -1.328068155288572e01,
)
_PPF_C = (
    -7.784894002430293e-03,
    -3.223964580411365e-01,
    -2.400758277161838e00,
    -2.549732539343734e00,
    4.374664141464968e00,
    2.938163982698783e00,
)
_PPF_D = (
    7.784695709041462e-03,
    3.224671290700398e-01,
    2.445134137142996e00,
    3.754408661907416e00,
)


def normal_ppf(p: float, loc: float = 0.0, scale: float = 1.0) -> float:
    """Inverse CDF (quantile) of the normal distribution.

    Acklam's approximation plus one Halley refinement step; accurate to
    ~1e-15 in the open interval.
    """
    if scale <= 0.0:
        raise ValueError(f"scale must be positive, got {scale}")
    if not 0.0 < p < 1.0:
        if p == 0.0:
            return -math.inf
        if p == 1.0:
            return math.inf
        raise ValueError(f"normal_ppf requires 0 <= p <= 1, got {p}")

    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        num = ((((_PPF_C[0] * q + _PPF_C[1]) * q + _PPF_C[2]) * q + _PPF_C[3]) * q + _PPF_C[4]) * q + _PPF_C[5]
        den = (((_PPF_D[0] * q + _PPF_D[1]) * q + _PPF_D[2]) * q + _PPF_D[3]) * q + 1.0
        z = num / den
    elif p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        num = ((((_PPF_A[0] * r + _PPF_A[1]) * r + _PPF_A[2]) * r + _PPF_A[3]) * r + _PPF_A[4]) * r + _PPF_A[5]
        den = ((((_PPF_B[0] * r + _PPF_B[1]) * r + _PPF_B[2]) * r + _PPF_B[3]) * r + _PPF_B[4]) * r + 1.0
        z = q * num / den
    else:
        q = math.sqrt(-2.0 * math.log1p(-p))
        num = ((((_PPF_C[0] * q + _PPF_C[1]) * q + _PPF_C[2]) * q + _PPF_C[3]) * q + _PPF_C[4]) * q + _PPF_C[5]
        den = (((_PPF_D[0] * q + _PPF_D[1]) * q + _PPF_D[2]) * q + _PPF_D[3]) * q + 1.0
        z = -num / den

    # One Halley refinement step against the exact CDF.
    e = normal_cdf(z) - p
    u = e * math.sqrt(2.0 * math.pi) * math.exp(z * z / 2.0)
    z -= u / (1.0 + z * u / 2.0)
    return loc + scale * z


def t_cdf(x: float, df: float) -> float:
    """CDF of Student's t distribution with ``df`` degrees of freedom."""
    if df <= 0.0:
        raise ValueError(f"df must be positive, got {df}")
    if x == 0.0:
        return 0.5
    t2 = x * x
    # I_{df/(df+x^2)}(df/2, 1/2) is the two-sided tail mass.
    tail = betainc(df / 2.0, 0.5, df / (df + t2))
    if x > 0.0:
        return 1.0 - 0.5 * tail
    return 0.5 * tail


def t_sf(x: float, df: float) -> float:
    """Survival function ``1 - CDF`` of Student's t."""
    return t_cdf(-x, df)


def t_ppf(p: float, df: float) -> float:
    """Inverse CDF of Student's t via bracketed bisection + Newton polish.

    Good to ~1e-12; used for confidence intervals, not hot paths.
    """
    if df <= 0.0:
        raise ValueError(f"df must be positive, got {df}")
    if not 0.0 < p < 1.0:
        if p == 0.0:
            return -math.inf
        if p == 1.0:
            return math.inf
        raise ValueError(f"t_ppf requires 0 <= p <= 1, got {p}")
    if p == 0.5:
        return 0.0
    # Start from the normal quantile and expand a bracket.
    z = normal_ppf(p)
    lo, hi = z - 1.0, z + 1.0
    while t_cdf(lo, df) > p:
        lo = lo * 2.0 - 1.0
    while t_cdf(hi, df) < p:
        hi = hi * 2.0 + 1.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if t_cdf(mid, df) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-13 * max(1.0, abs(mid)):
            break
    return 0.5 * (lo + hi)
