"""Student t-tests.

Table 1 of the paper reports two *paired* t-tests across the 124 students
(first-half vs second-half survey): one on averaged Class-Emphasis scores
and one on averaged Personal-Growth scores, reporting the mean difference,
t statistic, N and p-value.

:func:`ttest_paired` reproduces that analysis; the one-sample, pooled
two-sample and Welch variants are provided because the course-simulation
examples compare sections and teams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal, Sequence

from repro.stats.descriptive import mean, stdev, variance
from repro.stats.distributions import t_cdf, t_ppf, t_sf

__all__ = [
    "TTestResult",
    "ttest_one_sample",
    "ttest_paired",
    "ttest_paired_from_stats",
    "ttest_independent",
    "ttest_welch",
]

Alternative = Literal["two-sided", "less", "greater"]


@dataclass(frozen=True)
class TTestResult:
    """Outcome of a t-test, in the shape the paper's Table 1 prints.

    ``mean_difference`` follows the paper's convention of
    ``mean(first) - mean(second)`` for paired data, hence the negative
    values in Table 1 (scores rose in the second half).
    """

    kind: str
    mean_difference: float
    t: float
    df: float
    p_value: float
    n: int
    alternative: Alternative = "two-sided"

    def confidence_interval(self, level: float = 0.95) -> tuple[float, float]:
        """Two-sided confidence interval for the mean difference."""
        if not 0.0 < level < 1.0:
            raise ValueError(f"level must be in (0, 1), got {level}")
        if self.t == 0.0:
            se = 0.0 if self.mean_difference == 0.0 else math.inf
        else:
            se = abs(self.mean_difference / self.t)
        half = t_ppf(0.5 + level / 2.0, self.df) * se
        return (self.mean_difference - half, self.mean_difference + half)

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the test rejects at significance level ``alpha``."""
        return self.p_value < alpha

    def __str__(self) -> str:
        return (
            f"{self.kind}: mean diff={self.mean_difference:+.4f}, "
            f"t({self.df:g})={self.t:.2f}, p={self.p_value:.4g}, N={self.n}"
        )


def _p_from_t(t: float, df: float, alternative: Alternative) -> float:
    if alternative == "two-sided":
        return 2.0 * t_sf(abs(t), df)
    if alternative == "greater":
        return t_sf(t, df)
    if alternative == "less":
        return t_cdf(t, df)
    raise ValueError(f"unknown alternative {alternative!r}")


def ttest_one_sample(
    xs: Sequence[float],
    popmean: float,
    alternative: Alternative = "two-sided",
) -> TTestResult:
    """One-sample t-test of ``mean(xs) == popmean``."""
    n = len(xs)
    if n < 2:
        raise ValueError("one-sample t-test requires at least 2 observations")
    diff = mean(xs) - popmean
    sd = stdev(xs)
    if sd == 0.0:
        raise ValueError("one-sample t-test undefined for zero-variance sample")
    t = diff / (sd / math.sqrt(n))
    df = n - 1
    return TTestResult(
        kind="one-sample",
        mean_difference=diff,
        t=t,
        df=df,
        p_value=_p_from_t(t, df, alternative),
        n=n,
        alternative=alternative,
    )


def ttest_paired(
    first: Sequence[float],
    second: Sequence[float],
    alternative: Alternative = "two-sided",
) -> TTestResult:
    """Paired t-test, the paper's Table 1 analysis.

    ``first`` and ``second`` are per-student scores for the two survey
    waves, in the same student order.  The reported mean difference is
    ``mean(first) - mean(second)`` (matching the paper's negative sign
    when scores improve in wave two).
    """
    if len(first) != len(second):
        raise ValueError(
            f"paired t-test requires equal lengths, got {len(first)} and {len(second)}"
        )
    n = len(first)
    if n < 2:
        raise ValueError("paired t-test requires at least 2 pairs")
    diffs = [a - b for a, b in zip(first, second)]
    d_mean = mean(diffs)
    d_sd = stdev(diffs)
    if d_sd == 0.0:
        raise ValueError("paired t-test undefined when all differences are equal")
    t = d_mean / (d_sd / math.sqrt(n))
    df = n - 1
    return TTestResult(
        kind="paired",
        mean_difference=d_mean,
        t=t,
        df=df,
        p_value=_p_from_t(t, df, alternative),
        n=n,
        alternative=alternative,
    )


def ttest_paired_from_stats(
    n: int,
    mean_diff: float,
    var_diff: float,
    alternative: Alternative = "two-sided",
) -> TTestResult:
    """Paired t-test from sufficient statistics alone.

    ``mean_diff`` and ``var_diff`` are the sample mean and sample
    variance (``ddof=1``) of the per-pair differences — exactly what a
    streamed :class:`~repro.stats.streaming.Moments` accumulator holds.
    The arithmetic mirrors :func:`ttest_paired` operation for
    operation, so feeding the statistics that function would compute
    internally reproduces its result bit for bit (the mega-cohort
    N=124 identity anchor).
    """
    if n < 2:
        raise ValueError("paired t-test requires at least 2 pairs")
    if var_diff < 0.0:
        raise ValueError(f"variance must be non-negative, got {var_diff}")
    d_sd = math.sqrt(var_diff)
    if d_sd == 0.0:
        raise ValueError("paired t-test undefined when all differences are equal")
    t = mean_diff / (d_sd / math.sqrt(n))
    df = n - 1
    return TTestResult(
        kind="paired",
        mean_difference=mean_diff,
        t=t,
        df=df,
        p_value=_p_from_t(t, df, alternative),
        n=n,
        alternative=alternative,
    )


def ttest_independent(
    xs: Sequence[float],
    ys: Sequence[float],
    alternative: Alternative = "two-sided",
) -> TTestResult:
    """Two-sample t-test with pooled variance (assumes equal variances)."""
    nx, ny = len(xs), len(ys)
    if nx < 2 or ny < 2:
        raise ValueError("independent t-test requires at least 2 observations per group")
    diff = mean(xs) - mean(ys)
    vx, vy = variance(xs), variance(ys)
    df = nx + ny - 2
    pooled = ((nx - 1) * vx + (ny - 1) * vy) / df
    if pooled == 0.0:
        raise ValueError("independent t-test undefined for zero pooled variance")
    se = math.sqrt(pooled * (1.0 / nx + 1.0 / ny))
    t = diff / se
    return TTestResult(
        kind="independent (pooled)",
        mean_difference=diff,
        t=t,
        df=df,
        p_value=_p_from_t(t, df, alternative),
        n=nx + ny,
        alternative=alternative,
    )


def ttest_welch(
    xs: Sequence[float],
    ys: Sequence[float],
    alternative: Alternative = "two-sided",
) -> TTestResult:
    """Welch's two-sample t-test (unequal variances)."""
    nx, ny = len(xs), len(ys)
    if nx < 2 or ny < 2:
        raise ValueError("Welch t-test requires at least 2 observations per group")
    diff = mean(xs) - mean(ys)
    vx, vy = variance(xs), variance(ys)
    a, b = vx / nx, vy / ny
    if a + b == 0.0:
        raise ValueError("Welch t-test undefined for zero variance in both groups")
    se = math.sqrt(a + b)
    t = diff / se
    df = (a + b) ** 2 / (a * a / (nx - 1) + b * b / (ny - 1))
    return TTestResult(
        kind="independent (Welch)",
        mean_difference=diff,
        t=t,
        df=df,
        p_value=_p_from_t(t, df, alternative),
        n=nx + ny,
        alternative=alternative,
    )
