"""Cohen's d effect sizes.

Tables 2 and 3 of the paper compute Cohen's d between the first-half and
second-half survey waves with the formula printed verbatim in the paper::

    d = (M2 - M1) / SD_pooled,   SD_pooled = sqrt((SD1^2 + SD2^2) / 2)

(:func:`cohens_d_paper` / :func:`cohens_d_av`).  Note this is the
*average-variance* pooling, appropriate here because both waves have the
same n; the classic n-weighted pooling (:func:`cohens_d_pooled`) and the
paired ``d_z`` (:func:`cohens_d_paired`) are also provided, as is Hedges'
bias-corrected g.

The interpretation bands follow Cohen (and the paper's wording):
d = 0.2 'small', 0.5 'medium', 0.8 'large'.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.stats.descriptive import mean, stdev, variance

__all__ = [
    "CohensDResult",
    "cohens_d_paper",
    "cohens_d_from_stats",
    "cohens_d_av",
    "cohens_d_pooled",
    "cohens_d_paired",
    "hedges_g",
    "cohens_d_interpretation",
]

# Thresholds named by Cohen and quoted by the paper.
_SMALL = 0.2
_MEDIUM = 0.5
_LARGE = 0.8


def cohens_d_interpretation(d: float) -> str:
    """Cohen's verbal label for an effect size magnitude.

    The paper reads d at-or-above each threshold as that band
    ("the group means differ by 0.5 standard deviations ... 'medium'").
    Below 0.2 the difference is described as trivial.

    Banding happens at publication precision (2 decimals), as the paper
    itself does: a computed d of 0.4986 is *reported* as 0.50 and read as
    a medium effect.
    """
    magnitude = round(abs(d), 2)
    if magnitude >= _LARGE:
        return "large"
    if magnitude >= _MEDIUM:
        return "medium"
    if magnitude >= _SMALL:
        return "small"
    return "trivial"


@dataclass(frozen=True)
class CohensDResult:
    """Effect size with the inputs the paper tabulates alongside it."""

    d: float
    mean1: float
    mean2: float
    sd1: float
    sd2: float
    n1: int
    n2: int
    sd_pooled: float
    method: str

    @property
    def interpretation(self) -> str:
        """'trivial' / 'small' / 'medium' / 'large' per Cohen's bands."""
        return cohens_d_interpretation(self.d)

    def __str__(self) -> str:
        return (
            f"Cohen's d ({self.method}) = ({self.mean2:.6f} - {self.mean1:.6f}) / "
            f"{self.sd_pooled:.6f} = {self.d:.2f} [{self.interpretation}]"
        )


def cohens_d_paper(first: Sequence[float], second: Sequence[float]) -> CohensDResult:
    """Cohen's d exactly as the paper's Tables 2 and 3 compute it.

    ``d = (M2 - M1) / sqrt((SD1^2 + SD2^2) / 2)`` with sample SDs.
    Positive d means the second wave scored higher.
    """
    if len(first) < 2 or len(second) < 2:
        raise ValueError("Cohen's d requires at least 2 observations per wave")
    m1, m2 = mean(first), mean(second)
    s1, s2 = stdev(first), stdev(second)
    sd_pooled = math.sqrt((s1 * s1 + s2 * s2) / 2.0)
    if sd_pooled == 0.0:
        raise ValueError("Cohen's d undefined for two zero-variance samples")
    return CohensDResult(
        d=(m2 - m1) / sd_pooled,
        mean1=m1,
        mean2=m2,
        sd1=s1,
        sd2=s2,
        n1=len(first),
        n2=len(second),
        sd_pooled=sd_pooled,
        method="average-variance (paper)",
    )


def cohens_d_from_stats(
    n1: int, mean1: float, var1: float,
    n2: int, mean2: float, var2: float,
) -> CohensDResult:
    """The paper's Cohen's d from per-wave sufficient statistics alone.

    ``var1``/``var2`` are sample variances (``ddof=1``); the arithmetic
    mirrors :func:`cohens_d_paper` operation for operation (square
    roots first, then the average-variance pooling), so feeding the
    statistics that function would compute internally reproduces its
    result bit for bit.
    """
    if n1 < 2 or n2 < 2:
        raise ValueError("Cohen's d requires at least 2 observations per wave")
    if var1 < 0.0 or var2 < 0.0:
        raise ValueError(f"variances must be non-negative, got {var1}, {var2}")
    s1, s2 = math.sqrt(var1), math.sqrt(var2)
    sd_pooled = math.sqrt((s1 * s1 + s2 * s2) / 2.0)
    if sd_pooled == 0.0:
        raise ValueError("Cohen's d undefined for two zero-variance samples")
    return CohensDResult(
        d=(mean2 - mean1) / sd_pooled,
        mean1=mean1,
        mean2=mean2,
        sd1=s1,
        sd2=s2,
        n1=n1,
        n2=n2,
        sd_pooled=sd_pooled,
        method="average-variance (paper)",
    )


def cohens_d_av(first: Sequence[float], second: Sequence[float]) -> CohensDResult:
    """Alias for :func:`cohens_d_paper` under its textbook name (d_av)."""
    result = cohens_d_paper(first, second)
    return CohensDResult(**{**result.__dict__, "method": "average-variance"})


def cohens_d_pooled(first: Sequence[float], second: Sequence[float]) -> CohensDResult:
    """Classic Cohen's d with n-weighted pooled SD (d_s).

    Identical to :func:`cohens_d_paper` when ``n1 == n2`` up to the
    ``n-1`` weighting; differs when group sizes differ.
    """
    n1, n2 = len(first), len(second)
    if n1 < 2 or n2 < 2:
        raise ValueError("Cohen's d requires at least 2 observations per group")
    m1, m2 = mean(first), mean(second)
    v1, v2 = variance(first), variance(second)
    sd_pooled = math.sqrt(((n1 - 1) * v1 + (n2 - 1) * v2) / (n1 + n2 - 2))
    if sd_pooled == 0.0:
        raise ValueError("Cohen's d undefined for two zero-variance samples")
    return CohensDResult(
        d=(m2 - m1) / sd_pooled,
        mean1=m1,
        mean2=m2,
        sd1=math.sqrt(v1),
        sd2=math.sqrt(v2),
        n1=n1,
        n2=n2,
        sd_pooled=sd_pooled,
        method="n-weighted pooled",
    )


def cohens_d_paired(first: Sequence[float], second: Sequence[float]) -> CohensDResult:
    """Paired effect size d_z: mean difference over SD of the differences."""
    if len(first) != len(second):
        raise ValueError(
            f"paired effect size requires equal lengths, got {len(first)} and {len(second)}"
        )
    if len(first) < 2:
        raise ValueError("paired effect size requires at least 2 pairs")
    diffs = [b - a for a, b in zip(first, second)]
    sd_d = stdev(diffs)
    if sd_d == 0.0:
        raise ValueError("paired effect size undefined when all differences are equal")
    m1, m2 = mean(first), mean(second)
    return CohensDResult(
        d=mean(diffs) / sd_d,
        mean1=m1,
        mean2=m2,
        sd1=stdev(first),
        sd2=stdev(second),
        n1=len(first),
        n2=len(second),
        sd_pooled=sd_d,
        method="paired (d_z)",
    )


def hedges_g(first: Sequence[float], second: Sequence[float]) -> CohensDResult:
    """Hedges' g: pooled Cohen's d with small-sample bias correction."""
    base = cohens_d_pooled(first, second)
    df = base.n1 + base.n2 - 2
    # Exact correction factor J(df) = Gamma(df/2) / (sqrt(df/2) Gamma((df-1)/2)).
    correction = math.exp(
        math.lgamma(df / 2.0) - math.lgamma((df - 1) / 2.0)
    ) / math.sqrt(df / 2.0)
    return CohensDResult(
        **{**base.__dict__, "d": base.d * correction, "method": "Hedges' g"}
    )
