"""Parallel-mergeable streaming moments (Welford/Chan).

The mega-cohort pipeline regenerates Tables 1–6 at N=1,000,000 without
ever materialising the response tensor: each generation shard reduces
its rows to the sufficient statistics below, and the shard statistics
merge pairwise into cohort statistics.  Two accumulators cover every
table cell:

- :class:`Moments` — count, mean and centered second moment (M2) of an
  array-shaped quantity.  ``from_batch`` uses the two-pass formula on a
  whole shard (vectorised, numerically excellent), ``push`` is the
  classic Welford single-observation update, and ``merge`` is Chan et
  al.'s pairwise combination.
- :class:`CoMoments` — the bivariate version, adding the centered
  cross-product ``cxy`` that Pearson correlations need.

Merge properties the mega-cohort relies on:

- **Associativity up to rounding** — any merge tree yields the same
  statistics up to a few ulps (pinned by Hypothesis tests against the
  two-pass NumPy reference).
- **Exact permutation stability** — :func:`merge_indexed` folds shard
  statistics in canonical shard-index order, so the merged bits are a
  pure function of the shard set, independent of completion order,
  worker count, or executor mode.
- **Near-exact means on dyadic data** — the merged mean is computed as
  ``(n_a*mean_a + n_b*mean_b) / n``.  When the per-row values are
  dyadic rationals with exactly representable sums (e.g. the composite
  scores behind Tables 5–6, which are multiples of 1/8), the only
  rounding anywhere is the per-shard division ``sum/n_shard`` (exact
  whenever the shard length is a power of two), so the merged mean
  tracks the direct mean to within an ulp or two at any shard count —
  far inside the 2–6 decimals the rendered tables print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, TypeVar

import numpy as np

__all__ = ["Moments", "CoMoments", "merge_indexed"]

_M = TypeVar("_M", "Moments", "CoMoments")


def _as_float_array(value) -> np.ndarray:
    return np.asarray(value, dtype=np.float64)


@dataclass(frozen=True)
class Moments:
    """Count, mean and centered second moment of an array-shaped quantity.

    ``mean`` and ``m2`` share one shape (possibly ``()`` for scalars);
    every element accumulates independently.  ``m2`` is the sum of
    squared deviations from the mean (Welford's M2), so the sample
    variance is ``m2 / (count - ddof)``.
    """

    count: int
    mean: np.ndarray
    m2: np.ndarray

    @classmethod
    def empty(cls, shape: tuple[int, ...] = ()) -> "Moments":
        return cls(count=0, mean=np.zeros(shape), m2=np.zeros(shape))

    @classmethod
    def from_batch(cls, batch, axis: int = 0) -> "Moments":
        """Two-pass moments of a whole batch along ``axis`` (vectorised)."""
        x = _as_float_array(batch)
        n = x.shape[axis]
        if n == 0:
            shape = list(x.shape)
            del shape[axis]
            return cls.empty(tuple(shape))
        mean = x.mean(axis=axis)
        m2 = np.square(x - np.expand_dims(mean, axis)).sum(axis=axis)
        return cls(count=int(n), mean=mean, m2=m2)

    def push(self, value) -> "Moments":
        """Welford single-observation update; returns the new accumulator."""
        x = _as_float_array(value)
        n = self.count + 1
        delta = x - self.mean
        mean = self.mean + delta / n
        m2 = self.m2 + delta * (x - mean)
        return Moments(count=n, mean=mean, m2=m2)

    def merge(self, other: "Moments") -> "Moments":
        """Chan pairwise combination of two accumulators."""
        if self.count == 0:
            return other
        if other.count == 0:
            return self
        if self.mean.shape != other.mean.shape:
            raise ValueError(
                f"cannot merge moments of shapes {self.mean.shape} "
                f"and {other.mean.shape}"
            )
        n = self.count + other.count
        # Weighted-sum form: exact whenever the underlying sums are
        # exactly representable (see module docstring).
        mean = (self.count * self.mean + other.count * other.mean) / n
        delta = other.mean - self.mean
        m2 = self.m2 + other.m2 + np.square(delta) * (
            self.count * other.count / n
        )
        return Moments(count=n, mean=mean, m2=m2)

    def variance(self, ddof: int = 1) -> np.ndarray:
        if self.count <= ddof:
            raise ValueError(
                f"variance requires more than ddof={ddof} observations, "
                f"got {self.count}"
            )
        return self.m2 / (self.count - ddof)

    def sd(self, ddof: int = 1) -> np.ndarray:
        return np.sqrt(self.variance(ddof=ddof))

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean.tolist(),
            "m2": self.m2.tolist(),
        }


@dataclass(frozen=True)
class CoMoments:
    """Bivariate moments: everything a Pearson correlation needs.

    ``m2x``/``m2y`` are the centered second moments of the two
    variables and ``cxy`` the centered cross-product
    ``sum((x - mean_x) * (y - mean_y))``, all elementwise over one
    shared array shape.
    """

    count: int
    mean_x: np.ndarray
    mean_y: np.ndarray
    m2x: np.ndarray
    m2y: np.ndarray
    cxy: np.ndarray

    @classmethod
    def empty(cls, shape: tuple[int, ...] = ()) -> "CoMoments":
        z = np.zeros(shape)
        return cls(count=0, mean_x=z, mean_y=z.copy(), m2x=z.copy(),
                   m2y=z.copy(), cxy=z.copy())

    @classmethod
    def from_batch(cls, xs, ys, axis: int = 0) -> "CoMoments":
        """Two-pass bivariate moments of paired batches along ``axis``."""
        x = _as_float_array(xs)
        y = _as_float_array(ys)
        if x.shape != y.shape:
            raise ValueError(
                f"paired batches must share a shape, got {x.shape} "
                f"and {y.shape}"
            )
        n = x.shape[axis]
        if n == 0:
            shape = list(x.shape)
            del shape[axis]
            return cls.empty(tuple(shape))
        mean_x = x.mean(axis=axis)
        mean_y = y.mean(axis=axis)
        dx = x - np.expand_dims(mean_x, axis)
        dy = y - np.expand_dims(mean_y, axis)
        return cls(
            count=int(n),
            mean_x=mean_x,
            mean_y=mean_y,
            m2x=np.square(dx).sum(axis=axis),
            m2y=np.square(dy).sum(axis=axis),
            cxy=(dx * dy).sum(axis=axis),
        )

    def push(self, x_value, y_value) -> "CoMoments":
        """Welford-style single-pair update; returns the new accumulator."""
        x = _as_float_array(x_value)
        y = _as_float_array(y_value)
        n = self.count + 1
        dx = x - self.mean_x
        dy = y - self.mean_y
        mean_x = self.mean_x + dx / n
        mean_y = self.mean_y + dy / n
        return CoMoments(
            count=n,
            mean_x=mean_x,
            mean_y=mean_y,
            m2x=self.m2x + dx * (x - mean_x),
            m2y=self.m2y + dy * (y - mean_y),
            cxy=self.cxy + dx * (y - mean_y),
        )

    def merge(self, other: "CoMoments") -> "CoMoments":
        """Chan pairwise combination of two bivariate accumulators."""
        if self.count == 0:
            return other
        if other.count == 0:
            return self
        if self.mean_x.shape != other.mean_x.shape:
            raise ValueError(
                f"cannot merge co-moments of shapes {self.mean_x.shape} "
                f"and {other.mean_x.shape}"
            )
        n = self.count + other.count
        w = self.count * other.count / n
        dx = other.mean_x - self.mean_x
        dy = other.mean_y - self.mean_y
        return CoMoments(
            count=n,
            mean_x=(self.count * self.mean_x + other.count * other.mean_x) / n,
            mean_y=(self.count * self.mean_y + other.count * other.mean_y) / n,
            m2x=self.m2x + other.m2x + np.square(dx) * w,
            m2y=self.m2y + other.m2y + np.square(dy) * w,
            cxy=self.cxy + other.cxy + dx * dy * w,
        )

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean_x": self.mean_x.tolist(),
            "mean_y": self.mean_y.tolist(),
            "m2x": self.m2x.tolist(),
            "m2y": self.m2y.tolist(),
            "cxy": self.cxy.tolist(),
        }


def merge_indexed(items: Iterable[tuple[int, _M]]) -> _M:
    """Fold ``(shard_index, accumulator)`` pairs in canonical index order.

    Sorting by shard index before folding makes the merged bits a pure
    function of the shard *set*: completion order, worker count and
    executor mode cannot change the result.  Duplicate indices raise —
    a shard counted twice is always a bug.
    """
    ordered = sorted(items, key=lambda pair: pair[0])
    if not ordered:
        raise ValueError("merge_indexed needs at least one accumulator")
    indices = [index for index, _ in ordered]
    if len(set(indices)) != len(indices):
        raise ValueError(f"duplicate shard indices in merge: {indices}")
    merged = ordered[0][1]
    for _index, stats in ordered[1:]:
        merged = merged.merge(stats)
    return merged
