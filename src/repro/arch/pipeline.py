"""A classic 5-stage pipeline model.

Assignment 3 asks "What is: Task, **Pipelining**, Shared Memory,
Communications, and Synchronization?"  This module answers the pipelining
part executably: an IF-ID-EX-MEM-WB pipeline that schedules a sequence of
abstract instructions and counts cycles under three configurations —
unpipelined, pipelined with stalls on hazards, and pipelined with
forwarding — so students can *measure* that

- an ideal pipeline approaches CPI 1 (vs 5 unpipelined),
- RAW hazards cost stalls, loads cost an extra load-use bubble even with
  forwarding,
- taken branches flush fetched instructions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

__all__ = ["Op", "Instr", "PipelineResult", "run_pipeline", "CLASSIC_STAGES"]

CLASSIC_STAGES = ("IF", "ID", "EX", "MEM", "WB")


class Op(enum.Enum):
    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"


@dataclass(frozen=True)
class Instr:
    """One abstract instruction: op, destination reg, source regs.

    ``taken`` marks a branch as taken (it flushes the fetch behind it).
    """

    op: Op
    dest: int | None = None
    sources: tuple[int, ...] = ()
    taken: bool = False

    def __post_init__(self) -> None:
        if self.op is Op.BRANCH and self.dest is not None:
            raise ValueError("branches do not write a destination register")
        for reg in (*(() if self.dest is None else (self.dest,)), *self.sources):
            if not 0 <= reg < 32:
                raise ValueError(f"register r{reg} out of range")


@dataclass(frozen=True)
class PipelineResult:
    """Cycle counts of one run."""

    n_instructions: int
    cycles: float
    stalls: int
    flushes: int

    @property
    def cpi(self) -> float:
        if self.n_instructions == 0:
            return 0.0
        return self.cycles / self.n_instructions


def run_pipeline(
    program: Sequence[Instr],
    pipelined: bool = True,
    forwarding: bool = True,
    branch_flush_cycles: int = 2,
) -> PipelineResult:
    """Cycle-count a straight-line program (branches flush, never loop).

    Hazard model (the standard textbook one):

    - unpipelined: every instruction takes ``len(stages)`` cycles;
    - pipelined without forwarding: a consumer must wait until the
      producer's WB — up to 2 stall cycles for an ALU producer in the
      immediately preceding slot;
    - pipelined with forwarding: ALU results forward with zero stalls;
      a load feeding the *next* instruction still costs one bubble
      (the load-use hazard);
    - a taken branch flushes ``branch_flush_cycles`` fetched instructions.
    """
    n = len(program)
    if n == 0:
        return PipelineResult(0, 0.0, 0, 0)
    depth = len(CLASSIC_STAGES)

    if not pipelined:
        return PipelineResult(n, float(n * depth), 0, 0)

    stalls = 0
    flushes = 0
    # ready[r] = issue-slot distance after which register r can be read
    # without stalling.  With forwarding: ALU=0, LOAD=1.  Without: both
    # must reach WB, i.e. distance 3 (producer in EX when consumer in ID
    # needs 2 stall cycles if adjacent).
    cycles = depth  # first instruction fills the pipe
    last_writer: dict[int, tuple[int, Op]] = {}   # reg -> (index, op)
    issue_cycle = 0
    for index, instr in enumerate(program):
        wait = 0
        for reg in instr.sources:
            if reg in last_writer:
                producer_index, producer_op = last_writer[reg]
                distance = index - producer_index
                if forwarding:
                    needed = 2 if producer_op is Op.LOAD else 1
                else:
                    needed = 4 if producer_op is Op.LOAD else 3
                wait = max(wait, max(0, needed - distance))
        stalls += wait
        if index > 0:
            cycles += 1 + wait
        if instr.dest is not None:
            last_writer[instr.dest] = (index, instr.op)
        if instr.op is Op.BRANCH and instr.taken:
            flushes += branch_flush_cycles
            cycles += branch_flush_cycles
    return PipelineResult(
        n_instructions=n, cycles=float(cycles), stalls=stalls, flushes=flushes
    )
