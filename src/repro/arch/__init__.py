"""Computer-architecture substrate for Assignments 2–3 and the course's
ISA-comparison thread.

- :mod:`repro.arch.flynn` — executable models of Flynn's taxonomy
  (Assignment 2: "multi-processor computer architectures (e.g. SISD,
  SIMD, MISD, and MIMD)"; Assignment 3: "Classify parallel computers
  based on Flynn's taxonomy").
- :mod:`repro.arch.memory` — parallel computer memory architectures
  (UMA / NUMA / distributed) and the parallel-programming-model catalog
  (Assignment 3's questions).
- :mod:`repro.arch.isa` — a tiny RISC (ARM-like) and CISC (x86-like)
  machine pair with assemblers and interpreters, for the course's
  "compare ARM with Intel X86 in terms of data movement, instruction
  encoding, immediate value representation, and memory layout" task.
"""

from repro.arch.flynn import (
    MIMDMachine,
    MISDMachine,
    SIMDMachine,
    SISDMachine,
    classify,
)
from repro.arch.gpu import SIMTMachine, SIMTResult
from repro.arch.isa import (
    CISCMachine,
    RISCMachine,
    compare_isas,
    assemble_cisc,
    assemble_risc,
)
from repro.arch.pipeline import Instr, Op, PipelineResult, run_pipeline
from repro.arch.memory import (
    MEMORY_ARCHITECTURES,
    PROGRAMMING_MODELS,
    DistributedMemory,
    NUMAMemory,
    UMAMemory,
)

__all__ = [
    "CISCMachine",
    "DistributedMemory",
    "Instr",
    "MEMORY_ARCHITECTURES",
    "MIMDMachine",
    "MISDMachine",
    "NUMAMemory",
    "Op",
    "PipelineResult",
    "PROGRAMMING_MODELS",
    "RISCMachine",
    "SIMTMachine",
    "SIMTResult",
    "SIMDMachine",
    "SISDMachine",
    "UMAMemory",
    "assemble_cisc",
    "assemble_risc",
    "classify",
    "compare_isas",
    "run_pipeline",
]
