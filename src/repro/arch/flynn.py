"""Flynn's taxonomy as four executable machine models.

Each machine runs a tiny element-wise kernel and reports how many
instruction streams and data streams it used — making the taxonomy's
definitions checkable instead of memorised:

- **SISD** — one instruction stream, one data stream: a scalar loop.
- **SIMD** — one instruction stream applied to many lanes per step
  (lock-step): a vector unit.
- **MISD** — many instruction streams over one data stream: redundant /
  pipelined processing of the same input (the rare one; systolic arrays
  and fault-tolerant voters are the textbook examples).
- **MIMD** — many instruction streams, many data streams: independent
  cores, like the Pi's four A53s.

All four produce per-step execution traces, so tests can assert e.g.
SIMD's lock-step property (every lane executes the same op each step)
and MIMD's independence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = [
    "StepTrace",
    "MachineRun",
    "SISDMachine",
    "SIMDMachine",
    "MISDMachine",
    "MIMDMachine",
    "classify",
]


@dataclass(frozen=True)
class StepTrace:
    """One time step: which (instruction, data index) pairs ran."""

    step: int
    ops: tuple[tuple[str, int], ...]   # (instruction label, data index)


@dataclass(frozen=True)
class MachineRun:
    """Result + trace of one kernel execution."""

    taxonomy: str
    output: tuple[object, ...]
    trace: tuple[StepTrace, ...]
    instruction_streams: int
    data_streams: int

    @property
    def n_steps(self) -> int:
        return len(self.trace)


class SISDMachine:
    """One PE, one instruction stream, one data stream."""

    taxonomy = "SISD"

    def run(self, op: Callable[[object], object], data: Sequence[object]) -> MachineRun:
        out = []
        trace = []
        for step, x in enumerate(data):
            out.append(op(x))
            trace.append(StepTrace(step=step, ops=((op.__name__, step),)))
        return MachineRun(
            taxonomy=self.taxonomy,
            output=tuple(out),
            trace=tuple(trace),
            instruction_streams=1,
            data_streams=1,
        )


class SIMDMachine:
    """One instruction stream broadcast to ``n_lanes`` in lock-step."""

    taxonomy = "SIMD"

    def __init__(self, n_lanes: int = 4) -> None:
        if n_lanes < 1:
            raise ValueError(f"n_lanes must be >= 1, got {n_lanes}")
        self.n_lanes = n_lanes

    def run(self, op: Callable[[object], object], data: Sequence[object]) -> MachineRun:
        out: list[object] = [None] * len(data)
        trace = []
        for step, start in enumerate(range(0, len(data), self.n_lanes)):
            lane_ops = []
            for index in range(start, min(start + self.n_lanes, len(data))):
                out[index] = op(data[index])   # same op, every lane, same step
                lane_ops.append((op.__name__, index))
            trace.append(StepTrace(step=step, ops=tuple(lane_ops)))
        return MachineRun(
            taxonomy=self.taxonomy,
            output=tuple(out),
            trace=tuple(trace),
            instruction_streams=1,
            data_streams=self.n_lanes,
        )


class MISDMachine:
    """Many instruction streams over one data stream.

    Each datum flows through *all* units; the output per datum is the
    tuple of every unit's result (the fault-tolerant-voter reading).
    """

    taxonomy = "MISD"

    def run(
        self, ops: Sequence[Callable[[object], object]], data: Sequence[object]
    ) -> MachineRun:
        if not ops:
            raise ValueError("MISD needs at least one instruction stream")
        out = []
        trace = []
        for step, x in enumerate(data):
            results = tuple(op(x) for op in ops)
            out.append(results)
            trace.append(
                StepTrace(step=step, ops=tuple((op.__name__, step) for op in ops))
            )
        return MachineRun(
            taxonomy=self.taxonomy,
            output=tuple(out),
            trace=tuple(trace),
            instruction_streams=len(ops),
            data_streams=1,
        )


class MIMDMachine:
    """Independent processors, each with its own program and data."""

    taxonomy = "MIMD"

    def run(
        self,
        programs: Sequence[Callable[[Sequence[object]], object]],
        data_streams: Sequence[Sequence[object]],
    ) -> MachineRun:
        if len(programs) != len(data_streams):
            raise ValueError(
                f"{len(programs)} programs for {len(data_streams)} data streams"
            )
        out = tuple(prog(data) for prog, data in zip(programs, data_streams))
        trace = (
            StepTrace(
                step=0,
                ops=tuple((prog.__name__, i) for i, prog in enumerate(programs)),
            ),
        )
        return MachineRun(
            taxonomy=self.taxonomy,
            output=out,
            trace=trace,
            instruction_streams=len(programs),
            data_streams=len(data_streams),
        )


def classify(instruction_streams: int, data_streams: int) -> str:
    """Flynn classification from stream counts (Assignment 3's question)."""
    if instruction_streams < 1 or data_streams < 1:
        raise ValueError("stream counts must be >= 1")
    single_i = instruction_streams == 1
    single_d = data_streams == 1
    if single_i and single_d:
        return "SISD"
    if single_i:
        return "SIMD"
    if single_d:
        return "MISD"
    return "MIMD"
