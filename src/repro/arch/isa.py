"""A tiny RISC (ARM-like) vs CISC (x86-like) machine pair.

CSc 3210 teaches Intel x86; the paper chose the Pi partly to expose
students to ARM and have them "compare it with Intel X86 in terms of data
movement, instruction encoding, immediate value representation, and
memory layout".  This module makes that comparison executable with two
miniature machines that share a word size (32-bit) and endianness
(little), and differ exactly where the real ISAs differ:

==================  ===========================  ==========================
aspect              RISC-mini (ARM-like)          CISC-mini (x86-like)
==================  ===========================  ==========================
data movement       load/store only — ALU ops     memory operands allowed —
                    touch registers               ``ADD r, [mem]`` in one op
encoding            fixed 4 bytes/instruction     variable 2–7 bytes
immediates          12-bit inline; larger values  full 32-bit inline
                    need a MOVW/MOVT pair
registers           16 (r0..r15)                  8 (a..h)
==================  ===========================  ==========================

Both assemblers produce real byte encodings (inspectable hexdumps) and
both interpreters execute them against a little-endian byte-addressed
memory, so "sum an array" runs on each and the tests assert the two
machines compute the same value through genuinely different instruction
streams.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "Instruction",
    "RISCMachine",
    "CISCMachine",
    "assemble_risc",
    "assemble_cisc",
    "sum_array_risc",
    "sum_array_cisc",
    "compare_isas",
    "ISAComparison",
]

WORD = 4
RISC_IMM_BITS = 12
RISC_IMM_MAX = (1 << RISC_IMM_BITS) - 1


@dataclass(frozen=True)
class Instruction:
    """One assembled instruction: mnemonic + operands + its encoding."""

    mnemonic: str
    operands: tuple[object, ...]
    encoding: bytes

    @property
    def size(self) -> int:
        return len(self.encoding)

    def __str__(self) -> str:
        ops = ", ".join(str(o) for o in self.operands)
        return f"{self.mnemonic:6s} {ops:20s} ; {self.encoding.hex()}"


# ---------------------------------------------------------------------------
# RISC-mini
# ---------------------------------------------------------------------------

_RISC_OPCODES = {
    "MOVW": 0x01,   # rd, imm12           (low half)
    "MOVT": 0x02,   # rd, imm12           (shifted into high bits)
    "ADD": 0x03,    # rd, rn, rm
    "SUB": 0x04,
    "ADDI": 0x05,   # rd, rn, imm12
    "LDR": 0x06,    # rd, [rn, imm12]
    "STR": 0x07,    # rs, [rn, imm12]
    "CMP": 0x08,    # rn, rm
    "BNE": 0x09,    # imm12 (absolute instruction index)
    "HALT": 0x0A,
}


def _risc_encode(op: str, a: int = 0, b: int = 0, imm: int = 0) -> bytes:
    """Fixed 4-byte encoding: opcode(8) | ra(4) rb(4) | imm12 padded."""
    if not 0 <= imm <= RISC_IMM_MAX:
        raise ValueError(f"RISC immediate {imm} exceeds {RISC_IMM_BITS} bits")
    if not (0 <= a < 16 and 0 <= b < 16):
        raise ValueError("RISC register out of range")
    word = (_RISC_OPCODES[op] << 24) | (a << 20) | (b << 16) | imm
    return struct.pack("<I", word)


def assemble_risc(program: Sequence[tuple]) -> list[Instruction]:
    """Assemble RISC-mini source.

    Source lines are tuples: ``("ADD", rd, rn, rm)``, ``("LDI", rd, imm32)``
    (a pseudo-instruction that expands to MOVW/MOVT when the immediate
    does not fit 12 bits — the ARM idiom), ``("LDR", rd, rn, off)``,
    ``("BNE", target_index)``, ``("HALT",)``, ...
    """
    out: list[Instruction] = []
    for line in program:
        op, *args = line
        if op == "LDI":
            rd, imm = args
            if imm < 0 or imm > 0xFFFFFFFF:
                raise ValueError(f"immediate {imm} out of 32-bit range")
            if imm <= RISC_IMM_MAX:
                out.append(Instruction("MOVW", (rd, imm), _risc_encode("MOVW", rd, 0, imm)))
            else:
                low = imm & RISC_IMM_MAX
                high = imm >> RISC_IMM_BITS
                if high > RISC_IMM_MAX:
                    raise ValueError(
                        f"immediate {imm} needs more than 24 bits; RISC-mini "
                        "cannot represent it in two instructions"
                    )
                out.append(Instruction("MOVW", (rd, low), _risc_encode("MOVW", rd, 0, low)))
                out.append(Instruction("MOVT", (rd, high), _risc_encode("MOVT", rd, 0, high)))
        elif op in ("ADD", "SUB"):
            rd, rn, rm = args
            out.append(Instruction(op, (rd, rn, rm), _risc_encode(op, rd, rn, rm)))
        elif op == "ADDI":
            rd, rn, imm = args
            out.append(Instruction(op, (rd, rn, imm), _risc_encode(op, rd, rn, imm)))
        elif op in ("LDR", "STR"):
            r, rn, off = args
            out.append(Instruction(op, (r, rn, off), _risc_encode(op, r, rn, off)))
        elif op == "CMP":
            rn, rm = args
            out.append(Instruction(op, (rn, rm), _risc_encode(op, rn, rm)))
        elif op == "BNE":
            (target,) = args
            out.append(Instruction(op, (target,), _risc_encode(op, 0, 0, target)))
        elif op == "HALT":
            out.append(Instruction(op, (), _risc_encode(op)))
        else:
            raise ValueError(f"unknown RISC mnemonic {op!r}")
    return out


class RISCMachine:
    """Interpreter for RISC-mini: 16 registers, load/store architecture."""

    def __init__(self, memory_size: int = 4096) -> None:
        self.registers = [0] * 16
        self.memory = bytearray(memory_size)
        self.zero_flag = False
        self.instructions_executed = 0
        self.loads = 0
        self.stores = 0

    def load_words(self, address: int, values: Sequence[int]) -> None:
        for i, v in enumerate(values):
            self.memory[address + i * WORD : address + (i + 1) * WORD] = struct.pack("<i", v)

    def _read_word(self, address: int) -> int:
        return struct.unpack_from("<i", self.memory, address)[0]

    def _write_word(self, address: int, value: int) -> None:
        struct.pack_into("<i", self.memory, address, value & 0xFFFFFFFF if value >= 0 else value)

    def run(self, program: list[Instruction], max_steps: int = 1_000_000) -> None:
        pc = 0
        regs = self.registers
        for _ in range(max_steps):
            if pc >= len(program):
                raise RuntimeError("fell off the end of the program (no HALT)")
            instr = program[pc]
            self.instructions_executed += 1
            op, args = instr.mnemonic, instr.operands
            if op == "MOVW":
                regs[args[0]] = args[1]
            elif op == "MOVT":
                regs[args[0]] |= args[1] << RISC_IMM_BITS
            elif op == "ADD":
                regs[args[0]] = regs[args[1]] + regs[args[2]]
            elif op == "SUB":
                regs[args[0]] = regs[args[1]] - regs[args[2]]
            elif op == "ADDI":
                regs[args[0]] = regs[args[1]] + args[2]
            elif op == "LDR":
                regs[args[0]] = self._read_word(regs[args[1]] + args[2])
                self.loads += 1
            elif op == "STR":
                self._write_word(regs[args[1]] + args[2], regs[args[0]])
                self.stores += 1
            elif op == "CMP":
                self.zero_flag = regs[args[0]] == regs[args[1]]
            elif op == "BNE":
                if not self.zero_flag:
                    pc = args[0]
                    continue
            elif op == "HALT":
                return
            else:  # pragma: no cover - assembler rejects unknowns
                raise RuntimeError(f"bad instruction {op}")
            pc += 1
        raise RuntimeError(f"exceeded {max_steps} steps — infinite loop?")


# ---------------------------------------------------------------------------
# CISC-mini
# ---------------------------------------------------------------------------

_CISC_OPCODES = {
    "MOVI": 0x10,      # reg <- imm32                  (2 + 4 bytes)
    "MOVRM": 0x11,     # reg <- [reg + disp32]         (2 + 4 bytes)
    "MOVMR": 0x12,     # [reg + disp32] <- reg         (2 + 4 bytes)
    "ADDRM": 0x13,     # reg += [reg + disp32]         (2 + 4 bytes) memory operand!
    "ADDRR": 0x14,     # reg += reg                    (2 bytes)
    "ADDI": 0x15,      # reg += imm32                  (2 + 4 bytes)
    "SUBRR": 0x16,     # reg -= reg                    (2 bytes)
    "CMPRR": 0x17,     # flags <- reg == reg           (2 bytes)
    "JNE": 0x18,       # jump to instruction index     (1 + 2 bytes)
    "HALT": 0x19,      # 1 byte
}


def _modrm(a: int, b: int) -> int:
    if not (0 <= a < 8 and 0 <= b < 8):
        raise ValueError("CISC register out of range")
    return (a << 3) | b


def assemble_cisc(program: Sequence[tuple]) -> list[Instruction]:
    """Assemble CISC-mini source (same tuple convention as the RISC one)."""
    out: list[Instruction] = []
    for line in program:
        op, *args = line
        code = _CISC_OPCODES.get(op)
        if code is None:
            raise ValueError(f"unknown CISC mnemonic {op!r}")
        if op == "MOVI":
            r, imm = args
            enc = bytes([code, _modrm(r, 0)]) + struct.pack("<i", imm)
        elif op in ("MOVRM", "MOVMR", "ADDRM"):
            r, base, disp = args
            enc = bytes([code, _modrm(r, base)]) + struct.pack("<i", disp)
        elif op in ("ADDRR", "SUBRR", "CMPRR"):
            ra, rb = args
            enc = bytes([code, _modrm(ra, rb)])
        elif op == "ADDI":
            r, imm = args
            enc = bytes([code, _modrm(r, 0)]) + struct.pack("<i", imm)
        elif op == "JNE":
            (target,) = args
            enc = bytes([code]) + struct.pack("<H", target)
        elif op == "HALT":
            enc = bytes([code])
        out.append(Instruction(op, tuple(args), enc))
    return out


class CISCMachine:
    """Interpreter for CISC-mini: 8 registers, memory operands allowed."""

    def __init__(self, memory_size: int = 4096) -> None:
        self.registers = [0] * 8
        self.memory = bytearray(memory_size)
        self.zero_flag = False
        self.instructions_executed = 0
        self.memory_operand_ops = 0

    def load_words(self, address: int, values: Sequence[int]) -> None:
        for i, v in enumerate(values):
            struct.pack_into("<i", self.memory, address + i * WORD, v)

    def _read_word(self, address: int) -> int:
        return struct.unpack_from("<i", self.memory, address)[0]

    def run(self, program: list[Instruction], max_steps: int = 1_000_000) -> None:
        pc = 0
        regs = self.registers
        for _ in range(max_steps):
            if pc >= len(program):
                raise RuntimeError("fell off the end of the program (no HALT)")
            instr = program[pc]
            self.instructions_executed += 1
            op, args = instr.mnemonic, instr.operands
            if op == "MOVI":
                regs[args[0]] = args[1]
            elif op == "MOVRM":
                regs[args[0]] = self._read_word(regs[args[1]] + args[2])
                self.memory_operand_ops += 1
            elif op == "MOVMR":
                struct.pack_into("<i", self.memory, regs[args[1]] + args[2], regs[args[0]])
                self.memory_operand_ops += 1
            elif op == "ADDRM":
                regs[args[0]] += self._read_word(regs[args[1]] + args[2])
                self.memory_operand_ops += 1
            elif op == "ADDRR":
                regs[args[0]] += regs[args[1]]
            elif op == "ADDI":
                regs[args[0]] += args[1]
            elif op == "SUBRR":
                regs[args[0]] -= regs[args[1]]
            elif op == "CMPRR":
                self.zero_flag = regs[args[0]] == regs[args[1]]
            elif op == "JNE":
                if not self.zero_flag:
                    pc = args[0]
                    continue
            elif op == "HALT":
                return
            pc += 1
        raise RuntimeError(f"exceeded {max_steps} steps — infinite loop?")


# ---------------------------------------------------------------------------
# The comparison kernel: sum an n-element array at a given address.
# ---------------------------------------------------------------------------

def sum_array_risc(n: int, base: int = 256) -> list[Instruction]:
    """RISC-mini program: r0 = sum of n words at ``base``.

    Registers: r0 acc, r1 pointer, r2 loop index, r3 scratch, r4 n.
    Note the explicit LDR in the loop — on a load/store architecture data
    must move into a register before the ALU can touch it.
    """
    source = [
        ("LDI", 0, 0),
        ("LDI", 1, base),
        ("LDI", 2, 0),
        ("LDI", 4, n),
    ]
    prologue = assemble_risc(source)
    loop_start = len(prologue)
    body = [
        ("LDR", 3, 1, 0),         # scratch = [ptr]
        ("ADD", 0, 0, 3),         # acc += scratch
        ("ADDI", 1, 1, WORD),     # ptr += 4
        ("ADDI", 2, 2, 1),        # i += 1
        ("CMP", 2, 4),            # i == n ?
        ("BNE", loop_start),      # loop while not equal
        ("HALT",),
    ]
    return prologue + assemble_risc(body)


def sum_array_cisc(n: int, base: int = 256) -> list[Instruction]:
    """CISC-mini program: a = sum of n words at ``base``.

    Registers: a(0) acc, b(1) pointer, c(2) i, d(3) n.  The loop adds
    straight from memory (``ADDRM``) — no separate load.
    """
    prologue = assemble_cisc([
        ("MOVI", 0, 0),
        ("MOVI", 1, base),
        ("MOVI", 2, 0),
        ("MOVI", 3, n),
    ])
    loop_start = len(prologue)
    body = assemble_cisc([
        ("ADDRM", 0, 1, 0),       # acc += [ptr]   (memory operand)
        ("ADDI", 1, WORD),        # ptr += 4
        ("ADDI", 2, 1),           # i += 1
        ("CMPRR", 2, 3),
        ("JNE", loop_start),
        ("HALT",),
    ])
    return prologue + body


@dataclass(frozen=True)
class ISAComparison:
    """The four comparison axes of the course task, measured."""

    n_elements: int
    result_risc: int
    result_cisc: int
    risc_instruction_count: int       # static program length
    cisc_instruction_count: int
    risc_bytes: int
    cisc_bytes: int
    risc_executed: int                # dynamic instruction count
    cisc_executed: int
    risc_fixed_width: int
    cisc_min_width: int
    cisc_max_width: int
    risc_loads: int
    cisc_memory_operand_ops: int
    risc_max_inline_immediate: int
    cisc_max_inline_immediate: int

    def render(self) -> str:
        return "\n".join([
            f"sum of {self.n_elements} words: RISC={self.result_risc} CISC={self.result_cisc}",
            f"encoding: RISC {self.risc_instruction_count} instrs x "
            f"{self.risc_fixed_width} B = {self.risc_bytes} B; "
            f"CISC {self.cisc_instruction_count} instrs, {self.cisc_min_width}-"
            f"{self.cisc_max_width} B each = {self.cisc_bytes} B",
            f"dynamic instructions: RISC {self.risc_executed}, CISC {self.cisc_executed}",
            f"data movement: RISC explicit loads = {self.risc_loads}; "
            f"CISC memory-operand ops = {self.cisc_memory_operand_ops}",
            f"immediates: RISC inline <= {self.risc_max_inline_immediate} "
            f"(larger needs MOVW/MOVT); CISC inline <= "
            f"{self.cisc_max_inline_immediate}",
            "memory layout: both little-endian, byte-addressed, 4-byte words",
        ])


def compare_isas(values: Sequence[int], base: int = 256) -> ISAComparison:
    """Run the sum-array kernel on both machines and compare the ISAs."""
    if not values:
        raise ValueError("need at least one value to sum")
    n = len(values)

    risc = RISCMachine()
    risc.load_words(base, values)
    risc_prog = sum_array_risc(n, base)
    risc.run(risc_prog)

    cisc = CISCMachine()
    cisc.load_words(base, values)
    cisc_prog = sum_array_cisc(n, base)
    cisc.run(cisc_prog)

    return ISAComparison(
        n_elements=n,
        result_risc=risc.registers[0],
        result_cisc=cisc.registers[0],
        risc_instruction_count=len(risc_prog),
        cisc_instruction_count=len(cisc_prog),
        risc_bytes=sum(i.size for i in risc_prog),
        cisc_bytes=sum(i.size for i in cisc_prog),
        risc_executed=risc.instructions_executed,
        cisc_executed=cisc.instructions_executed,
        risc_fixed_width=WORD,
        cisc_min_width=min(i.size for i in cisc_prog),
        cisc_max_width=max(i.size for i in cisc_prog),
        risc_loads=risc.loads,
        cisc_memory_operand_ops=cisc.memory_operand_ops,
        risc_max_inline_immediate=RISC_IMM_MAX,
        cisc_max_inline_immediate=2**31 - 1,
    )


# ---------------------------------------------------------------------------
# Disassembly: bytes back to instructions (round-trip property-tested).
# ---------------------------------------------------------------------------

_RISC_OPCODE_NAMES = {code: name for name, code in _RISC_OPCODES.items()}
_CISC_OPCODE_NAMES = {code: name for name, code in _CISC_OPCODES.items()}


def disassemble_risc(blob: bytes) -> list[Instruction]:
    """Decode a RISC-mini byte stream (fixed 4-byte instructions)."""
    if len(blob) % 4:
        raise ValueError(f"RISC blob length {len(blob)} is not a multiple of 4")
    out: list[Instruction] = []
    for offset in range(0, len(blob), 4):
        (word,) = struct.unpack_from("<I", blob, offset)
        opcode = word >> 24
        a = (word >> 20) & 0xF
        b = (word >> 16) & 0xF
        imm = word & 0xFFF
        name = _RISC_OPCODE_NAMES.get(opcode)
        if name is None:
            raise ValueError(f"unknown RISC opcode 0x{opcode:02x} at offset {offset}")
        if name in ("MOVW", "MOVT"):
            operands: tuple = (a, imm)
        elif name in ("ADD", "SUB"):
            # Register-register ops carry rm in the low imm field.
            operands = (a, b, imm)
        elif name == "ADDI":
            operands = (a, b, imm)
        elif name in ("LDR", "STR"):
            operands = (a, b, imm)
        elif name == "CMP":
            operands = (a, b)
        elif name == "BNE":
            operands = (imm,)
        else:  # HALT
            operands = ()
        out.append(Instruction(name, operands, blob[offset:offset + 4]))
    return out


def disassemble_cisc(blob: bytes) -> list[Instruction]:
    """Decode a CISC-mini byte stream (variable-width instructions)."""
    out: list[Instruction] = []
    offset = 0
    sizes = {"HALT": 1, "JNE": 3, "ADDRR": 2, "SUBRR": 2, "CMPRR": 2,
             "MOVI": 6, "ADDI": 6, "MOVRM": 6, "MOVMR": 6, "ADDRM": 6}
    while offset < len(blob):
        opcode = blob[offset]
        name = _CISC_OPCODE_NAMES.get(opcode)
        if name is None:
            raise ValueError(f"unknown CISC opcode 0x{opcode:02x} at offset {offset}")
        size = sizes[name]
        if offset + size > len(blob):
            raise ValueError(f"truncated CISC instruction at offset {offset}")
        if name == "HALT":
            operands: tuple = ()
        elif name == "JNE":
            (target,) = struct.unpack_from("<H", blob, offset + 1)
            operands = (target,)
        elif name in ("ADDRR", "SUBRR", "CMPRR"):
            modrm = blob[offset + 1]
            operands = (modrm >> 3, modrm & 0x7)
        elif name in ("MOVI", "ADDI"):
            modrm = blob[offset + 1]
            (imm,) = struct.unpack_from("<i", blob, offset + 2)
            operands = (modrm >> 3, imm)
        else:  # MOVRM / MOVMR / ADDRM
            modrm = blob[offset + 1]
            (disp,) = struct.unpack_from("<i", blob, offset + 2)
            operands = (modrm >> 3, modrm & 0x7, disp)
        out.append(Instruction(name, operands, blob[offset:offset + size]))
        offset += size
    return out


def program_bytes(program: list[Instruction]) -> bytes:
    """Concatenate a program's encodings (what sits in instruction memory)."""
    return b"".join(instr.encoding for instr in program)
