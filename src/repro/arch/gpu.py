"""A SIMT (GPU-style) execution model.

The paper's introduction lists "general-purpose GPU" among the parallel
concepts students should meet ([1], the ACM/IEEE curriculum guidelines),
and the Pi itself carries a VideoCore GPU.  This module models the part
of GPU execution that differs from the CPU models in :mod:`flynn`:
**SIMT** — threads grouped into warps that execute one instruction
stream in lock-step, with *branch divergence* serialising the two sides
of a conditional.

:func:`run_kernel` executes a Python per-thread kernel over a grid and
counts warp-instructions under the divergence rule, so the classic
shapes are measurable: a uniform kernel costs 1/warp-width of the scalar
instruction count, a fully divergent kernel loses the SIMT advantage,
and sorting keys to make warps uniform wins it back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = ["SIMTResult", "SIMTMachine"]


@dataclass(frozen=True)
class SIMTResult:
    """Output + execution accounting for one kernel launch."""

    output: tuple[object, ...]
    n_threads: int
    warp_width: int
    n_warps: int
    warp_instructions: int     # instructions issued at warp granularity
    divergent_warps: int

    @property
    def simt_efficiency(self) -> float:
        """Scalar instructions executed / (warp instructions x width):
        1.0 when every warp is uniform, lower under divergence."""
        if self.warp_instructions == 0:
            return 0.0
        scalar = sum(1 for _ in range(self.n_threads))
        # each thread executes exactly its branch's instruction count; we
        # report the ratio of useful lanes, computed by the machine.
        return self._efficiency  # type: ignore[attr-defined]


class SIMTMachine:
    """Warps of ``warp_width`` lanes executing in lock-step.

    Kernels are expressed as ``(branch_key, body)``: ``branch_key(i)``
    decides which side of the kernel's conditional thread *i* takes, and
    ``body(i, key)`` computes its output.  Each *distinct key within a
    warp* costs one serialised pass over the warp — the SIMT divergence
    rule.  ``instructions_per_pass`` abstracts the kernel body length.
    """

    def __init__(self, warp_width: int = 8, instructions_per_pass: int = 1) -> None:
        if warp_width < 1:
            raise ValueError(f"warp_width must be >= 1, got {warp_width}")
        if instructions_per_pass < 1:
            raise ValueError("instructions_per_pass must be >= 1")
        self.warp_width = warp_width
        self.instructions_per_pass = instructions_per_pass

    def run_kernel(
        self,
        n_threads: int,
        branch_key: Callable[[int], object],
        body: Callable[[int, object], object],
    ) -> SIMTResult:
        """Launch ``n_threads`` threads; returns outputs + warp accounting."""
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        output: list[object] = [None] * n_threads
        warp_instructions = 0
        divergent = 0
        active_lane_passes = 0
        n_warps = 0
        for start in range(0, n_threads, self.warp_width):
            lanes = list(range(start, min(start + self.warp_width, n_threads)))
            n_warps += 1
            keys: dict[object, list[int]] = {}
            for lane in lanes:
                keys.setdefault(branch_key(lane), []).append(lane)
            if len(keys) > 1:
                divergent += 1
            # One serialized pass per distinct key; inactive lanes idle.
            for key, members in keys.items():
                warp_instructions += self.instructions_per_pass
                active_lane_passes += len(members)
                for lane in members:
                    output[lane] = body(lane, key)
        result = SIMTResult(
            output=tuple(output),
            n_threads=n_threads,
            warp_width=self.warp_width,
            n_warps=n_warps,
            warp_instructions=warp_instructions,
            divergent_warps=divergent,
        )
        # Efficiency: useful lanes / issued lane-slots.
        issued_lane_slots = warp_instructions * self.warp_width
        object.__setattr__(result, "_efficiency",
                           active_lane_passes * self.instructions_per_pass
                           / issued_lane_slots if issued_lane_slots else 0.0)
        return result
