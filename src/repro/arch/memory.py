"""Parallel computer memory architectures and programming models.

Assignment 3: "List and briefly describe the types of Parallel Computer
Memory Architecture.  What type is used by OpenMP and why?  Compare
Shared Memory Model with Threads Model."

The three architectures are small cost models with an ``access_us(core,
address)`` method, so their defining property is measurable:

- **UMA** — every core reaches every address at the same latency (the
  Pi: four cores, one LPDDR2 bank);
- **NUMA** — each core has a *home* region; remote regions cost a
  multiplier;
- **Distributed** — a core can only address its own memory; remote data
  moves via explicit messages with per-message latency + per-byte cost
  (the architecture MPI programs against).
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

__all__ = [
    "UMAMemory",
    "NUMAMemory",
    "DistributedMemory",
    "RemoteAccessError",
    "MEMORY_ARCHITECTURES",
    "PROGRAMMING_MODELS",
]


class RemoteAccessError(RuntimeError):
    """A distributed-memory core touched an address it does not own."""


@dataclass(frozen=True)
class UMAMemory:
    """Uniform memory access: one shared bank, symmetric latency."""

    n_cores: int = 4
    size: int = 1 << 20
    latency_us: float = 0.1

    def access_us(self, core: int, address: int) -> float:
        self._check(core, address)
        return self.latency_us

    def _check(self, core: int, address: int) -> None:
        if not 0 <= core < self.n_cores:
            raise ValueError(f"core {core} out of range")
        if not 0 <= address < self.size:
            raise ValueError(f"address {address} out of range")


@dataclass(frozen=True)
class NUMAMemory:
    """Non-uniform memory access: local fast, remote slower."""

    n_cores: int = 4
    size: int = 1 << 20
    local_latency_us: float = 0.1
    remote_factor: float = 3.0

    def home_of(self, address: int) -> int:
        """The core whose memory controller owns this address."""
        if not 0 <= address < self.size:
            raise ValueError(f"address {address} out of range")
        region = self.size // self.n_cores
        return min(address // region, self.n_cores - 1)

    def access_us(self, core: int, address: int) -> float:
        if not 0 <= core < self.n_cores:
            raise ValueError(f"core {core} out of range")
        if self.home_of(address) == core:
            return self.local_latency_us
        return self.local_latency_us * self.remote_factor


@dataclass(frozen=True)
class DistributedMemory:
    """Separate memories; remote data only via explicit messages."""

    n_nodes: int = 4
    node_size: int = 1 << 18
    local_latency_us: float = 0.1
    message_latency_us: float = 50.0
    per_byte_us: float = 0.01

    def owner_of(self, address: int) -> int:
        if not 0 <= address < self.n_nodes * self.node_size:
            raise ValueError(f"address {address} out of range")
        return address // self.node_size

    def access_us(self, node: int, address: int) -> float:
        """Direct load/store: only legal on the owning node."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range")
        if self.owner_of(address) != node:
            raise RemoteAccessError(
                f"node {node} cannot address {address} (owned by "
                f"{self.owner_of(address)}); send a message instead"
            )
        return self.local_latency_us

    def message_us(self, n_bytes: int) -> float:
        """Cost of moving ``n_bytes`` between nodes explicitly."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be >= 0")
        return self.message_latency_us + self.per_byte_us * n_bytes


#: Assignment 3's catalogue answers, as structured data.
MEMORY_ARCHITECTURES: Mapping[str, str] = MappingProxyType({
    "shared memory (UMA)": (
        "all processors address one memory with uniform latency; "
        "global address space, programmer synchronises access"
    ),
    "shared memory (NUMA)": (
        "physically partitioned but globally addressable memory; access "
        "time depends on which processor owns the address"
    ),
    "distributed memory": (
        "each processor has private memory; remote data moves by "
        "explicit messages (no global address space)"
    ),
    "hybrid": (
        "clusters of shared-memory nodes connected by a network — "
        "OpenMP within a node, MPI between nodes"
    ),
})

#: "What are the Parallel Programming Models?" — with the OpenMP answer.
PROGRAMMING_MODELS: Mapping[str, str] = MappingProxyType({
    "shared memory (no threads)": (
        "tasks read/write a common address space with locks/semaphores; "
        "no explicit data ownership"
    ),
    "threads": (
        "one process forks lightweight execution paths with private "
        "stacks over shared memory — OpenMP and Pthreads; OpenMP uses "
        "this model because the Pi's four cores share one memory, so "
        "compiler directives can parallelise loops without moving data"
    ),
    "message passing": (
        "tasks with private memories exchange send/receive pairs — MPI"
    ),
    "data parallel (PGAS)": (
        "tasks perform the same operation on partitions of a global "
        "array"
    ),
    "hybrid": "MPI across nodes combined with OpenMP/GPU within a node",
    "SPMD": (
        "high-level pattern: every task runs the same program on "
        "different data, branching on its rank/thread id"
    ),
})


def shared_vs_threads_comparison() -> tuple[tuple[str, str, str], ...]:
    """'Compare Shared Memory Model with Threads Model' — as rows of
    (aspect, shared-memory answer, threads answer)."""
    return (
        ("unit of execution", "heavyweight processes", "lightweight threads in one process"),
        ("address space", "one global space attached by tasks", "implicitly shared by all threads"),
        ("communication", "reads/writes + locks/semaphores", "reads/writes + private stack data"),
        ("typical API", "SysV shm, POSIX shm_open", "OpenMP directives, Pthreads"),
        ("data ownership", "none — programmer disciplines access", "none — scope (private/shared) disciplines access"),
    )
