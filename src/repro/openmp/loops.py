"""Work-sharing loops: ``#pragma omp parallel for``.

Assignment 3 has students observe how OpenMP "maps threads to parallel
loop iterations in chunks of size one, two, and three" under static and
dynamic schedules, and Assignment 4 adds the ``reduction`` clause.  This
module implements those semantics:

- **static** — iterations are divided into chunks of ``chunk`` size and
  assigned round-robin to threads *before* the loop runs; with no chunk
  given, each thread gets one contiguous block (OpenMP's default).
- **dynamic** — chunks are handed to threads on demand from a shared
  atomic counter; the mapping depends on timing.
- **guided** — like dynamic but the chunk size starts large and decays
  (``max(remaining / num_threads, chunk)``).

:func:`chunk_iterations` exposes the static mapping as a pure function so
its coverage/disjointness invariants are property-testable without
threads; the runtime path uses the same function.
"""

from __future__ import annotations

import contextlib
import enum
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.openmp.reduction import Reduction
from repro.openmp.runtime import OpenMP, ParallelContext
from repro.telemetry import instrument as telemetry

__all__ = ["ScheduleKind", "Schedule", "LoopTrace", "OrderedRegion", "chunk_iterations", "run_parallel_for"]


class ScheduleKind(enum.Enum):
    STATIC = "static"
    DYNAMIC = "dynamic"
    GUIDED = "guided"


@dataclass(frozen=True)
class Schedule:
    """An OpenMP loop schedule clause."""

    kind: ScheduleKind
    chunk: int | None = None

    def __post_init__(self) -> None:
        if self.chunk is not None and self.chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {self.chunk}")

    @classmethod
    def static(cls, chunk: int | None = None) -> "Schedule":
        return cls(ScheduleKind.STATIC, chunk)

    @classmethod
    def dynamic(cls, chunk: int = 1) -> "Schedule":
        return cls(ScheduleKind.DYNAMIC, chunk)

    @classmethod
    def guided(cls, chunk: int = 1) -> "Schedule":
        return cls(ScheduleKind.GUIDED, chunk)

    def __str__(self) -> str:
        if self.chunk is None:
            return f"schedule({self.kind.value})"
        return f"schedule({self.kind.value}, {self.chunk})"


def chunk_iterations(
    n_iterations: int, num_threads: int, schedule: Schedule
) -> list[list[int]]:
    """Static mapping: iteration indices assigned to each thread.

    Only defined for static schedules (dynamic/guided mappings are made at
    run time).  Invariants (property-tested): the per-thread lists are
    disjoint, cover ``range(n_iterations)`` exactly, and are increasing.
    """
    if schedule.kind is not ScheduleKind.STATIC:
        raise ValueError(f"{schedule} has no compile-time mapping")
    if n_iterations < 0:
        raise ValueError(f"n_iterations must be >= 0, got {n_iterations}")
    if num_threads < 1:
        raise ValueError(f"num_threads must be >= 1, got {num_threads}")

    assigned: list[list[int]] = [[] for _ in range(num_threads)]
    if schedule.chunk is None:
        # Default static: one near-equal contiguous block per thread
        # (the first ``remainder`` threads get one extra iteration).
        base = n_iterations // num_threads
        remainder = n_iterations % num_threads
        start = 0
        for tid in range(num_threads):
            size = base + (1 if tid < remainder else 0)
            assigned[tid] = list(range(start, start + size))
            start += size
    else:
        # Chunked static: chunks dealt round-robin.
        chunk = schedule.chunk
        for chunk_index, start in enumerate(range(0, n_iterations, chunk)):
            tid = chunk_index % num_threads
            assigned[tid].extend(range(start, min(start + chunk, n_iterations)))
    return assigned


@dataclass
class LoopTrace:
    """Who executed what: per-thread iteration lists, in execution order.

    The patternlets print exactly this to let students *see* the schedule.
    """

    schedule: Schedule
    num_threads: int
    per_thread: list[list[int]] = field(default_factory=list)

    def iterations_of(self, thread_num: int) -> list[int]:
        return self.per_thread[thread_num]

    def all_iterations(self) -> list[int]:
        return sorted(i for iterations in self.per_thread for i in iterations)

    def render(self) -> str:
        lines = [f"{self.schedule} with {self.num_threads} threads:"]
        for tid, iterations in enumerate(self.per_thread):
            lines.append(f"  thread {tid}: {iterations}")
        return "\n".join(lines)


def run_parallel_for(
    omp: OpenMP,
    n_iterations: int,
    body: Callable[[int, ParallelContext], Any],
    schedule: Schedule | None = None,
    reduction: Reduction | None = None,
    value: Callable[[int], Any] | None = None,
    num_threads: int | None = None,
) -> tuple[Any, LoopTrace]:
    """Execute a work-shared loop; returns (reduction result, trace).

    ``body(i, ctx)`` runs for every iteration ``i`` exactly once.  With a
    ``reduction`` and ``value``, each thread folds ``value(i)`` into a
    private accumulator seeded with the identity, and the partials are
    combined in thread order after the join (deterministic).
    """
    if schedule is None:
        schedule = Schedule.static()
    n_threads = num_threads if num_threads is not None else omp.num_threads
    if reduction is not None and value is None:
        raise ValueError("a reduction requires a value() function")

    trace = LoopTrace(schedule=schedule, num_threads=n_threads,
                      per_thread=[[] for _ in range(n_threads)])
    partials: list[Any] = [reduction.identity if reduction else None] * n_threads

    # One span for the whole work-shared loop, one per thread's share, and
    # (dynamic/guided) one instant per chunk grab — the trace view of the
    # schedule lesson: static shows fixed shares, dynamic shows threads
    # racing for chunks.
    loop_cm = telemetry.span("omp.parallel_for", category="loop",
                             schedule=str(schedule),
                             iterations=n_iterations, num_threads=n_threads)
    with loop_cm as loop_span:
        loop_id = loop_span.span_id if loop_span is not None else None
        if schedule.kind is ScheduleKind.STATIC:
            mapping = chunk_iterations(n_iterations, n_threads, schedule)

            def static_body(ctx: ParallelContext) -> None:
                acc = reduction.identity if reduction else None
                with telemetry.span("omp.loop.share", category="loop",
                                    parent_id=loop_id,
                                    thread=ctx.thread_num,
                                    iterations=len(mapping[ctx.thread_num])):
                    for i in mapping[ctx.thread_num]:
                        body(i, ctx)
                        if reduction:
                            acc = reduction.op(acc, value(i))
                        trace.per_thread[ctx.thread_num].append(i)
                partials[ctx.thread_num] = acc

            omp.parallel(static_body, num_threads=n_threads)
        else:
            next_start = [0]
            grab = threading.Lock()
            min_chunk = schedule.chunk or 1

            def take(thread_num: int) -> range | None:
                with grab:
                    start = next_start[0]
                    if start >= n_iterations:
                        return None
                    if schedule.kind is ScheduleKind.GUIDED:
                        remaining = n_iterations - start
                        size = max(remaining // n_threads, min_chunk)
                    else:
                        size = min_chunk
                    end = min(start + size, n_iterations)
                    next_start[0] = end
                if telemetry.enabled():
                    telemetry.instant("omp.loop.chunk", thread=thread_num,
                                      start=start, size=end - start)
                    telemetry.inc("omp.loop.chunks")
                return range(start, end)

            def dynamic_body(ctx: ParallelContext) -> None:
                acc = reduction.identity if reduction else None
                executed = 0
                with telemetry.span("omp.loop.share", category="loop",
                                    parent_id=loop_id,
                                    thread=ctx.thread_num):
                    while (chunk := take(ctx.thread_num)) is not None:
                        for i in chunk:
                            body(i, ctx)
                            if reduction:
                                acc = reduction.op(acc, value(i))
                            trace.per_thread[ctx.thread_num].append(i)
                            executed += 1
                partials[ctx.thread_num] = acc
                if telemetry.enabled():
                    telemetry.counter_event("omp.loop.iterations", executed,
                                            series=f"t{ctx.thread_num}")

            omp.parallel(dynamic_body, num_threads=n_threads)

    result = reduction.combine(partials) if reduction else None
    return result, trace


class OrderedRegion:
    """``#pragma omp ordered``: a section inside a work-shared loop whose
    executions happen in *iteration order*, whatever the schedule.

    The loop body calls ``ordered.wait_turn(i)`` before its ordered part
    and ``ordered.done(i)`` after (or uses the context manager)::

        ordered = OrderedRegion()
        def body(i, ctx):
            compute(i)                   # runs in parallel, any order
            with ordered.turn(i):
                emit(i)                  # strictly i = 0, 1, 2, ...

    The tests assert the emission order is exactly ``range(n)`` even
    under ``schedule(dynamic, 1)``.
    """

    def __init__(self) -> None:
        self._next = 0
        self._condition = threading.Condition()

    def wait_turn(self, iteration: int, timeout: float = 60.0) -> None:
        with self._condition:
            if not self._condition.wait_for(
                lambda: self._next == iteration, timeout=timeout
            ):
                raise TimeoutError(
                    f"ordered region: iteration {iteration} never became "
                    f"current (stuck at {self._next})"
                )

    def done(self, iteration: int) -> None:
        with self._condition:
            if iteration != self._next:
                raise RuntimeError(
                    f"ordered region: done({iteration}) out of order "
                    f"(current is {self._next})"
                )
            self._next += 1
            self._condition.notify_all()

    @contextlib.contextmanager
    def turn(self, iteration: int):
        self.wait_turn(iteration)
        try:
            yield
        finally:
            self.done(iteration)
