"""The fork-join runtime: parallel regions and per-thread contexts.

``OpenMP(num_threads=4).parallel(body)`` forks a team of real threads,
runs ``body(ctx)`` on each, joins them, and returns the per-thread return
values in thread order — OpenMP's fork-join model (the first patternlet of
Assignment 2).

The :class:`ParallelContext` passed to the body exposes the constructs the
assignments use::

    ctx.thread_num          # omp_get_thread_num()
    ctx.num_threads         # omp_get_num_threads()
    ctx.barrier()           # #pragma omp barrier
    with ctx.critical():    # #pragma omp critical [name]
    ctx.single(fn)          # #pragma omp single  (one thread runs fn)
    ctx.master(fn)          # #pragma omp master  (thread 0 runs fn)

Exceptions raised inside a team are collected and re-raised as
:class:`ParallelError` on the forking thread, after the team is joined —
so a failing body can never leak daemonised threads or deadlock a barrier
(the barrier is aborted when any worker dies).
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.config import resolve_timeout_s
from repro.faults import hooks as faults
from repro.telemetry import instrument as telemetry

__all__ = ["OpenMP", "ParallelContext", "ParallelError", "TeamWorker"]

#: Default upper bound on how long a join may take before we declare a
#: deadlock.  Override per-runtime (``OpenMP(join_timeout_s=...)``) or
#: process-wide (``REPRO_TIMEOUT_S``).
JOIN_TIMEOUT_S = 60.0


class ParallelError(RuntimeError):
    """One or more team members raised; carries every failure."""

    def __init__(self, failures: Sequence[tuple[int, BaseException]]) -> None:
        self.failures = list(failures)
        detail = "; ".join(f"thread {tid}: {exc!r}" for tid, exc in self.failures)
        super().__init__(f"{len(self.failures)} team member(s) failed: {detail}")


class _Team:
    """Shared state of one parallel region."""

    def __init__(self, num_threads: int, timeout_s: float = JOIN_TIMEOUT_S) -> None:
        self.num_threads = num_threads
        self.timeout_s = timeout_s
        self.barrier = threading.Barrier(num_threads)
        self.criticals: dict[str, threading.Lock] = {}
        self.criticals_guard = threading.Lock()
        self.single_counters: dict[str, int] = {}
        self.single_guard = threading.Lock()
        self.results: list[Any] = [None] * num_threads
        self.failures: list[tuple[int, BaseException]] = []
        self.failures_guard = threading.Lock()

    def critical_lock(self, name: str) -> threading.Lock:
        with self.criticals_guard:
            if name not in self.criticals:
                self.criticals[name] = threading.Lock()
            return self.criticals[name]


@dataclass(frozen=True)
class TeamWorker:
    """Identity of one member of a team (thread number + team size)."""

    thread_num: int
    num_threads: int


class ParallelContext:
    """Per-thread view of a parallel region."""

    def __init__(self, team: _Team, thread_num: int) -> None:
        self._team = team
        self.thread_num = thread_num
        self.num_threads = team.num_threads

    def barrier(self, timeout: float | None = None) -> None:
        """Block until every team member reaches the barrier.

        ``timeout`` defaults to the team's configured join timeout.
        """
        if timeout is None:
            timeout = self._team.timeout_s
        # Chaos hook: a STALL rule here delays this thread's arrival,
        # convoying the whole team (visible as a long omp.barrier span).
        faults.fire("omp.barrier", key=str(self.thread_num),
                    thread=self.thread_num)
        if not telemetry.enabled():
            self._team.barrier.wait(timeout=timeout)
            return
        start = time.perf_counter()
        with telemetry.span("omp.barrier", category="barrier",
                            thread=self.thread_num):
            self._team.barrier.wait(timeout=timeout)
        wait_us = (time.perf_counter() - start) * 1e6
        telemetry.inc("omp.barrier.waits")
        telemetry.observe_us("omp.barrier.wait_us", wait_us)

    @contextlib.contextmanager
    def critical(self, name: str = "") -> Iterator[None]:
        """Named critical section; same name ⇒ same lock (OpenMP semantics)."""
        lock = self._team.critical_lock(name)
        if not telemetry.enabled():
            with lock:
                yield
            return
        # Contention probe: an immediate acquire is uncontended; a failed
        # immediate acquire means this thread waited on a sibling.
        if lock.acquire(blocking=False):
            telemetry.inc("omp.critical.entries")
        else:
            start = time.perf_counter()
            with telemetry.span("omp.critical.wait", category="lock",
                                section=name, thread=self.thread_num):
                lock.acquire()
            wait_us = (time.perf_counter() - start) * 1e6
            telemetry.inc("omp.critical.entries")
            telemetry.inc("omp.critical.contended")
            telemetry.observe_us("omp.critical.wait_us", wait_us)
        try:
            yield
        finally:
            lock.release()

    def single(self, fn: Callable[[], Any], name: str = "", nowait: bool = False) -> Any:
        """First thread to arrive runs ``fn``; others skip.

        With ``nowait=False`` (the default, as in OpenMP) an implicit
        barrier follows, so every thread observes ``fn``'s effects.
        Returns ``fn``'s result on the thread that ran it, None elsewhere.
        """
        ran = False
        result = None
        with self._team.single_guard:
            count = self._team.single_counters.get(name, 0)
            self._team.single_counters[name] = count + 1
            if count % self.num_threads == 0:
                ran = True
        if ran:
            result = fn()
        if not nowait:
            self.barrier()
        return result

    def master(self, fn: Callable[[], Any]) -> Any:
        """Thread 0 runs ``fn``; no implied barrier (OpenMP master)."""
        if self.thread_num == 0:
            return fn()
        return None

    @property
    def worker(self) -> TeamWorker:
        return TeamWorker(thread_num=self.thread_num, num_threads=self.num_threads)


class OpenMP:
    """The runtime facade.

    ``num_threads`` defaults to 4 — the core count of the Raspberry Pi 3B+
    the paper hands each team.  ``join_timeout_s`` bounds every join and
    barrier; when None it falls back to ``$REPRO_TIMEOUT_S`` and then the
    module default, so slow CI machines can raise it without code edits.
    """

    def __init__(self, num_threads: int = 4, join_timeout_s: float | None = None) -> None:
        if num_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {num_threads}")
        self.num_threads = num_threads
        self.join_timeout_s = resolve_timeout_s(join_timeout_s, JOIN_TIMEOUT_S)

    def parallel(
        self,
        body: Callable[[ParallelContext], Any],
        num_threads: int | None = None,
    ) -> list[Any]:
        """Fork a team, run ``body(ctx)`` on every member, join, and return
        the per-thread results in thread order."""
        n = num_threads if num_threads is not None else self.num_threads
        if n < 1:
            raise ValueError(f"num_threads must be >= 1, got {n}")
        team = _Team(n, timeout_s=self.join_timeout_s)
        region_id: int | None = None

        def run(tid: int) -> None:
            ctx = ParallelContext(team, tid)
            telemetry.set_thread(tid, f"omp-thread-{tid}", process="openmp")
            try:
                with telemetry.span("omp.thread", category="region",
                                    parent_id=region_id, thread=tid):
                    # Chaos hook: a CRASH rule kills this team member
                    # mid-region; the normal failure path below collects
                    # it, aborts the barrier, and reports ParallelError.
                    faults.fire("omp.thread", key=str(tid), thread=tid)
                    team.results[tid] = body(ctx)
            except BaseException as exc:  # noqa: BLE001 - reported to forker
                with team.failures_guard:
                    team.failures.append((tid, exc))
                telemetry.instant("omp.thread.failed", thread=tid,
                                  error=repr(exc))
                # Abort the barrier so siblings blocked on it wake up with
                # BrokenBarrierError instead of deadlocking.
                team.barrier.abort()

        with telemetry.span("omp.parallel", category="region",
                            num_threads=n) as region_span:
            if region_span is not None:
                region_id = region_span.span_id
            telemetry.inc("omp.regions")
            threads = [
                threading.Thread(target=run, args=(tid,), name=f"omp-worker-{tid}")
                for tid in range(n)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=self.join_timeout_s)
                if t.is_alive():
                    team.barrier.abort()
                    raise ParallelError([(-1, TimeoutError(f"{t.name} did not join"))])
        if team.failures:
            # Deterministic order: report by thread id.  Barrier aborts in
            # sibling threads are a consequence of the primary failure, so
            # surface real exceptions first.
            primary = sorted(
                (f for f in team.failures if not isinstance(f[1], threading.BrokenBarrierError)),
                key=lambda f: f[0],
            ) or sorted(team.failures, key=lambda f: f[0])
            raise ParallelError(primary)
        return list(team.results)

    def parallel_sections(
        self, sections: Sequence[Callable[[ParallelContext], Any]]
    ) -> list[Any]:
        """OpenMP ``sections``: each section runs exactly once, distributed
        round-robin over the team.  Returns results in section order."""
        if not sections:
            return []
        results: list[Any] = [None] * len(sections)

        def body(ctx: ParallelContext) -> None:
            for idx in range(ctx.thread_num, len(sections), ctx.num_threads):
                results[idx] = sections[idx](ctx)

        self.parallel(body)
        return results
