"""Reduction operators.

OpenMP's ``reduction(op: var)`` clause gives each thread a private copy
initialised to the operator's identity, then combines the copies into the
shared variable at the end of the region.  :class:`Reduction` models the
operator set of OpenMP 4.5 (`+ * min max & | ^ && ||`).

Combination is performed in thread order, which makes floating-point
results deterministic for a fixed thread count — the property the test
suite checks (OpenMP itself does not guarantee an order; we choose the
strictest behaviour so results are reproducible).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

__all__ = ["Reduction"]


@dataclass(frozen=True)
class Reduction:
    """A reduction operator with its identity element."""

    name: str
    op: Callable[[object, object], object]
    identity: object

    def combine(self, partials: Sequence[object]) -> object:
        """Fold per-thread partials in thread order, seeded by identity."""
        acc = self.identity
        for partial in partials:
            acc = self.op(acc, partial)
        return acc

    def reduce_iter(self, values: Iterable[object]) -> object:
        """Sequential reduction — the reference the parallel one must match."""
        acc = self.identity
        for value in values:
            acc = self.op(acc, value)
        return acc

    def __str__(self) -> str:
        return f"reduction({self.name})"


def _logical_and(a: object, b: object) -> bool:
    return bool(a) and bool(b)


def _logical_or(a: object, b: object) -> bool:
    return bool(a) or bool(b)


# The OpenMP 4.5 predefined operator set.
Reduction.SUM = Reduction("+", lambda a, b: a + b, 0)                    # type: ignore[attr-defined]
Reduction.PROD = Reduction("*", lambda a, b: a * b, 1)                   # type: ignore[attr-defined]
Reduction.MIN = Reduction("min", min, math.inf)                          # type: ignore[attr-defined]
Reduction.MAX = Reduction("max", max, -math.inf)                         # type: ignore[attr-defined]
Reduction.BAND = Reduction("&", lambda a, b: a & b, ~0)                  # type: ignore[attr-defined]
Reduction.BOR = Reduction("|", lambda a, b: a | b, 0)                    # type: ignore[attr-defined]
Reduction.BXOR = Reduction("^", lambda a, b: a ^ b, 0)                   # type: ignore[attr-defined]
Reduction.LAND = Reduction("&&", _logical_and, True)                     # type: ignore[attr-defined]
Reduction.LOR = Reduction("||", _logical_or, False)                      # type: ignore[attr-defined]
