"""OpenMP environment control (`OMP_*` variables).

Assignment 4 has students "us[e] the commandline to control the number
of threads" — in OpenMP that is ``OMP_NUM_THREADS``, with
``OMP_SCHEDULE`` controlling ``schedule(runtime)`` loops.  This module
parses the standard variables into a runtime configuration::

    env = OMPEnvironment.from_mapping({
        "OMP_NUM_THREADS": "8",
        "OMP_SCHEDULE": "dynamic,2",
    })
    omp = env.runtime()                 # OpenMP(num_threads=8)
    schedule = env.schedule             # Schedule.dynamic(chunk=2)

plus ``omp_get_wtime``-style timing via :class:`WallClock` (monotonic,
mockable for tests).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.openmp.loops import Schedule, ScheduleKind
from repro.openmp.runtime import OpenMP

__all__ = ["OMPEnvironment", "WallClock", "parse_schedule"]

DEFAULT_NUM_THREADS = 4   # the Pi's core count


def parse_schedule(text: str) -> Schedule:
    """Parse an ``OMP_SCHEDULE`` value: ``kind[,chunk]``."""
    parts = [p.strip() for p in text.split(",")]
    if not 1 <= len(parts) <= 2 or not parts[0]:
        raise ValueError(f"bad OMP_SCHEDULE value {text!r}")
    try:
        kind = ScheduleKind(parts[0].lower())
    except ValueError:
        raise ValueError(
            f"unknown schedule kind {parts[0]!r}; expected one of "
            f"{[k.value for k in ScheduleKind]}"
        ) from None
    chunk: int | None = None
    if len(parts) == 2:
        try:
            chunk = int(parts[1])
        except ValueError:
            raise ValueError(f"bad chunk size {parts[1]!r}") from None
        if chunk < 1:
            raise ValueError(f"chunk size must be >= 1, got {chunk}")
    if kind is ScheduleKind.STATIC:
        return Schedule.static(chunk=chunk)
    if kind is ScheduleKind.DYNAMIC:
        return Schedule.dynamic(chunk=chunk or 1)
    return Schedule.guided(chunk=chunk or 1)


@dataclass(frozen=True)
class OMPEnvironment:
    """Parsed OpenMP environment."""

    num_threads: int = DEFAULT_NUM_THREADS
    schedule: Schedule = field(default_factory=Schedule.static)
    dynamic_adjustment: bool = False
    nested: bool = False

    def __post_init__(self) -> None:
        if self.num_threads < 1:
            raise ValueError(f"OMP_NUM_THREADS must be >= 1, got {self.num_threads}")

    @classmethod
    def from_mapping(cls, env: Mapping[str, str]) -> "OMPEnvironment":
        """Build from an environ-like mapping; unknown OMP_* keys raise
        (typos in environment variables are silent misery otherwise)."""
        known = {"OMP_NUM_THREADS", "OMP_SCHEDULE", "OMP_DYNAMIC", "OMP_NESTED"}
        unknown = {k for k in env if k.startswith("OMP_")} - known
        if unknown:
            raise ValueError(f"unrecognised OpenMP variables: {sorted(unknown)}")

        num_threads = DEFAULT_NUM_THREADS
        if "OMP_NUM_THREADS" in env:
            try:
                num_threads = int(env["OMP_NUM_THREADS"])
            except ValueError:
                raise ValueError(
                    f"OMP_NUM_THREADS={env['OMP_NUM_THREADS']!r} is not an integer"
                ) from None
        schedule = Schedule.static()
        if "OMP_SCHEDULE" in env:
            schedule = parse_schedule(env["OMP_SCHEDULE"])

        def boolean(key: str) -> bool:
            value = env.get(key, "false").strip().lower()
            if value in ("true", "1", "yes"):
                return True
            if value in ("false", "0", "no"):
                return False
            raise ValueError(f"{key}={env[key]!r} is not a boolean")

        return cls(
            num_threads=num_threads,
            schedule=schedule,
            dynamic_adjustment=boolean("OMP_DYNAMIC"),
            nested=boolean("OMP_NESTED"),
        )

    def runtime(self) -> OpenMP:
        """An :class:`OpenMP` runtime configured from this environment."""
        return OpenMP(num_threads=self.num_threads)


class WallClock:
    """``omp_get_wtime``: seconds from an arbitrary fixed origin.

    The time source is injectable so tests can use a deterministic clock.
    """

    def __init__(self, source: Callable[[], float] | None = None) -> None:
        self._source = source or time.monotonic
        self._origin = self._source()

    def wtime(self) -> float:
        return self._source() - self._origin

    def elapsed(self, start: float) -> float:
        """Convenience: ``wtime() - start``."""
        return self.wtime() - start
