"""OpenMP-style explicit tasks (``#pragma omp task`` / ``taskwait``).

Work-sharing loops cover regular iteration spaces; irregular work
(recursive decomposition, trees, task graphs) is what OpenMP 3.0 tasks
are for.  :class:`TaskGroup` gives a parallel region a shared task deque:
any thread may ``submit`` tasks (including from inside a task), and
``taskwait`` blocks until every task submitted so far has finished.

Scheduling note: a blocked ``result()`` helps by executing **its own
task** inline if that task is still queued (targeted help).  This keeps
the Python stack bounded by the *depth* of the task tree rather than the
*number* of tasks — indiscriminate work-first helping overflows the
recursion limit on trees with thousands of tasks — while still making
``parent waits on child`` deadlock-free: the child is either queued (run
it now) or already running on some thread (wait briefly).

The canonical example (tested and used by the examples)::

    omp = OpenMP(4)
    group = TaskGroup(omp)

    def fib(n):
        if n < 2:
            return n
        a = group.submit(fib, n - 1)   # child task, any thread may run it
        b = fib(n - 2)                 # run inline
        return a.result() + b
    print(group.run(fib, 20))
"""

from __future__ import annotations

import collections
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.openmp.runtime import OpenMP
from repro.telemetry import instrument as telemetry

__all__ = ["TaskHandle", "TaskGroup"]


@dataclass
class TaskHandle:
    """A submitted task's future."""

    _group: "TaskGroup"
    _done: threading.Event = field(default_factory=threading.Event)
    _value: Any = None
    _error: BaseException | None = None

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float = 60.0) -> Any:
        """Return the task's result.

        If the task is still queued, the calling thread executes it
        inline (targeted help); if it is running on another thread, wait.
        """
        deadline = time.monotonic() + timeout
        while not self._done.is_set():
            if self._group._run_specific(self):
                break
            if time.monotonic() > deadline:
                raise TimeoutError("task result not available in time")
            self._done.wait(timeout=0.001)
        if self._error is not None:
            raise self._error
        return self._value


class TaskGroup:
    """A shared task pool bound to an :class:`OpenMP` runtime.

    With ``scheduler`` (a :class:`repro.sched.WorkStealingExecutor`) the
    group dispatches through the repo-wide work-stealing layer instead of
    its own deque: ``submit`` returns a scheduler handle (same ``done()``
    / ``result()`` surface, including inline help), and ``run`` drains
    the scheduler rather than forking the OpenMP team — which makes the
    task schedule seed-replayable in the scheduler's deterministic mode.
    """

    def __init__(self, omp: OpenMP, scheduler: Any | None = None) -> None:
        self._omp = omp
        self._scheduler = scheduler
        self._sched_handles: list[Any] = []
        self._deque: collections.deque = collections.deque()
        self._lock = threading.Lock()
        self._outstanding = 0
        self._shutdown = False

    # -- internals ----------------------------------------------------------

    def _execute(self, entry: tuple) -> None:
        handle, fn, args, kwargs = entry
        with telemetry.span("omp.task", category="task",
                            task=getattr(fn, "__name__", repr(fn))):
            try:
                handle._value = fn(*args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - stored on the handle
                handle._error = exc
                telemetry.instant("omp.task.failed", error=repr(exc))
        handle._done.set()
        telemetry.inc("omp.tasks.executed")
        with self._lock:
            self._outstanding -= 1

    def _run_one(self) -> bool:
        """Pop and execute one queued task; False if the queue was empty."""
        with self._lock:
            if not self._deque:
                return False
            entry = self._deque.popleft()
        self._execute(entry)
        return True

    def _run_specific(self, handle: "TaskHandle") -> bool:
        """Execute ``handle``'s task inline if it is still queued."""
        with self._lock:
            entry = next((e for e in self._deque if e[0] is handle), None)
            if entry is None:
                return False
            self._deque.remove(entry)
        telemetry.inc("omp.tasks.inline_helped")
        self._execute(entry)
        return True

    # -- API ----------------------------------------------------------------

    def submit(self, fn: Callable, *args: Any, **kwargs: Any) -> Any:
        """Queue a task for any team member to execute."""
        if self._scheduler is not None:
            handle = self._scheduler.submit(
                lambda: fn(*args, **kwargs),
                name=f"omp.{getattr(fn, '__name__', 'task')}",
            )
            with self._lock:
                self._sched_handles.append(handle)
            telemetry.inc("omp.tasks.submitted")
            return handle
        handle = TaskHandle(_group=self)
        with self._lock:
            self._deque.append((handle, fn, args, kwargs))
            self._outstanding += 1
        telemetry.inc("omp.tasks.submitted")
        return handle

    def taskwait(self, timeout: float = 60.0) -> None:
        """Execute queued tasks until every submitted task has completed."""
        if self._scheduler is not None:
            with telemetry.span("omp.taskwait", category="sync"):
                deadline = time.monotonic() + timeout
                while True:
                    with self._lock:
                        pending = [
                            h for h in self._sched_handles if not h.done()
                        ]
                    if not pending:
                        return
                    if time.monotonic() > deadline:
                        raise TimeoutError("taskwait exceeded its timeout")
                    try:
                        pending[0].result(timeout=timeout)
                    except Exception:  # noqa: BLE001
                        pass  # surfaced via the owner's own result() call
        with telemetry.span("omp.taskwait", category="sync"):
            deadline = time.monotonic() + timeout
            while True:
                if self._run_one():
                    continue
                with self._lock:
                    if self._outstanding == 0:
                        return
                if time.monotonic() > deadline:
                    raise TimeoutError("taskwait exceeded its timeout")
                time.sleep(0.0005)

    def run(self, root: Callable, *args: Any, **kwargs: Any) -> Any:
        """Fork the team; thread 0 runs ``root`` while the others execute
        tasks; returns ``root``'s result after a full taskwait.

        ``root``'s exception (if any) propagates as a
        :class:`~repro.openmp.runtime.ParallelError`; the workers are
        always shut down, even then.
        """
        if self._scheduler is not None:
            handle = self._scheduler.submit(
                lambda: root(*args, **kwargs), name="omp.root"
            )
            self._scheduler.drain()
            return handle.result()

        result_box: list[Any] = [None]

        def body(ctx) -> None:
            if ctx.thread_num == 0:
                try:
                    result_box[0] = root(*args, **kwargs)
                    self.taskwait()
                finally:
                    with self._lock:
                        self._shutdown = True
            else:
                while True:
                    if not self._run_one():
                        with self._lock:
                            if self._shutdown and not self._deque:
                                return
                        time.sleep(0.0005)

        self._shutdown = False
        self._omp.parallel(body)
        return result_box[0]
