"""Shared-state helpers: atomic counter and shared array.

These model what OpenMP programs get from ``#pragma omp atomic`` and from
plain shared C arrays.  :class:`AtomicCounter` is also the work-stealing
heart of the dynamic loop scheduler.
"""

from __future__ import annotations

import threading
from typing import Iterator, Sequence

__all__ = ["AtomicCounter", "SharedArray"]


class AtomicCounter:
    """A lock-protected integer counter (``#pragma omp atomic``)."""

    def __init__(self, initial: int = 0) -> None:
        self._value = initial
        self._lock = threading.Lock()

    def fetch_add(self, delta: int = 1) -> int:
        """Atomically add ``delta``; return the value *before* the add."""
        with self._lock:
            old = self._value
            self._value += delta
            return old

    def add(self, delta: int = 1) -> int:
        """Atomically add ``delta``; return the value *after* the add."""
        with self._lock:
            self._value += delta
            return self._value

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class SharedArray:
    """A fixed-size shared array with optional per-element locking.

    With ``locked=False`` it behaves like a plain C array shared among
    threads — element accesses are *not* synchronised, which is exactly
    what the data-race patternlet needs.  With ``locked=True`` every
    read-modify-write helper takes the array lock.
    """

    def __init__(self, size: int, fill: float = 0.0, locked: bool = True) -> None:
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        self._data = [fill] * size
        self._locked = locked
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, index: int) -> float:
        return self._data[index]

    def __setitem__(self, index: int, value: float) -> None:
        self._data[index] = value

    def __iter__(self) -> Iterator[float]:
        return iter(list(self._data))

    def accumulate(self, index: int, delta: float) -> None:
        """Read-modify-write add; atomic only when the array is locked."""
        if self._locked:
            with self._lock:
                self._data[index] += delta
        else:
            self._data[index] += delta

    def snapshot(self) -> list[float]:
        """Copy of the contents (thread-safe when locked)."""
        if self._locked:
            with self._lock:
                return list(self._data)
        return list(self._data)

    def fill_from(self, values: Sequence[float]) -> None:
        if len(values) != len(self._data):
            raise ValueError(
                f"expected {len(self._data)} values, got {len(values)}"
            )
        with self._lock:
            self._data[:] = list(values)
