"""An OpenMP-style shared-memory parallel runtime on Python threads.

The paper's Assignments 2–5 have students write OpenMP/C programs on a
Raspberry Pi.  This package is the Python substrate those programs run on
here: a faithful model of OpenMP's *programming constructs* — fork-join
parallel regions, work-sharing loops with static/dynamic/guided schedules,
reductions, barriers, critical sections, atomics, single/master — executed
on real :mod:`threading` threads.

Because of the GIL this runtime is about *semantics*, not speedup; the
performance-shaped experiments (speedup curves, schedule comparisons) run
the same constructs against the simulated Raspberry Pi's timing model
(:mod:`repro.rpi`), the way the paper's own numbers come from its Pi.

Public API
----------
- :class:`OpenMP` — the runtime facade (``omp = OpenMP(num_threads=4)``).
- :class:`ParallelContext` — per-thread view inside a region
  (``ctx.thread_num``, ``ctx.num_threads``, ``ctx.barrier()``,
  ``ctx.critical()``, ``ctx.single()``, ``ctx.master()``).
- :class:`Schedule` — loop schedules (``Schedule.static(chunk=2)``,
  ``Schedule.dynamic(chunk=1)``, ``Schedule.guided()``).
- :class:`Reduction` — reduction operators with identities.
- :class:`SharedArray`, :class:`AtomicCounter` — shared state helpers.
- :class:`Shared` + :class:`RaceDetector` — an instrumented shared
  variable that detects data races (Assignment 2's "shared memory
  concerns" patternlet).
"""

from repro.openmp.env import OMPEnvironment, WallClock, parse_schedule
from repro.openmp.locks import LockError, OMPLock, OMPNestLock
from repro.openmp.loops import (
    LoopTrace,
    OrderedRegion,
    Schedule,
    ScheduleKind,
    chunk_iterations,
)
from repro.openmp.race import RaceDetector, RaceError, Shared
from repro.openmp.reduction import Reduction
from repro.openmp.runtime import (
    OpenMP,
    ParallelContext,
    ParallelError,
    TeamWorker,
)
from repro.openmp.sync import AtomicCounter, SharedArray
from repro.openmp.tasks import TaskGroup, TaskHandle

__all__ = [
    "AtomicCounter",
    "LockError",
    "OMPEnvironment",
    "LoopTrace",
    "OMPLock",
    "OrderedRegion",
    "OMPNestLock",
    "OpenMP",
    "ParallelContext",
    "ParallelError",
    "RaceDetector",
    "RaceError",
    "Reduction",
    "Schedule",
    "ScheduleKind",
    "Shared",
    "SharedArray",
    "TaskGroup",
    "TaskHandle",
    "TeamWorker",
    "WallClock",
    "chunk_iterations",
    "parse_schedule",
]
