"""Data-race detection for shared variables.

Assignment 2's third patternlet teaches "shared memory concerns": with one
bank of memory, variable scope matters, and an unsynchronised shared
update is a data race that is "difficult to reproduce and debug"
(Assignment 4's first question).

:class:`Shared` is an instrumented shared variable.  Every access records
(thread id, epoch, locks held, kind).  Two accesses **conflict** when they
come from different threads in the same epoch, at least one is a write,
and the threads held no common lock.  Epochs advance at barriers, which
model OpenMP's implied synchronisation points — accesses separated by a
barrier are ordered, not racing.  This is a simplified happens-before
detector: it is *sound for the patternlet programs* (every reported race
is real because within an epoch the runtime provides no other ordering)
and precise enough to show the classic private-vs-shared fix.

Typical use::

    detector = RaceDetector()
    x = Shared(0, "x", detector)
    def body(ctx):
        x.write(x.read(ctx) + 1, ctx)         # racy read-modify-write
    OpenMP(4).parallel(body)
    detector.races()                          # -> non-empty

    def fixed(ctx):
        with ctx.critical():
            with detector.holding(ctx, "crit"):
                x.write(x.read(ctx) + 1, ctx)  # serialized: no race
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass
from typing import Iterator

from repro.openmp.runtime import ParallelContext
from repro.telemetry import instrument as telemetry

__all__ = ["AccessKind", "Access", "Race", "RaceError", "RaceDetector", "Shared"]


@dataclass(frozen=True)
class Access:
    """One recorded access to a shared variable."""

    variable: str
    thread_num: int
    epoch: int
    is_write: bool
    locks: frozenset[str]


@dataclass(frozen=True)
class Race:
    """A pair of conflicting accesses."""

    first: Access
    second: Access

    def __str__(self) -> str:
        kind = "write/write" if self.first.is_write and self.second.is_write else "read/write"
        return (
            f"data race on {self.first.variable!r}: {kind} by threads "
            f"{self.first.thread_num} and {self.second.thread_num} in epoch "
            f"{self.first.epoch} with no common lock"
        )


class RaceError(RuntimeError):
    """Raised by :meth:`RaceDetector.check` when races were observed."""

    def __init__(self, races: list[Race]) -> None:
        self.races = races
        super().__init__(
            f"{len(races)} data race(s) detected: " + "; ".join(map(str, races[:3]))
        )


class RaceDetector:
    """Collects accesses and finds conflicting pairs."""

    def __init__(self) -> None:
        self._accesses: list[Access] = []
        self._guard = threading.Lock()
        self._epoch = 0
        self._held: dict[int, set[str]] = {}

    # -- epoch / lock bookkeeping -----------------------------------------

    def advance_epoch(self) -> None:
        """Call at synchronisation points (barriers, region boundaries)."""
        with self._guard:
            self._epoch += 1

    @contextlib.contextmanager
    def holding(self, ctx: ParallelContext, lock_name: str) -> Iterator[None]:
        """Declare that the current thread holds a named lock."""
        with self._guard:
            self._held.setdefault(ctx.thread_num, set()).add(lock_name)
        try:
            yield
        finally:
            with self._guard:
                self._held[ctx.thread_num].discard(lock_name)

    def record(self, variable: str, ctx: ParallelContext, is_write: bool) -> None:
        with self._guard:
            self._accesses.append(
                Access(
                    variable=variable,
                    thread_num=ctx.thread_num,
                    epoch=self._epoch,
                    is_write=is_write,
                    locks=frozenset(self._held.get(ctx.thread_num, ())),
                )
            )
        telemetry.inc("omp.race.accesses")
        if is_write:
            telemetry.inc("omp.race.writes")

    # -- analysis ----------------------------------------------------------

    def races(self, limit: int | None = None) -> list[Race]:
        """Conflicting access pairs observed so far.

        Pair enumeration is quadratic in the accesses per (variable,
        epoch); pass ``limit`` to stop after that many races — enough for
        "is this program racy?" checks on long loops.
        """
        with self._guard:
            accesses = list(self._accesses)
        with telemetry.span("omp.race.analysis", category="race",
                            accesses=len(accesses)):
            found = self._find_conflicts(accesses, limit)
        if found:
            telemetry.inc("omp.race.conflicts", len(found))
            telemetry.instant("omp.race.detected", variable=found[0].first.variable,
                              conflicts=len(found))
        return found

    @staticmethod
    def _find_conflicts(accesses: list[Access], limit: int | None) -> list[Race]:
        found: list[Race] = []
        by_key: dict[tuple[str, int], list[Access]] = {}
        for access in accesses:
            by_key.setdefault((access.variable, access.epoch), []).append(access)
        for group in by_key.values():
            for i in range(len(group)):
                for j in range(i + 1, len(group)):
                    a, b = group[i], group[j]
                    if a.thread_num == b.thread_num:
                        continue
                    if not (a.is_write or b.is_write):
                        continue
                    if a.locks & b.locks:
                        continue
                    found.append(Race(a, b))
                    if limit is not None and len(found) >= limit:
                        return found
        return found

    def has_race(self) -> bool:
        """Fast boolean check (stops at the first conflicting pair)."""
        return bool(self.races(limit=1))

    def check(self) -> None:
        """Raise :class:`RaceError` if any race was observed."""
        races = self.races()
        if races:
            raise RaceError(races)

    def reset(self) -> None:
        with self._guard:
            self._accesses.clear()
            self._epoch = 0
            self._held.clear()


class Shared:
    """An instrumented shared variable.

    Reads and writes go through the detector.  The value itself is stored
    unsynchronised on purpose — this class *observes* races, it does not
    prevent them.
    """

    def __init__(self, value: object, name: str, detector: RaceDetector) -> None:
        self._value = value
        self.name = name
        self._detector = detector

    def read(self, ctx: ParallelContext) -> object:
        self._detector.record(self.name, ctx, is_write=False)
        return self._value

    def write(self, value: object, ctx: ParallelContext) -> None:
        self._detector.record(self.name, ctx, is_write=True)
        self._value = value

    @property
    def value(self) -> object:
        """Unsynchronised peek (for assertions after the join)."""
        return self._value
