"""The OpenMP lock API (``omp_init_lock`` family).

Critical sections serialize by *name at the source level*; locks are
first-class objects a program can store in data structures — e.g. one
lock per hash-table bucket.  Both the simple and the nestable (recursive)
variants are modelled, with the same semantics the spec gives them:
setting a simple lock you already hold deadlocks (we detect and raise
instead), while a nestable lock counts.
"""

from __future__ import annotations

import threading

__all__ = ["OMPLock", "OMPNestLock", "LockError"]


class LockError(RuntimeError):
    """Misuse of a lock (self-deadlock, unsetting an unheld lock)."""


class OMPLock:
    """A simple OpenMP lock (``omp_set_lock`` / ``omp_unset_lock``)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._owner: int | None = None
        self._meta = threading.Lock()

    def set(self, timeout: float = 30.0) -> None:
        """Acquire; raises :class:`LockError` on self-deadlock or timeout."""
        me = threading.get_ident()
        with self._meta:
            if self._owner == me:
                raise LockError(
                    "setting a simple lock already held by this thread "
                    "(deadlock in real OpenMP)"
                )
        if not self._lock.acquire(timeout=timeout):
            raise LockError(f"lock not acquired within {timeout}s")
        with self._meta:
            self._owner = me

    def unset(self) -> None:
        me = threading.get_ident()
        with self._meta:
            if self._owner != me:
                raise LockError("unsetting a lock this thread does not hold")
            self._owner = None
        self._lock.release()

    def test(self) -> bool:
        """Nonblocking acquire attempt (``omp_test_lock``)."""
        me = threading.get_ident()
        with self._meta:
            if self._owner == me:
                return False
        if self._lock.acquire(blocking=False):
            with self._meta:
                self._owner = me
            return True
        return False

    def __enter__(self) -> "OMPLock":
        self.set()
        return self

    def __exit__(self, *exc: object) -> None:
        self.unset()


class OMPNestLock:
    """A nestable OpenMP lock: re-acquisition by the owner counts."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._depth = 0
        self._meta = threading.Lock()

    def set(self, timeout: float = 30.0) -> int:
        """Acquire (recursively); returns the new nesting depth."""
        if not self._lock.acquire(timeout=timeout):
            raise LockError(f"nest lock not acquired within {timeout}s")
        with self._meta:
            self._depth += 1
            return self._depth

    def unset(self) -> int:
        """Release one level; returns the remaining depth."""
        with self._meta:
            if self._depth == 0:
                raise LockError("unsetting a nest lock that is not held")
            self._depth -= 1
            remaining = self._depth
        self._lock.release()
        return remaining

    def __enter__(self) -> "OMPNestLock":
        self.set()
        return self

    def __exit__(self, *exc: object) -> None:
        self.unset()
