"""Core: the PBL study driver and the paper's published targets.

- :mod:`repro.core.targets` — every number printed in the paper's Tables
  1–6, stored once as calibration targets and comparison baselines.
- :mod:`repro.core.study` — :class:`PBLStudy`, the end-to-end driver:
  cohort → sections → teams → course run (assignments actually execute
  their parallel programs) → two survey waves → full statistical analysis.
- :mod:`repro.core.analysis` — the Tables 1–6 computations from raw waves.
- :mod:`repro.core.hypotheses` — the three hypotheses H1–H3 as executable
  checks over an analysis result.
- :mod:`repro.core.report` — the rendered reproduction report.
"""

from repro.core.analysis import StudyAnalysis, analyze_waves
from repro.core.experiments import (
    ComparisonRow,
    ExperimentSummary,
    build_experiment_summary,
    render_markdown,
)
from repro.core.hypotheses import HypothesisOutcome, evaluate_hypotheses
from repro.core.report import ReproductionReport
from repro.core.study import PBLStudy, StudyResult
from repro.core.targets import PAPER, PaperTargets

__all__ = [
    "PAPER",
    "ComparisonRow",
    "ExperimentSummary",
    "HypothesisOutcome",
    "PBLStudy",
    "PaperTargets",
    "ReproductionReport",
    "StudyAnalysis",
    "StudyResult",
    "analyze_waves",
    "build_experiment_summary",
    "evaluate_hypotheses",
    "render_markdown",
]
