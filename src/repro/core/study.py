"""The end-to-end study driver.

:class:`PBLStudy` runs the whole case study the way the paper did:

1. generate the cohort with the published marginals and split it into
   the two sections;
2. form 13 diverse balanced teams per section;
3. run the course: execute every assignment's parallel programs on the
   runtime/simulated Pi, and drive each team's teamwork technologies
   (workspace, repository, report doc, video) so the activity streams
   exist;
4. administer the survey at the mid-point and the end (simulated
   responses from the calibrated latent-trait model);
5. run the full statistical analysis (Tables 1–6) and evaluate H1–H3.

Everything is seeded and deterministic; ``PBLStudy.default().run()``
regenerates the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.cohort.formation import form_teams
from repro.cohort.sections import Section, make_paper_sections
from repro.cohort.teams import Team
from repro.core.analysis import StudyAnalysis, analyze_waves
from repro.core.hypotheses import HypothesisOutcome, evaluate_hypotheses
from repro.core.targets import PAPER, PaperTargets, simulation_targets
from repro.course.assignments import all_assignments, run_assignment_programs
from repro.course.simulate import SimulatedGradebook, simulate_gradebook
from repro.course.timeline import Semester, paper_timeline
from repro.simulation.assemble import assemble_waves
from repro.simulation.calibration import CalibrationResult, calibrate
from repro.simulation.model import ResponseModel
from repro.survey.instrument import team_design_skills_survey
from repro.survey.responses import WaveResponses
from repro.teamtech.docs import CollaborativeDoc
from repro.teamtech.github import Repository
from repro.teamtech.slack import Workspace
from repro.teamtech.youtube import Segment, Video, VideoChannel, REQUIRED_POINTS

__all__ = ["PBLStudy", "StudyResult", "TeamArtifacts"]

N_TEAMS_PER_SECTION = 13


@dataclass(frozen=True)
class TeamArtifacts:
    """The teamwork-technology footprint of one team for one assignment."""

    team_id: str
    workspace: Workspace
    repository: Repository
    report: CollaborativeDoc
    channel: VideoChannel


@dataclass(frozen=True)
class StudyResult:
    """Everything a study run produces."""

    seed: int
    sections: tuple[Section, Section]
    teams: tuple[Team, ...]
    timeline: Semester
    program_outputs: Mapping[int, Mapping[str, Any]]   # assignment -> name -> result
    artifacts: tuple[TeamArtifacts, ...]
    gradebook: SimulatedGradebook | None
    calibration: CalibrationResult
    waves: Mapping[str, WaveResponses]
    analysis: StudyAnalysis
    hypotheses: tuple[HypothesisOutcome, ...]

    @property
    def n_students(self) -> int:
        return sum(s.n for s in self.sections)

    @property
    def all_hypotheses_supported(self) -> bool:
        return all(h.supported for h in self.hypotheses)


@dataclass(frozen=True)
class PBLStudy:
    """Study configuration."""

    seed: int = 2018
    paper: PaperTargets = PAPER
    execute_programs: bool = True
    simulate_teamwork: bool = True

    @classmethod
    def default(cls, seed: int = 2018) -> "PBLStudy":
        return cls(seed=seed)

    # -- pieces -----------------------------------------------------------

    def _teams(self, sections: tuple[Section, Section]) -> tuple[Team, ...]:
        teams: list[Team] = []
        for index, section in enumerate(sections, start=1):
            teams.extend(
                form_teams(section.students, N_TEAMS_PER_SECTION,
                           id_prefix=f"S{index}T")
            )
        return tuple(teams)

    def _team_artifacts(self, team: Team) -> TeamArtifacts:
        """Drive the four required technologies for one team (A1's task)."""
        members = [m.student_id for m in team.members]
        workspace = Workspace(team_id=team.team_id)
        workspace.create_channel("general", set(members))
        for member in members:
            workspace.post("general", member, f"{member} checking in for A1")

        repo = Repository(name=f"{team.team_id}-pbl")
        repo.commit("main", members[0], "initial commit", {"README.md": team.team_id})
        repo.create_branch("a1")
        repo.commit("a1", members[1 % len(members)], "ground rules",
                    {"ground_rules.md": "work norms; meeting norms"})
        pr = repo.open_pull_request("a1", members[1 % len(members)], "Assignment 1")
        repo.merge(pr, approver=members[0])

        doc = CollaborativeDoc(title=f"{team.team_id} report")
        for i, member in enumerate(members):
            doc.edit(member, f"section-{i + 1}", f"contribution by {member}")

        channel = VideoChannel(team_id=team.team_id)
        minutes_each = round(7.0 / len(members), 2)
        video = Video(
            title=f"{team.team_id} A1 presentation",
            assignment_number=1,
            segments=tuple(
                Segment(speaker=m, minutes=minutes_each,
                        points_covered=REQUIRED_POINTS)
                for m in members
            ),
        )
        channel.upload(video, members)
        return TeamArtifacts(
            team_id=team.team_id, workspace=workspace, repository=repo,
            report=doc, channel=channel,
        )

    # -- the run -----------------------------------------------------------

    def run(self) -> StudyResult:
        """Execute the full study."""
        sections = make_paper_sections(seed=self.seed)
        teams = self._teams(sections)
        timeline = paper_timeline()

        program_outputs: dict[int, dict[str, Any]] = {}
        if self.execute_programs:
            for assignment in all_assignments():
                program_outputs[assignment.number] = run_assignment_programs(assignment)

        artifacts: tuple[TeamArtifacts, ...] = ()
        gradebook: SimulatedGradebook | None = None
        if self.simulate_teamwork:
            artifacts = tuple(self._team_artifacts(team) for team in teams)
            gradebook = simulate_gradebook(teams, seed=self.seed)

        # Survey simulation: calibrate the response model to the paper's
        # published statistics, then generate raw item-level responses.
        instrument = team_design_skills_survey()
        targets = simulation_targets(self.paper)
        model = ResponseModel(
            skills=targets.skills, n_students=targets.n_students, seed=self.seed
        )
        calibration = calibrate(model, targets)
        raw = model.generate(calibration.knobs)
        student_ids = sorted(
            s.student_id for section in sections for s in section.students
        )
        waves = assemble_waves(raw, instrument, student_ids)

        analysis = analyze_waves(waves["first_half"], waves["second_half"])
        hypotheses = evaluate_hypotheses(analysis)

        return StudyResult(
            seed=self.seed,
            sections=sections,
            teams=teams,
            timeline=timeline,
            program_outputs=program_outputs,
            artifacts=artifacts,
            gradebook=gradebook,
            calibration=calibration,
            waves=waves,
            analysis=analysis,
            hypotheses=hypotheses,
        )
