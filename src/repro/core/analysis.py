"""The paper's statistical analysis, from raw waves to Tables 1–6.

:func:`analyze_waves` consumes the two :class:`WaveResponses` (real or
simulated — the pipeline cannot tell) and produces a :class:`StudyAnalysis`
with every quantity the paper's evaluation section reports:

- Table 1 — paired t-tests on overall Class-Emphasis / Personal-Growth.
- Tables 2–3 — per-wave descriptives + Cohen's d (paper formula).
- Table 4 — per-skill Pearson emphasis↔growth per wave, with Guilford
  bands.
- Tables 5–6 — composite-score rankings per wave, plus the Discussion's
  derived quantities (score spreads, emphasis−growth gaps, the 0.2
  redesign threshold).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.stats.correlation import CorrelationResult, pearson
from repro.stats.effectsize import CohensDResult, cohens_d_paper
from repro.stats.ranking import (
    RankedItem,
    emphasis_growth_gaps,
    rank_by_score,
    spread,
)
from repro.stats.ttest import TTestResult, ttest_paired
from repro.survey.responses import WaveResponses
from repro.survey.scales import Category
from repro.survey.scoring import CohortScores, cohort_scores

__all__ = ["StudyAnalysis", "analyze_waves"]


@dataclass(frozen=True)
class StudyAnalysis:
    """Every statistic of the paper's evaluation, regenerated."""

    n: int
    # Table 1
    ttest_emphasis: TTestResult
    ttest_growth: TTestResult
    # Tables 2 and 3
    cohens_d_emphasis: CohensDResult
    cohens_d_growth: CohensDResult
    # Table 4: (skill, wave key) -> correlation
    pearson: Mapping[tuple[str, str], CorrelationResult]
    # Tables 5 and 6: wave key -> ranking (composite-score cohort means)
    emphasis_ranking: Mapping[str, tuple[RankedItem, ...]]
    growth_ranking: Mapping[str, tuple[RankedItem, ...]]
    # Discussion quantities
    growth_spread: Mapping[str, float]
    emphasis_spread: Mapping[str, float]
    gaps: Mapping[str, Mapping[str, tuple[float, bool]]]
    # Raw cohort scores, for downstream consumers
    scores: Mapping[tuple[str, str], CohortScores]  # (category value, wave)


def analyze_waves(first: WaveResponses, second: WaveResponses) -> StudyAnalysis:
    """Run the complete published analysis on two survey waves."""
    first.validate()
    second.validate()
    first_aligned, second_aligned = first.aligned_with(second)
    n = len(first_aligned)

    # Cohort score vectors per (category, wave).
    waves = {"first_half": first, "second_half": second}
    scores: dict[tuple[str, str], CohortScores] = {}
    for wave_key, wave in waves.items():
        for category in Category:
            scores[(category.value, wave_key)] = cohort_scores(wave, category)

    # Table 1: paired t-tests on per-student overall averages.  Alignment:
    # cohort_scores sorts by student id, and aligned_with uses the same
    # ordering, so the paired vectors line up.
    def paired(category: Category) -> TTestResult:
        a = scores[(category.value, "first_half")]
        b = scores[(category.value, "second_half")]
        if a.student_ids != b.student_ids:
            common = sorted(set(a.student_ids) & set(b.student_ids))
            index_a = {s: i for i, s in enumerate(a.student_ids)}
            index_b = {s: i for i, s in enumerate(b.student_ids)}
            xs = [a.overall[index_a[s]] for s in common]
            ys = [b.overall[index_b[s]] for s in common]
        else:
            xs, ys = list(a.overall), list(b.overall)
        return ttest_paired(xs, ys)

    ttest_emphasis = paired(Category.CLASS_EMPHASIS)
    ttest_growth = paired(Category.PERSONAL_GROWTH)

    # Tables 2-3: Cohen's d with the paper's pooled-SD formula.
    def effect(category: Category) -> CohensDResult:
        a = scores[(category.value, "first_half")].overall
        b = scores[(category.value, "second_half")].overall
        return cohens_d_paper(list(a), list(b))

    cohens_emphasis = effect(Category.CLASS_EMPHASIS)
    cohens_growth = effect(Category.PERSONAL_GROWTH)

    # Table 4: per-skill Pearson between emphasis and growth, per wave.
    correlations: dict[tuple[str, str], CorrelationResult] = {}
    for wave_key in waves:
        emph = scores[(Category.CLASS_EMPHASIS.value, wave_key)]
        grow = scores[(Category.PERSONAL_GROWTH.value, wave_key)]
        for skill in emph.per_skill:
            correlations[(skill, wave_key)] = pearson(
                list(emph.per_skill[skill]), list(grow.per_skill[skill])
            )

    # Tables 5-6: rankings of the cohort-mean composite scores.
    emphasis_ranking: dict[str, tuple[RankedItem, ...]] = {}
    growth_ranking: dict[str, tuple[RankedItem, ...]] = {}
    emphasis_spread: dict[str, float] = {}
    growth_spread: dict[str, float] = {}
    gaps: dict[str, dict[str, tuple[float, bool]]] = {}
    for wave_key in waves:
        emph_means = dict(scores[(Category.CLASS_EMPHASIS.value, wave_key)].composite_means)
        grow_means = dict(scores[(Category.PERSONAL_GROWTH.value, wave_key)].composite_means)
        emphasis_ranking[wave_key] = tuple(rank_by_score(emph_means))
        growth_ranking[wave_key] = tuple(rank_by_score(grow_means))
        emphasis_spread[wave_key] = spread(emph_means)
        growth_spread[wave_key] = spread(grow_means)
        gaps[wave_key] = emphasis_growth_gaps(emph_means, grow_means)

    return StudyAnalysis(
        n=n,
        ttest_emphasis=ttest_emphasis,
        ttest_growth=ttest_growth,
        cohens_d_emphasis=cohens_emphasis,
        cohens_d_growth=cohens_growth,
        pearson=correlations,
        emphasis_ranking=emphasis_ranking,
        growth_ranking=growth_ranking,
        growth_spread=growth_spread,
        emphasis_spread=emphasis_spread,
        gaps=gaps,
        scores=scores,
    )
