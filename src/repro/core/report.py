"""The reproduction report: regenerated tables next to the paper's.

:class:`ReproductionReport` turns a :class:`StudyAnalysis` plus the
published targets into the paper's six tables and two figures, each cell
showing *paper value* vs *reproduced value*, and computes the fidelity
checks EXPERIMENTS.md and the benchmarks assert:

- every mean difference has the paper's sign and significance;
- effect sizes fall in the paper's Cohen bands (medium / large);
- every correlation is positive, significant, and within tolerance of
  the paper's r, with the same Guilford band on the named cases;
- the rankings of Tables 5 and 6 match rank-for-rank (modulo the ties
  the paper itself prints).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.analysis import StudyAnalysis
from repro.core.targets import EMPHASIS, GROWTH, W1, W2, PaperTargets
from repro.reporting.figures import render_fig1_timeline, render_fig2_instrument
from repro.reporting.tables import Table
from repro.survey.instrument import ELEMENT_NAMES

__all__ = ["FidelityCheck", "ReproductionReport"]

#: Comparison tolerances (publication precision is 2 decimals).
MEAN_TOL = 0.02
R_TOL = 0.05
D_TOL = 0.15


@dataclass(frozen=True)
class FidelityCheck:
    """One named shape-check against the paper."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        return f"[{'PASS' if self.passed else 'FAIL'}] {self.name}: {self.detail}"


@dataclass(frozen=True)
class ReproductionReport:
    """Analysis + targets, renderable as the paper's artefacts."""

    analysis: StudyAnalysis
    paper: PaperTargets

    # -- tables -------------------------------------------------------------

    def table1(self) -> Table:
        t = Table(
            "Table 1. T-test: Class Emphasis and Personal Growth "
            "(paper p-values are inconsistent with its t at N=124; see EXPERIMENTS.md)",
            ["variable", "mean diff (paper)", "mean diff (ours)",
             "t (paper)", "t (ours)", "N", "p (paper)", "p (ours)"],
        )
        rows = [
            ("Class Emphasis", EMPHASIS, self.analysis.ttest_emphasis),
            ("Personal Growth", GROWTH, self.analysis.ttest_growth),
        ]
        for label, key, ours in rows:
            target = self.paper.table1[key]
            t.add_row(
                label,
                f"{target.mean_difference:+.2f}", f"{ours.mean_difference:+.2f}",
                f"{target.t:.2f}", f"{ours.t:.2f}",
                ours.n,
                f"{target.p_value:.3f}", f"{ours.p_value:.2e}",
            )
        return t

    def _cohens_table(self, title: str, target, ours) -> Table:
        t = Table(title, ["", "First Half Survey", "Second Half Survey"])
        t.add_row("Mean (paper)", f"{target.mean1:.6f}", f"{target.mean2:.6f}")
        t.add_row("Mean (ours)", f"{ours.mean1:.6f}", f"{ours.mean2:.6f}")
        t.add_row("SD (paper)", f"{target.sd1:.6f}", f"{target.sd2:.6f}")
        t.add_row("SD (ours)", f"{ours.sd1:.6f}", f"{ours.sd2:.6f}")
        t.add_row("n", str(ours.n1), str(ours.n2))
        t.add_row(
            "Cohen's d",
            f"paper {target.d:.2f} ({target.interpretation})",
            f"ours {ours.d:.2f} ({ours.interpretation})",
        )
        return t

    def table2(self) -> Table:
        return self._cohens_table(
            "Table 2. Cohen's d of Course Emphasis",
            self.paper.table2, self.analysis.cohens_d_emphasis,
        )

    def table3(self) -> Table:
        return self._cohens_table(
            "Table 3. Cohen's d (Effect Size) of Personal Growth",
            self.paper.table3, self.analysis.cohens_d_growth,
        )

    def table4(self) -> Table:
        t = Table(
            "Table 4. Pearson Correlation Between Class Emphasis and Personal Growth",
            ["skill", "r w1 (paper)", "r w1 (ours)", "p w1",
             "r w2 (paper)", "r w2 (ours)", "p w2", "N"],
        )
        for skill in ELEMENT_NAMES:
            ours1 = self.analysis.pearson[(skill, W1)]
            ours2 = self.analysis.pearson[(skill, W2)]
            t.add_row(
                skill,
                f"{self.paper.table4_r[(skill, W1)]:.2f}", f"{ours1.r:.2f}",
                ours1.p_report(),
                f"{self.paper.table4_r[(skill, W2)]:.2f}", f"{ours2.r:.2f}",
                ours2.p_report(),
                ours1.n,
            )
        return t

    def _ranking_table(self, title: str, paper_means: Mapping[tuple[str, str], float],
                       ranking: Mapping[str, tuple]) -> Table:
        t = Table(
            title,
            ["rank", "first half (paper)", "first half (ours)",
             "second half (paper)", "second half (ours)"],
        )
        paper_w1 = sorted(
            ((s, v) for (s, w), v in paper_means.items() if w == W1),
            key=lambda kv: (-kv[1], kv[0]),
        )
        paper_w2 = sorted(
            ((s, v) for (s, w), v in paper_means.items() if w == W2),
            key=lambda kv: (-kv[1], kv[0]),
        )
        ours_w1 = ranking[W1]
        ours_w2 = ranking[W2]
        for i in range(len(paper_w1)):
            t.add_row(
                i + 1,
                f"{paper_w1[i][0]}: {paper_w1[i][1]:.2f}",
                f"{ours_w1[i].name}: {ours_w1[i].score:.2f}",
                f"{paper_w2[i][0]}: {paper_w2[i][1]:.2f}",
                f"{ours_w2[i].name}: {ours_w2[i].score:.2f}",
            )
        return t

    def table5(self) -> Table:
        return self._ranking_table(
            "Table 5. Ranking of Student Perception of the Course Emphasis",
            self.paper.table5_emphasis, self.analysis.emphasis_ranking,
        )

    def table6(self) -> Table:
        return self._ranking_table(
            "Table 6. Ranking of Student Perception of Personal Growth",
            self.paper.table6_growth, self.analysis.growth_ranking,
        )

    def render_table(self, table_id: str) -> str:
        tables = {
            "table1": self.table1, "table2": self.table2, "table3": self.table3,
            "table4": self.table4, "table5": self.table5, "table6": self.table6,
        }
        if table_id not in tables:
            raise KeyError(f"unknown table {table_id!r}; expected {sorted(tables)}")
        return tables[table_id]().render()

    def render_figure(self, figure_id: str) -> str:
        figures = {"fig1": render_fig1_timeline, "fig2": render_fig2_instrument}
        if figure_id not in figures:
            raise KeyError(f"unknown figure {figure_id!r}; expected {sorted(figures)}")
        return figures[figure_id]()

    def render_all(self) -> str:
        parts = [self.render_figure("fig1"), self.render_figure("fig2")]
        parts += [self.render_table(f"table{i}") for i in range(1, 7)]
        parts.append("\n".join(str(c) for c in self.fidelity_checks()))
        return "\n\n".join(parts)

    # -- fidelity -----------------------------------------------------------

    def fidelity_checks(self) -> list[FidelityCheck]:
        """Every shape-check, named."""
        a = self.analysis
        checks: list[FidelityCheck] = []

        for label, ours in (("emphasis", a.ttest_emphasis), ("growth", a.ttest_growth)):
            checks.append(FidelityCheck(
                f"table1.{label}.direction",
                ours.mean_difference < 0,
                f"second half higher (mean diff {ours.mean_difference:+.3f})",
            ))
            checks.append(FidelityCheck(
                f"table1.{label}.significant",
                ours.p_value < 0.05,
                f"p = {ours.p_value:.2e}",
            ))

        checks.append(FidelityCheck(
            "table2.effect_band",
            a.cohens_d_emphasis.interpretation == self.paper.table2.interpretation,
            f"d = {a.cohens_d_emphasis.d:.2f} ({a.cohens_d_emphasis.interpretation}); "
            f"paper {self.paper.table2.d:.2f} ({self.paper.table2.interpretation})",
        ))
        checks.append(FidelityCheck(
            "table2.d_close",
            abs(a.cohens_d_emphasis.d - self.paper.table2.d) <= D_TOL,
            f"|{a.cohens_d_emphasis.d:.2f} - {self.paper.table2.d:.2f}| <= {D_TOL}",
        ))
        checks.append(FidelityCheck(
            "table3.effect_band",
            a.cohens_d_growth.interpretation == self.paper.table3.interpretation,
            f"d = {a.cohens_d_growth.d:.2f} ({a.cohens_d_growth.interpretation}); "
            f"paper {self.paper.table3.d:.2f} ({self.paper.table3.interpretation})",
        ))
        checks.append(FidelityCheck(
            "table3.d_close",
            abs(a.cohens_d_growth.d - self.paper.table3.d) <= D_TOL,
            f"|{a.cohens_d_growth.d:.2f} - {self.paper.table3.d:.2f}| <= {D_TOL}",
        ))

        worst_r = 0.0
        all_positive = True
        all_significant = True
        for (skill, wave), target_r in self.paper.table4_r.items():
            ours = a.pearson[(skill, wave)]
            worst_r = max(worst_r, abs(ours.r - target_r))
            all_positive &= ours.r > 0
            all_significant &= ours.p_value < 0.001
        checks.append(FidelityCheck(
            "table4.r_within_tolerance", worst_r <= R_TOL,
            f"max |r - paper r| = {worst_r:.3f} <= {R_TOL}",
        ))
        checks.append(FidelityCheck(
            "table4.all_positive_significant", all_positive and all_significant,
            "all 14 correlations positive with p < 0.001",
        ))
        named = a.pearson[("Evaluation and Decision Making", W2)]
        checks.append(FidelityCheck(
            "table4.eval_dm_high_band", named.strength.label == "high",
            f"Evaluation and Decision Making w2 r = {named.r:.2f} "
            f"({named.strength.label})",
        ))
        teamwork1 = a.pearson[("Teamwork", W1)]
        checks.append(FidelityCheck(
            "table4.teamwork_w1_low_band", teamwork1.strength.label == "low",
            f"Teamwork w1 r = {teamwork1.r:.2f} ({teamwork1.strength.label})",
        ))

        for table_id, paper_means, ranking in (
            ("table5", self.paper.table5_emphasis, a.emphasis_ranking),
            ("table6", self.paper.table6_growth, a.growth_ranking),
        ):
            for wave in (W1, W2):
                paper_order = [
                    s for s, _v in sorted(
                        ((s, v) for (s, w), v in paper_means.items() if w == wave),
                        key=lambda kv: (-kv[1], kv[0]),
                    )
                ]
                ours_order = [item.name for item in ranking[wave]]
                # Treat adjacent paper ties (equal to 2 decimals) as swappable.
                agreement = _orders_agree(paper_order, ours_order, paper_means, wave)
                checks.append(FidelityCheck(
                    f"{table_id}.{wave}.rank_order", agreement,
                    f"paper {paper_order} vs ours {ours_order}",
                ))

        checks.append(FidelityCheck(
            "table6.teamwork_top_growth",
            a.growth_ranking[W1][0].name == "Teamwork"
            and a.growth_ranking[W2][0].name == "Teamwork",
            "Teamwork is the top-ranked growth item in both waves",
        ))
        checks.append(FidelityCheck(
            "discussion.growth_spread_narrows",
            a.growth_spread[W1] > a.growth_spread[W2],
            f"growth spread w1 {a.growth_spread[W1]:.2f} > w2 "
            f"{a.growth_spread[W2]:.2f} (growth became 'more equal')",
        ))
        implementation_gap = a.gaps[W2]["Implementation"][0]
        checks.append(FidelityCheck(
            "discussion.implementation_gap_small",
            abs(implementation_gap) <= 0.1,
            f"second-half emphasis-growth gap on Implementation = "
            f"{implementation_gap:+.3f} (paper: 0.03)",
        ))
        return checks

    def all_checks_pass(self) -> bool:
        return all(c.passed for c in self.fidelity_checks())


def _orders_agree(
    paper_order: list[str],
    ours_order: list[str],
    paper_means: Mapping[tuple[str, str], float],
    wave: str,
) -> bool:
    """Rank orders agree, allowing swaps among paper-tied adjacent items."""
    if paper_order == ours_order:
        return True
    for i, (p, o) in enumerate(zip(paper_order, ours_order)):
        if p == o:
            continue
        # Allowed only if the two swapped items tie in the paper to 2dp.
        if o not in paper_order:
            return False
        j = paper_order.index(o)
        if abs(paper_means[(p, wave)] - paper_means[(o, wave)]) > 0.005 or abs(i - j) > 1:
            return False
    return True
