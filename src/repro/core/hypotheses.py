"""The paper's three hypotheses as executable checks.

- **H1** — "There is a difference in emphasis on parallel programming and
  soft skills between the first and second parts of the semester."
  Supported when the paired t-test on Class Emphasis is significant and
  the effect is at least medium (the paper reports d = 0.50).

- **H2** — "By incorporating project-based learning, the students acquire
  personal growth and improvement on their parallel programming and soft
  skills."  Supported when the paired t-test on Personal Growth is
  significant and the effect is large (the paper reports d = 0.86).

- **H3** — "Students growth in parallel programming and soft skills did
  increase when greater emphasis is placed on these areas."  Supported
  when every per-skill emphasis↔growth Pearson correlation is positive
  and significant at the paper's p < 0.001 level.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analysis import StudyAnalysis

__all__ = ["HypothesisOutcome", "evaluate_hypotheses"]

ALPHA = 0.05
H3_ALPHA = 0.001


@dataclass(frozen=True)
class HypothesisOutcome:
    """Verdict for one hypothesis."""

    hypothesis: str
    statement: str
    supported: bool
    evidence: str

    def __str__(self) -> str:
        verdict = "SUPPORTED" if self.supported else "NOT SUPPORTED"
        return f"{self.hypothesis}: {verdict} — {self.evidence}"


def evaluate_hypotheses(analysis: StudyAnalysis) -> tuple[HypothesisOutcome, ...]:
    """Evaluate H1–H3 against a regenerated analysis."""
    h1_sig = analysis.ttest_emphasis.significant(ALPHA)
    h1_dir = analysis.ttest_emphasis.mean_difference < 0  # second half higher
    h1_size = abs(analysis.cohens_d_emphasis.d) >= 0.5
    h1 = HypothesisOutcome(
        hypothesis="H1",
        statement=(
            "There is a difference in emphasis on parallel programming and "
            "soft skills between the first and second parts of the semester."
        ),
        supported=h1_sig and h1_dir and h1_size,
        evidence=(
            f"paired t({analysis.ttest_emphasis.df:g}) = {analysis.ttest_emphasis.t:.2f}, "
            f"p = {analysis.ttest_emphasis.p_value:.4g}, "
            f"d = {analysis.cohens_d_emphasis.d:.2f} "
            f"({analysis.cohens_d_emphasis.interpretation})"
        ),
    )

    h2_sig = analysis.ttest_growth.significant(ALPHA)
    h2_dir = analysis.ttest_growth.mean_difference < 0
    h2_size = abs(analysis.cohens_d_growth.d) >= 0.8
    h2 = HypothesisOutcome(
        hypothesis="H2",
        statement=(
            "By incorporating project-based learning, the students acquire "
            "personal growth and improvement on their parallel programming "
            "and soft skills."
        ),
        supported=h2_sig and h2_dir and h2_size,
        evidence=(
            f"paired t({analysis.ttest_growth.df:g}) = {analysis.ttest_growth.t:.2f}, "
            f"p = {analysis.ttest_growth.p_value:.4g}, "
            f"d = {analysis.cohens_d_growth.d:.2f} "
            f"({analysis.cohens_d_growth.interpretation})"
        ),
    )

    all_positive = all(c.r > 0 for c in analysis.pearson.values())
    all_significant = all(c.p_value < H3_ALPHA for c in analysis.pearson.values())
    weakest = min(analysis.pearson.values(), key=lambda c: c.r)
    h3 = HypothesisOutcome(
        hypothesis="H3",
        statement=(
            "Students growth in parallel programming and soft skills did "
            "increase when greater emphasis is placed on these areas."
        ),
        supported=all_positive and all_significant,
        evidence=(
            f"all {len(analysis.pearson)} emphasis-growth correlations positive "
            f"and p < {H3_ALPHA:g}; weakest r = {weakest.r:.2f} "
            f"({weakest.strength.label})"
        ),
    )
    return (h1, h2, h3)
