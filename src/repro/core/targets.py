"""The paper's published numbers, stored once.

Every value below is transcribed from the paper (IPPS 2019).  They serve
two purposes: as *calibration targets* for the synthetic response model,
and as *comparison baselines* that EXPERIMENTS.md and the benchmarks print
next to our regenerated values.

Tables:

- Table 1 — paired t-tests (mean difference, t, N, p).
- Table 2 — Cohen's d of Course Emphasis (M, SD, n per wave; d = 0.50).
- Table 3 — Cohen's d of Personal Growth (d = 0.86).
- Table 4 — Pearson emphasis↔growth per skill per wave.
- Table 5 — ranking of perceived Course Emphasis (per-skill means).
- Table 6 — ranking of perceived Personal Growth (per-skill means).
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from repro.simulation.model import SimulationTargets
from repro.survey.instrument import ELEMENT_NAMES

__all__ = ["PaperTargets", "PAPER", "simulation_targets"]

EMPHASIS = "class_emphasis"
GROWTH = "personal_growth"
W1 = "first_half"
W2 = "second_half"


@dataclass(frozen=True)
class TTestRow:
    """One row of Table 1."""

    mean_difference: float
    t: float
    n: int
    p_value: float


@dataclass(frozen=True)
class CohensDTable:
    """One of Tables 2/3: per-wave M/SD/n and the reported d."""

    mean1: float
    sd1: float
    mean2: float
    sd2: float
    n: int
    d: float
    interpretation: str


@dataclass(frozen=True)
class PaperTargets:
    """All published statistics."""

    n_students: int
    n_male: int
    n_female: int
    table1: Mapping[str, TTestRow]
    table2: CohensDTable
    table3: CohensDTable
    table4_r: Mapping[tuple[str, str], float]       # (skill, wave) -> r
    table5_emphasis: Mapping[tuple[str, str], float]  # (skill, wave) -> mean
    table6_growth: Mapping[tuple[str, str], float]


def _by_wave(w1: dict[str, float], w2: dict[str, float]) -> Mapping[tuple[str, str], float]:
    out: dict[tuple[str, str], float] = {}
    for skill, value in w1.items():
        out[(skill, W1)] = value
    for skill, value in w2.items():
        out[(skill, W2)] = value
    if {s for s, _ in out} != set(ELEMENT_NAMES):
        raise ValueError("wave tables must cover exactly the seven elements")
    return MappingProxyType(out)


PAPER = PaperTargets(
    n_students=124,
    n_male=98,
    n_female=26,
    table1=MappingProxyType(
        {
            EMPHASIS: TTestRow(mean_difference=-0.10, t=-2.63, n=124, p_value=0.039),
            GROWTH: TTestRow(mean_difference=-0.20, t=-5.11, n=124, p_value=0.002),
        }
    ),
    table2=CohensDTable(
        mean1=4.023068, sd1=0.232416, mean2=4.124365, sd2=0.172052,
        n=124, d=0.50, interpretation="medium",
    ),
    table3=CohensDTable(
        mean1=3.81, sd1=0.262204, mean2=4.01, sd2=0.198497,
        n=124, d=0.86, interpretation="large",
    ),
    table4_r=_by_wave(
        {
            "Teamwork": 0.38,
            "Information Gathering": 0.66,
            "Problem Definition": 0.62,
            "Idea Generation": 0.64,
            "Evaluation and Decision Making": 0.73,
            "Implementation": 0.59,
            "Communication": 0.67,
        },
        {
            "Teamwork": 0.47,
            "Information Gathering": 0.68,
            "Problem Definition": 0.61,
            "Idea Generation": 0.57,
            "Evaluation and Decision Making": 0.73,
            "Implementation": 0.61,
            "Communication": 0.67,
        },
    ),
    table5_emphasis=_by_wave(
        {
            "Teamwork": 4.38,
            "Implementation": 4.16,
            "Problem Definition": 4.09,
            "Idea Generation": 4.04,
            "Communication": 4.02,
            "Information Gathering": 3.81,
            "Evaluation and Decision Making": 3.66,
        },
        {
            "Teamwork": 4.41,
            "Implementation": 4.25,
            "Problem Definition": 4.19,
            "Idea Generation": 4.09,
            "Communication": 4.03,
            "Evaluation and Decision Making": 3.98,
            "Information Gathering": 3.91,
        },
    ),
    table6_growth=_by_wave(
        {
            "Teamwork": 4.14,
            "Implementation": 4.05,
            "Problem Definition": 3.89,
            "Idea Generation": 3.84,
            "Communication": 3.83,
            "Information Gathering": 3.62,
            "Evaluation and Decision Making": 3.36,
        },
        {
            "Teamwork": 4.33,
            "Implementation": 4.22,
            "Problem Definition": 4.00,
            "Idea Generation": 3.97,
            "Communication": 3.97,
            "Information Gathering": 3.84,
            "Evaluation and Decision Making": 3.77,
        },
    ),
)


def simulation_targets(paper: PaperTargets = PAPER) -> SimulationTargets:
    """Assemble the response-model calibration targets from the paper.

    Per-skill mean targets come from Tables 5/6; overall SD targets from
    Tables 2/3; Pearson targets from Table 4.  (The overall *means* of
    Tables 2/3 are not independent targets — they are the average of the
    per-skill means, a consistency the paper itself satisfies to rounding
    and our calibration check re-verifies.)
    """
    skill_means: dict[tuple[str, str, str], float] = {}
    for (skill, wave), value in paper.table5_emphasis.items():
        skill_means[(skill, EMPHASIS, wave)] = value
    for (skill, wave), value in paper.table6_growth.items():
        skill_means[(skill, GROWTH, wave)] = value
    return SimulationTargets(
        skills=ELEMENT_NAMES,
        n_students=paper.n_students,
        skill_means=skill_means,
        overall_sd={
            (EMPHASIS, W1): paper.table2.sd1,
            (EMPHASIS, W2): paper.table2.sd2,
            (GROWTH, W1): paper.table3.sd1,
            (GROWTH, W2): paper.table3.sd2,
        },
        pearson_r=dict(paper.table4_r),
    )
