"""Programmatic experiments summary: paper vs ours, as data and markdown.

EXPERIMENTS.md in this repository was written from a study run; this
module generates the same comparison *from* a study run, so a user who
changes anything (targets, seeds, model constants) can regenerate the
record instead of trusting a stale document::

    result = PBLStudy.default().run()
    summary = build_experiment_summary(result)
    print(render_markdown(summary))

Every row carries the paper value, our value, the absolute delta and a
pass/fail against the same tolerances the fidelity checks use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.report import D_TOL, MEAN_TOL, R_TOL, ReproductionReport
from repro.core.study import StudyResult
from repro.core.targets import EMPHASIS, GROWTH, W1, W2, PAPER, PaperTargets
from repro.survey.instrument import ELEMENT_NAMES

__all__ = ["ComparisonRow", "ExperimentSummary", "build_experiment_summary",
           "render_markdown"]


@dataclass(frozen=True)
class ComparisonRow:
    """One paper-vs-ours comparison."""

    artifact: str           # "table2", "table4", ...
    quantity: str           # human-readable name of the number
    paper_value: float
    our_value: float
    tolerance: float

    @property
    def delta(self) -> float:
        return self.our_value - self.paper_value

    @property
    def within_tolerance(self) -> bool:
        return abs(self.delta) <= self.tolerance


@dataclass(frozen=True)
class ExperimentSummary:
    """All comparison rows plus the fidelity verdicts."""

    rows: tuple[ComparisonRow, ...]
    checks_passed: int
    checks_total: int

    @property
    def all_within_tolerance(self) -> bool:
        return all(row.within_tolerance for row in self.rows)

    def rows_for(self, artifact: str) -> list[ComparisonRow]:
        return [row for row in self.rows if row.artifact == artifact]


def build_experiment_summary(
    result: StudyResult, paper: PaperTargets = PAPER
) -> ExperimentSummary:
    """Compare a study run against the published values, row by row."""
    analysis = result.analysis
    rows: list[ComparisonRow] = []

    # Table 1: mean differences (the t/p columns are documented as
    # inconsistent in the paper; the mean differences are the comparable
    # quantities).
    rows.append(ComparisonRow(
        "table1", "Class Emphasis mean difference",
        paper.table1[EMPHASIS].mean_difference,
        analysis.ttest_emphasis.mean_difference, MEAN_TOL,
    ))
    rows.append(ComparisonRow(
        "table1", "Personal Growth mean difference",
        paper.table1[GROWTH].mean_difference,
        analysis.ttest_growth.mean_difference, MEAN_TOL,
    ))

    # Tables 2-3: wave moments and d.
    for artifact, target, ours in (
        ("table2", paper.table2, analysis.cohens_d_emphasis),
        ("table3", paper.table3, analysis.cohens_d_growth),
    ):
        rows.append(ComparisonRow(artifact, "M first half", target.mean1,
                                  ours.mean1, MEAN_TOL))
        rows.append(ComparisonRow(artifact, "M second half", target.mean2,
                                  ours.mean2, MEAN_TOL))
        rows.append(ComparisonRow(artifact, "SD first half", target.sd1,
                                  ours.sd1, 0.01))
        rows.append(ComparisonRow(artifact, "SD second half", target.sd2,
                                  ours.sd2, 0.01))
        rows.append(ComparisonRow(artifact, "Cohen's d", target.d, ours.d, D_TOL))

    # Table 4: all fourteen correlations.
    for (skill, wave), target_r in sorted(paper.table4_r.items()):
        label = "w1" if wave == W1 else "w2"
        rows.append(ComparisonRow(
            "table4", f"r({skill}, {label})", target_r,
            analysis.pearson[(skill, wave)].r, R_TOL,
        ))

    # Tables 5-6: all twenty-eight composite means.
    for artifact, paper_means, ranking in (
        ("table5", paper.table5_emphasis, analysis.emphasis_ranking),
        ("table6", paper.table6_growth, analysis.growth_ranking),
    ):
        for wave in (W1, W2):
            ours_by_name = {item.name: item.score for item in ranking[wave]}
            label = "w1" if wave == W1 else "w2"
            for skill in ELEMENT_NAMES:
                rows.append(ComparisonRow(
                    artifact, f"{skill} ({label})",
                    paper_means[(skill, wave)], ours_by_name[skill], MEAN_TOL,
                ))

    report = ReproductionReport(analysis=analysis, paper=paper)
    checks = report.fidelity_checks()
    return ExperimentSummary(
        rows=tuple(rows),
        checks_passed=sum(1 for c in checks if c.passed),
        checks_total=len(checks),
    )


def render_markdown(summary: ExperimentSummary) -> str:
    """The summary as a markdown document (a generated EXPERIMENTS section)."""
    lines = [
        "# Experiment summary (generated)",
        "",
        f"Fidelity checks: **{summary.checks_passed}/{summary.checks_total}"
        f" pass**; value comparisons within tolerance: "
        f"**{sum(r.within_tolerance for r in summary.rows)}/{len(summary.rows)}**.",
        "",
    ]
    current = None
    for row in summary.rows:
        if row.artifact != current:
            current = row.artifact
            lines += [f"## {current}", "",
                      "| quantity | paper | ours | delta | ok |",
                      "|---|---|---|---|---|"]
        lines.append(
            f"| {row.quantity} | {row.paper_value:.4f} | {row.our_value:.4f} "
            f"| {row.delta:+.4f} | {'yes' if row.within_tolerance else 'NO'} |"
        )
    return "\n".join(lines)
