"""The injector: evaluates a plan at runtime and keeps the replay log.

The injector owns one invocation counter per (site, key).  ``key`` is
the runtime-supplied stable sub-coordinate — map task ``"map:3"``, MPI
channel ``"1->2"``, ligand string — so indices are program-order facts,
not thread-arrival accidents.  Every fault that fires is appended to an
in-memory log; :meth:`FaultInjector.log_lines` renders the log in
canonical (sorted, timestamp-free) form, which is the artifact the
determinism tests compare byte-for-byte across runs and hash seeds.

Injected faults surface as exceptions the runtimes already know how to
handle (:class:`InjectedCrash` kills a task attempt or thread,
:class:`TransientFault` is the retryable kind policies recover from) or
as message verdicts the transport applies (drop / delay / duplicate /
corrupt).  Every firing also emits telemetry, so a chaos run's trace
shows fault → detection → recovery on one timeline.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.faults.clock import SYSTEM_CLOCK, Clock
from repro.faults.plan import FaultKind, FaultPlan, FaultRule
from repro.telemetry import instrument as telemetry

__all__ = [
    "InjectedCrash",
    "TransientFault",
    "InjectedFault",
    "FaultInjector",
]


class InjectedCrash(RuntimeError):
    """A planned worker/thread death.  Not a bug — scheduled chaos."""


class TransientFault(RuntimeError):
    """A planned transient failure; retry policies are expected to absorb it."""


@dataclass(frozen=True)
class InjectedFault:
    """One log entry: where, which invocation, and what was done."""

    site: str
    key: str
    index: int
    kind: FaultKind
    rule_index: int

    def canonical(self) -> str:
        return f"{self.site}|{self.key}|{self.index}|{self.kind.value}|r{self.rule_index}"


class FaultInjector:
    """Evaluates :class:`FaultPlan` rules and records what fired."""

    def __init__(self, plan: FaultPlan, clock: Clock | None = None) -> None:
        self.plan = plan
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, str], int] = {}
        self._fires_per_rule: dict[int, int] = {}
        self._log: list[InjectedFault] = []
        # Site → candidate rules, resolved once (plans are frozen).
        self._site_rules: dict[str, tuple[tuple[int, FaultRule], ...]] = {}

    # -- evaluation ----------------------------------------------------------

    def _candidates(self, site: str) -> tuple[tuple[int, FaultRule], ...]:
        cached = self._site_rules.get(site)
        if cached is None:
            cached = tuple(
                (i, rule)
                for i, rule in enumerate(self.plan.rules)
                if rule.matches_site(site)
            )
            with self._lock:
                self._site_rules[site] = cached
        return cached

    def check(self, site: str, key: str = "", **context: Any) -> InjectedFault | None:
        """One invocation of ``site``/``key``: returns the fault to apply.

        The invocation index advances whether or not anything fires —
        indices are coordinates of the program, not of the plan.  The
        first matching rule (plan order) wins.
        """
        candidates = self._candidates(site)
        with self._lock:
            index = self._counters.get((site, key), 0)
            self._counters[(site, key)] = index + 1
            fired: InjectedFault | None = None
            for rule_index, rule in candidates:
                limit = rule.max_fires
                if limit is not None and self._fires_per_rule.get(rule_index, 0) >= limit:
                    continue
                if not rule.matches_context(context):
                    continue
                if not rule.selects_index(self.plan.seed, site, key, index):
                    continue
                fired = InjectedFault(
                    site=site, key=key, index=index,
                    kind=rule.kind, rule_index=rule_index,
                )
                self._fires_per_rule[rule_index] = (
                    self._fires_per_rule.get(rule_index, 0) + 1
                )
                self._log.append(fired)
                break
        if fired is not None:
            telemetry.instant("fault.injected", site=site, key=key,
                              index=index, kind=fired.kind.value)
            telemetry.inc("faults.injected")
            telemetry.inc(f"faults.injected.{fired.kind.value}")
        return fired

    def rule_for(self, fault: InjectedFault) -> FaultRule:
        return self.plan.rules[fault.rule_index]

    # -- applying call-site faults ------------------------------------------

    def fire(self, site: str, key: str = "", **context: Any) -> InjectedFault | None:
        """Evaluate a *call* site and apply the fault in place.

        CRASH and EXCEPTION raise; STALL and SLOW sleep on the injector's
        clock then return the fault; message kinds are returned for the
        transport to apply (a call site receiving one ignores it rather
        than guessing a meaning).
        """
        fault = self.check(site, key, **context)
        if fault is None:
            return None
        rule = self.rule_for(fault)
        if fault.kind is FaultKind.CRASH:
            raise InjectedCrash(
                f"injected crash at {site} [{key}] invocation {fault.index}"
            )
        if fault.kind is FaultKind.EXCEPTION:
            raise TransientFault(
                rule.note
                or f"injected transient fault at {site} [{key}] invocation {fault.index}"
            )
        if fault.kind in (FaultKind.STALL, FaultKind.SLOW):
            self.clock.sleep(rule.delay_s)
        return fault

    # -- the replay log ------------------------------------------------------

    @property
    def log(self) -> list[InjectedFault]:
        with self._lock:
            return list(self._log)

    def log_lines(self) -> list[str]:
        """Canonical injected-event log: sorted, timestamp-free lines.

        Sorting removes thread-arrival nondeterminism; the *content* is
        already deterministic because indices are per-(site, key).  Two
        runs with the same plan and seed must produce byte-identical
        output here — that is the replay contract.
        """
        return sorted(fault.canonical() for fault in self.log)

    def counts_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for fault in self.log:
            out[fault.kind.value] = out.get(fault.kind.value, 0) + 1
        return dict(sorted(out.items()))
