"""The hooks instrumented runtimes call — single branch when disabled.

Exactly the shape of :mod:`repro.telemetry.instrument`: a module-global
``_INJECTOR`` that is ``None`` when no fault plan is active, and every
hook starts by loading it and bailing.  Disabled fault injection
therefore costs the runtimes one attribute load and one ``is None`` test
per site — the same budget the telemetry hooks already meet (≤5% on a
fork-join region), and the two families share call sites so the bound
is tested for both together.

Runtimes import only this module::

    from repro.faults import hooks as faults
    ...
    faults.fire("omp.thread", key=str(tid), thread=tid)   # may raise
    verdict = faults.message("mpi.send", key=f"{src}->{dest}", ...)
"""

from __future__ import annotations

from typing import Any

from repro.faults.injector import FaultInjector, InjectedFault
from repro.faults.plan import MESSAGE_KINDS, FaultKind, FaultRule

__all__ = ["enabled", "active_injector", "fire", "message", "corrupt"]

#: The active injector, or None.  Rebinding is atomic under the GIL; a
#: stale read at the enable/disable edge merely injects (or skips) one
#: fault, which only chaos sessions can observe.
_INJECTOR: FaultInjector | None = None


def _install(injector: FaultInjector) -> None:
    global _INJECTOR
    _INJECTOR = injector


def _uninstall() -> None:
    global _INJECTOR
    _INJECTOR = None


def enabled() -> bool:
    """Is a fault plan currently active?"""
    return _INJECTOR is not None


def active_injector() -> FaultInjector | None:
    return _INJECTOR


def fire(site: str, key: str = "", **context: Any) -> InjectedFault | None:
    """Evaluate a call site: may raise InjectedCrash / TransientFault,
    may sleep (STALL/SLOW), returns the fault record if one fired."""
    injector = _INJECTOR
    if injector is None:
        return None
    return injector.fire(site, key, **context)


def message(
    site: str, key: str = "", **context: Any
) -> tuple[FaultKind, FaultRule] | None:
    """Evaluate a message site: returns the (kind, rule) verdict for the
    transport to apply — DROP, DELAY, DUPLICATE, or CORRUPT — or None."""
    injector = _INJECTOR
    if injector is None:
        return None
    fault = injector.check(site, key, **context)
    if fault is None or fault.kind not in MESSAGE_KINDS:
        return None
    return fault.kind, injector.rule_for(fault)


def corrupt(site: str, key: str = "", **context: Any) -> bool:
    """Evaluate a payload-integrity site: True when the payload should be
    corrupted in flight (the consumer's checksum is expected to catch it)."""
    injector = _INJECTOR
    if injector is None:
        return False
    fault = injector.check(site, key, **context)
    return fault is not None and fault.kind is FaultKind.CORRUPT
