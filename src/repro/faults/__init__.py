"""``repro.faults`` — deterministic fault injection and resilience policies.

The paper's hardest lesson is that parallel programs fail in ways that
are "difficult to reproduce and debug".  PR 1 gave the repo eyes
(:mod:`repro.telemetry`); this package gives it a *hand on the chaos
dial*: seeded, replayable failures, and the policies that survive them.

Layers:

- :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultRule`:
  which fault, at which site, on which invocation index;
- :mod:`repro.faults.injector` — :class:`FaultInjector` evaluates a plan
  and keeps the canonical injected-event log (the replay artifact);
- :mod:`repro.faults.hooks` — the single-branch hooks runtimes call
  (disabled cost: one ``is None`` test, same budget as telemetry);
- :mod:`repro.faults.policies` — retry with decorrelated-jitter backoff,
  deadline propagation, circuit breaker — all on an injectable clock;
- :mod:`repro.faults.clock` — the clocks (system / fake / scaled);
- :mod:`repro.faults.chaos` — named plan + workload pairs behind
  ``python -m repro chaos``.

Usage::

    from repro import faults

    plan = faults.FaultPlan(rules=(
        faults.FaultRule("mr.task", faults.FaultKind.CRASH,
                         where={"phase": "map", "task": 0}, at=(0,)),
    ), seed=7)
    with faults.inject(plan) as injector:
        run_job()
    injector.log_lines()        # canonical, replayable fault log

Like telemetry sessions, fault sessions are process-global and do not
nest — the runtimes report to one injector, as they would to one chaos
controller in production.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from repro.faults import chaos, hooks, policies
from repro.faults.clock import FakeClock, ScaledClock, SystemClock
from repro.faults.hooks import _install, _uninstall
from repro.faults.injector import (
    FaultInjector,
    InjectedCrash,
    InjectedFault,
    TransientFault,
)
from repro.faults.plan import FaultKind, FaultPlan, FaultRule
from repro.faults.policies import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    RetryError,
    RetryPolicy,
)

__all__ = [
    "FaultKind",
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "InjectedCrash",
    "TransientFault",
    "RetryPolicy",
    "RetryError",
    "Deadline",
    "DeadlineExceeded",
    "CircuitBreaker",
    "CircuitOpenError",
    "SystemClock",
    "FakeClock",
    "ScaledClock",
    "enable",
    "disable",
    "is_enabled",
    "inject",
    "hooks",
    "policies",
    "chaos",
]

_session_lock = threading.Lock()


def enable(injector: FaultInjector) -> FaultInjector:
    """Activate an injector process-wide; raises if one is already active."""
    with _session_lock:
        if hooks.enabled():
            raise RuntimeError("fault injection is already enabled; sessions do not nest")
        _install(injector)
    return injector


def disable() -> FaultInjector | None:
    """Deactivate; returns the injector that was active, if any."""
    with _session_lock:
        active = hooks.active_injector()
        _uninstall()
    return active


def is_enabled() -> bool:
    return hooks.enabled()


@contextmanager
def inject(plan: FaultPlan, clock=None) -> Iterator[FaultInjector]:
    """``with faults.inject(plan) as injector:`` — chaos for the block."""
    injector = FaultInjector(plan, clock=clock)
    enable(injector)
    try:
        yield injector
    finally:
        disable()
