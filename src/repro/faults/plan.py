"""Fault plans: *what* goes wrong, *where*, and *when* — deterministically.

A :class:`FaultPlan` is a seed plus an ordered list of :class:`FaultRule`
entries.  A rule names an injection **site** (``"mr.task"``,
``"mpi.send"``, ``"omp.barrier"`` …) and fires on specific **invocation
indices** of that site.  Sites are sub-keyed by the runtime (per map
task, per MPI channel, per ligand), so an invocation index is a stable
program-order coordinate — *attempt 0 of map task 3*, *the second send
from rank 1 to rank 2* — not a racy global arrival number.  That is what
makes a plan replayable: the same seed and plan produce the same faults
at the same coordinates on every run, regardless of thread scheduling or
``PYTHONHASHSEED``.

Probabilistic rules stay deterministic the same way: the Bernoulli draw
for (site, key, index) is a pure hash of those coordinates and the plan
seed (CRC-32, not the salted builtin ``hash``), so it is *order
independent* — concurrent sites can draw in any interleaving and still
reproduce the same fault set.
"""

from __future__ import annotations

import fnmatch
import zlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping

__all__ = ["FaultKind", "FaultRule", "FaultPlan"]


class FaultKind(str, Enum):
    """What an injected fault does at its site."""

    CRASH = "crash"            # kill the worker/thread/task attempt
    EXCEPTION = "exception"    # raise a transient (retryable) error
    STALL = "stall"            # hold a lock/barrier entry for delay_s
    SLOW = "slow"              # slow node: sleep delay_s, then proceed
    DROP = "drop"              # message vanishes in flight
    DELAY = "delay"            # message is reordered behind later traffic
    DUPLICATE = "duplicate"    # message is delivered twice
    CORRUPT = "corrupt"        # payload is altered in flight (checksums catch it)


#: Kinds that only make sense at message sites.
MESSAGE_KINDS = frozenset(
    {FaultKind.DROP, FaultKind.DELAY, FaultKind.DUPLICATE, FaultKind.CORRUPT}
)


def _coordinate_hash(seed: int, site: str, key: str, index: int) -> float:
    """Order-independent uniform draw in [0, 1) for one coordinate."""
    blob = f"{seed}:{site}:{key}:{index}".encode("utf-8")
    return zlib.crc32(blob) / 2**32


@dataclass(frozen=True)
class FaultRule:
    """One deterministic trigger.

    The rule fires at an invocation of ``site`` when the context matches
    ``where`` (subset match on the kwargs the runtime passes) **and** the
    invocation index is selected: listed in ``at``, a multiple of
    ``every``, or chosen by the seeded coordinate draw (``probability``).
    ``max_fires`` caps total firings of this rule across the run.
    """

    site: str                                   # exact name or fnmatch glob
    kind: FaultKind
    at: tuple[int, ...] = ()
    every: int | None = None
    probability: float = 0.0
    where: Mapping[str, Any] = field(default_factory=dict)
    delay_s: float = 0.0                        # STALL / SLOW magnitude
    delay_slots: int = 1                        # DELAY reorder distance
    max_fires: int | None = None
    note: str = ""

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("rule site must be non-empty")
        if self.every is not None and self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if any(i < 0 for i in self.at):
            raise ValueError("invocation indices must be >= 0")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.delay_slots < 1:
            raise ValueError(f"delay_slots must be >= 1, got {self.delay_slots}")
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError(f"max_fires must be >= 1, got {self.max_fires}")
        if not (self.at or self.every is not None or self.probability > 0):
            raise ValueError(
                "rule needs a trigger: at=(...), every=N, or probability>0"
            )
        # Freeze `where` so rules stay hashable value objects.
        object.__setattr__(self, "where", dict(self.where))

    def matches_site(self, site: str) -> bool:
        if self.site == site:
            return True
        return fnmatch.fnmatchcase(site, self.site)

    def matches_context(self, context: Mapping[str, Any]) -> bool:
        return all(context.get(k) == v for k, v in self.where.items())

    def selects_index(self, seed: int, site: str, key: str, index: int) -> bool:
        if index in self.at:
            return True
        if self.every is not None and index % self.every == 0:
            return True
        if self.probability > 0.0:
            return _coordinate_hash(seed, site, key, index) < self.probability
        return False


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus rules; the unit the chaos CLI names and replays."""

    rules: tuple[FaultRule, ...]
    seed: int = 0
    name: str = "custom"

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def rules_for(self, site: str) -> tuple[FaultRule, ...]:
        return tuple(rule for rule in self.rules if rule.matches_site(site))

    def describe(self) -> str:
        lines = [f"plan {self.name!r} (seed {self.seed}, {len(self.rules)} rule(s))"]
        for i, rule in enumerate(self.rules):
            trigger = (
                f"at={list(rule.at)}" if rule.at
                else f"every={rule.every}" if rule.every is not None
                else f"p={rule.probability}"
            )
            where = f" where {dict(rule.where)}" if rule.where else ""
            lines.append(f"  [{i}] {rule.kind.value} @ {rule.site} {trigger}{where}")
        return "\n".join(lines)
