"""Named chaos scenarios for ``python -m repro chaos``.

Each workload pairs a deterministic :class:`FaultPlan` with a program
that *survives* it, and reports injected-vs-recovered counts — one
command demonstrating fault → detection → recovery end to end:

- ``mapreduce`` — map-worker deaths (planned and seeded-random) plus a
  shuffle corruption caught by checksum; the engine's re-execution
  recovers, and the output is byte-equal to a fault-free sequential run.
- ``openmp`` — a thread crash in the first parallel region and a barrier
  stall; a retry policy re-runs the region.
- ``mpi`` — a dropped, a duplicated, and a reordered (delayed) message
  on a ring exchange; an ack/retransmit protocol with sequence-number
  dedup recovers all three.
- ``drugdesign`` — seeded per-ligand transient failures absorbed by a
  retry policy with decorrelated-jitter backoff on a fake clock.
- ``stencil`` — a dropped halo message in the heat-diffusion exchange;
  a short deadlock timeout detects it and a whole-run retry converges
  to the fault-free sequential answer (float-for-float).
- ``collectives`` — messages dropped inside ``bcast`` and ``gather``;
  detection by recv timeout, recovery by re-running the collective
  phase (the dropped channels' invocation indices have advanced, so the
  retry goes clean).
- ``partition`` — :func:`partition_rank` cuts one rank off entirely; a
  master with a :class:`~repro.faults.policies.Deadline` budget detects
  the silent worker and reassigns its items, finishing with the full
  answer despite the dead rank.

Every scenario is replayable: the same ``--seed`` produces byte-identical
injected-event logs (see :meth:`FaultInjector.log_lines`).

Runtime imports live inside the workload functions (the CLI pattern of
:mod:`repro.telemetry.workloads`) so importing :mod:`repro.faults` does
not drag every runtime in.

Scenarios register as the ``chaos`` mode (runner + plan builder) of the
unified :mod:`repro.workloads` registry — the only name table they
appear in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro import workloads as registry
from repro.faults.clock import FakeClock
from repro.faults.injector import FaultInjector, TransientFault
from repro.faults.plan import FaultKind, FaultPlan, FaultRule
from repro.faults.policies import Deadline, RetryError, RetryPolicy

__all__ = [
    "ChaosReport",
    "chaos_workload_names",
    "named_plan",
    "partition_rank",
    "run_chaos",
]


@dataclass
class ChaosReport:
    """Outcome of one chaos scenario."""

    workload: str
    seed: int
    plan: FaultPlan
    injected_by_kind: dict[str, int]
    recovered: int
    detail: list[str] = field(default_factory=list)
    log_lines: list[str] = field(default_factory=list)
    ok: bool = False

    @property
    def injected_total(self) -> int:
        return sum(self.injected_by_kind.values())

    def render(self) -> str:
        lines = [
            f"chaos {self.workload!r} seed={self.seed}: "
            f"{self.injected_total} fault(s) injected, "
            f"{self.recovered} recovery action(s), "
            f"{'OK' if self.ok else 'FAILED'}",
        ]
        if self.injected_by_kind:
            by_kind = ", ".join(f"{k}={v}" for k, v in self.injected_by_kind.items())
            lines.append(f"  injected: {by_kind}")
        lines.extend(f"  {line}" for line in self.detail)
        lines.append("  injected-event log:")
        lines.extend(f"    {line}" for line in self.log_lines)
        return "\n".join(lines)


def partition_rank(rank: int) -> tuple[FaultRule, FaultRule]:
    """Rules that partition one MPI rank from the network: every message
    to or from it is dropped (pair with a deadline/timeout to observe)."""
    return (
        FaultRule("mpi.send", FaultKind.DROP, every=1, where={"dest": rank},
                  note=f"partition: to rank {rank}"),
        FaultRule("mpi.send", FaultKind.DROP, every=1, where={"source": rank},
                  note=f"partition: from rank {rank}"),
    )


#: Small deterministic corpus (mirrors the telemetry workloads').
_DOCUMENTS: tuple[tuple[int, str], ...] = (
    (0, "the fork joins the team and the team joins the fork"),
    (1, "a barrier waits for every thread every time"),
    (2, "map shuffle reduce map shuffle reduce"),
    (3, "the master re executes failed tasks"),
    (4, "stragglers get backup tasks near the end"),
    (5, "the reduction combines partial sums into one"),
    (6, "messages match by source and tag in order"),
    (7, "the scatter hands one block to every rank"),
)


# -- plans -------------------------------------------------------------------


def _mapreduce_plan(seed: int) -> FaultPlan:
    return FaultPlan(name="mapreduce", seed=seed, rules=(
        # A guaranteed worker death: attempt 0 of map task 0 dies.
        FaultRule("mr.task", FaultKind.CRASH, at=(0,),
                  where={"phase": "map", "task": 0}, note="planned map death"),
        # Seeded extra deaths: ~20% of map attempts, at most 2 in total.
        FaultRule("mr.task", FaultKind.CRASH, probability=0.2,
                  where={"phase": "map"}, max_fires=2, note="random map death"),
        # One shuffle corruption, caught by checksum and re-executed.
        FaultRule("mr.shuffle", FaultKind.CORRUPT, at=(0,),
                  where={"task": 1}, note="shuffle corruption"),
    ))


def _openmp_plan(seed: int) -> FaultPlan:
    return FaultPlan(name="openmp", seed=seed, rules=(
        FaultRule("omp.thread", FaultKind.CRASH, at=(0,),
                  where={"thread": 1}, note="thread 1 dies in region 0"),
        FaultRule("omp.barrier", FaultKind.STALL, at=(0,),
                  where={"thread": 0}, delay_s=0.01, note="barrier stall"),
    ))


def _mpi_plan(seed: int) -> FaultPlan:
    return FaultPlan(name="mpi", seed=seed, rules=(
        FaultRule("mpi.send", FaultKind.DROP, at=(0,),
                  where={"dest": 1, "tag": _DATA_TAG}, note="drop 0->1"),
        FaultRule("mpi.send", FaultKind.DUPLICATE, at=(0,),
                  where={"source": 1, "tag": _DATA_TAG}, note="duplicate 1->2"),
        FaultRule("mpi.send", FaultKind.DELAY, at=(0,), delay_slots=4,
                  where={"source": 2, "tag": _DATA_TAG}, note="reorder 2->next"),
    ))


def _drugdesign_plan(seed: int) -> FaultPlan:
    return FaultPlan(name="drugdesign", seed=seed, rules=(
        FaultRule("dd.score", FaultKind.EXCEPTION, probability=0.25,
                  note="transient scoring failure"),
    ))


def _stencil_plan(seed: int) -> FaultPlan:
    return FaultPlan(name="stencil", seed=seed, rules=(
        # The leftmost rank's very first halo send (rightward shift,
        # channel 0->1): its neighbour's sendrecv starves and times out.
        FaultRule("mpi.send", FaultKind.DROP, at=(0,),
                  where={"source": 0, "dest": 1, "tag": 1},
                  note="drop first halo 0->1"),
    ))


def _collectives_plan(seed: int) -> FaultPlan:
    return FaultPlan(name="collectives", seed=seed, rules=(
        # Inside bcast: root's copy to rank 1 vanishes (tag base 1_000_000).
        FaultRule("mpi.send", FaultKind.DROP, at=(0,),
                  where={"dest": 1, "tag": 1_000_000},
                  note="drop bcast to rank 1"),
        # Inside gather: rank 2's contribution to root vanishes
        # (tag base 1_000_002).
        FaultRule("mpi.send", FaultKind.DROP, at=(0,),
                  where={"source": 2, "tag": 1_000_002},
                  note="drop gather from rank 2"),
    ))


def _partition_plan(seed: int) -> FaultPlan:
    return FaultPlan(name="partition", seed=seed, rules=partition_rank(2))


def named_plan(workload: str, seed: int) -> FaultPlan:
    """The default plan the CLI runs for ``workload``."""
    entry = registry.get(workload)
    if entry.chaos_plan is None:
        raise KeyError(workload)
    return entry.chaos_plan(seed)


# -- workloads ---------------------------------------------------------------


def _run_mapreduce(injector: FaultInjector, seed: int, threads: int) -> tuple[int, list[str], bool]:
    from repro.mapreduce.engine import MapReduceEngine
    from repro.mapreduce.jobs import word_count_job

    spec = word_count_job(n_reduce_tasks=4)
    records = list(_DOCUMENTS)
    engine = MapReduceEngine(n_workers=threads, max_attempts=4)
    result = engine.run(spec, records)
    reference = MapReduceEngine(n_workers=1).run_sequential(spec, records)
    ok = result.output == reference.output
    recovered = result.retries
    detail = [
        f"word count over {len(records)} documents: {len(result.output)} "
        f"distinct words, {result.retries} task re-execution(s)",
        f"output matches fault-free sequential run: {ok}",
    ]
    return recovered, detail, ok


def _run_openmp(injector: FaultInjector, seed: int, threads: int) -> tuple[int, list[str], bool]:
    from repro.openmp.runtime import OpenMP, ParallelError

    omp = OpenMP(num_threads=threads)

    def region() -> int:
        partials = [0] * threads

        def body(ctx) -> None:
            partials[ctx.thread_num] = sum(
                i for i in range(100) if i % ctx.num_threads == ctx.thread_num
            )
            ctx.barrier()

        omp.parallel(body)
        return sum(partials)

    policy = RetryPolicy(max_attempts=3, base_s=0.0, cap_s=0.0,
                         seed=seed, retry_on=(ParallelError,))
    total = policy.call(region, what="omp.region")
    ok = total == sum(range(100))
    # Crashes that fired are exactly the region re-runs the policy absorbed.
    recovered = sum(1 for f in injector.log if f.kind is FaultKind.CRASH)
    detail = [
        f"fork-join region on {threads} threads survived "
        f"{recovered} thread crash(es) via region retry (sum={total})",
    ]
    return recovered, detail, ok


_DATA_TAG = 5
_ACK_TAG = 6


def _run_mpi(injector: FaultInjector, seed: int, threads: int) -> tuple[int, list[str], bool]:
    from repro.mpi.comm import ANY_SOURCE, ANY_TAG, Communicator, MPIError, mpi_run

    n_ranks = max(3, threads)
    messages_per_rank = 2
    ack_timeout_s = 0.25

    def program(comm: Communicator) -> dict[str, int]:
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        stats = {"retransmits": 0, "duplicates_dropped": 0, "reordered": 0}

        # Pipeline both numbered messages to the right (no ack wait in
        # between — that is what lets the DELAY fault reorder them), then
        # interleave: collect data from the left (acking and deduping)
        # and acks from the right, retransmitting unacked messages on
        # timeout.  A strict send-then-receive phase order would deadlock
        # the ring — every rank would wait for acks its neighbour only
        # sends after *its* acks arrive.
        payloads = {
            seq: {"seq": seq, "value": comm.rank * 10 + seq}
            for seq in range(messages_per_rank)
        }
        for seq in range(messages_per_rank):
            comm.send(payloads[seq], dest=right, tag=_DATA_TAG)

        acked: set[int] = set()
        got: dict[int, int] = {}
        arrival: list[int] = []
        while len(acked) < messages_per_rank or len(got) < messages_per_rank:
            try:
                message = comm.recv(source=ANY_SOURCE, tag=ANY_TAG,
                                    timeout=ack_timeout_s)
            except MPIError:
                # Ack overdue: the data message (or its ack) was lost.
                for seq in range(messages_per_rank):
                    if seq not in acked:
                        comm.send(payloads[seq], dest=right, tag=_DATA_TAG)
                        stats["retransmits"] += 1
                continue
            if "value" in message:               # data from the left
                comm.send({"ack": message["seq"]}, dest=left, tag=_ACK_TAG)
                if message["seq"] in got:
                    stats["duplicates_dropped"] += 1
                    continue
                got[message["seq"]] = message["value"]
                arrival.append(message["seq"])
            else:                                # ack from the right
                acked.add(message["ack"])
        if arrival != sorted(arrival):
            stats["reordered"] += 1
        values = [got[s] for s in sorted(got)]
        expected = [left * 10 + s for s in range(messages_per_rank)]
        if values != expected:
            raise AssertionError(
                f"rank {comm.rank}: got {values}, expected {expected}"
            )
        return stats

    all_stats = mpi_run(n_ranks, program)
    recovered = sum(sum(s.values()) for s in all_stats)
    detail = [
        f"ring exchange on {n_ranks} ranks: "
        + ", ".join(
            f"{key}={sum(s[key] for s in all_stats)}"
            for key in ("retransmits", "duplicates_dropped", "reordered")
        ),
        "every rank reassembled its neighbour's stream in seq order",
    ]
    return recovered, detail, True


def _run_drugdesign(injector: FaultInjector, seed: int, threads: int) -> tuple[int, list[str], bool]:
    from repro.drugdesign.ligands import DEFAULT_PROTEIN, generate_ligands
    from repro.drugdesign.solvers import score_ligand

    ligands = generate_ligands(24, max_ligand=5, seed=500)
    policy = RetryPolicy(max_attempts=5, base_s=0.01, cap_s=0.1, seed=seed,
                         clock=FakeClock(), retry_on=(TransientFault,))
    scored: list[tuple[int, str]] = []
    failures_absorbed = 0
    for ligand in ligands:
        before = len([f for f in injector.log if f.site == "dd.score"])
        score = policy.call(
            lambda lig=ligand: score_ligand(lig, DEFAULT_PROTEIN),
            what=f"dd.score:{ligand}",
        )
        failures_absorbed += len(
            [f for f in injector.log if f.site == "dd.score"]
        ) - before
        scored.append((score, ligand))

    max_score = max(score for score, _ in scored)
    best = sorted({lig for score, lig in scored if score == max_score})
    from repro.drugdesign.scoring import lcs_score
    expected_max = max(lcs_score(lig, DEFAULT_PROTEIN) for lig in ligands)
    ok = max_score == expected_max
    detail = [
        f"scored {len(ligands)} ligands; {failures_absorbed} transient "
        f"failure(s) absorbed by retry (max score {max_score}, "
        f"{len(best)} best ligand(s))",
    ]
    return failures_absorbed, detail, ok


def _run_stencil(injector: FaultInjector, seed: int, threads: int) -> tuple[int, list[str], bool]:
    from repro.mpi.comm import MPIError
    from repro.mpi.stencil import heat_mpi, heat_sequential

    n_ranks = max(2, min(4, threads))
    u0 = [100.0] + [0.0] * 22 + [50.0]
    alpha, steps = 0.25, 12
    expected = heat_sequential(u0, alpha=alpha, steps=steps)

    attempts = {"n": 0}

    def run() -> list[float]:
        attempts["n"] += 1
        # A tight deadlock budget: the dropped halo turns into an
        # MPIError in well under a second instead of a long hang.
        return heat_mpi(u0, alpha=alpha, steps=steps, n_ranks=n_ranks,
                        timeout_s=0.6)

    policy = RetryPolicy(max_attempts=3, base_s=0.0, cap_s=0.0, seed=seed,
                         retry_on=(MPIError,))
    result = policy.call(run, what="stencil.heat")
    ok = result == expected
    recovered = attempts["n"] - 1
    detail = [
        f"heat diffusion on {n_ranks} ranks survived a dropped halo "
        f"message: {recovered} whole-run retry(ies)",
        f"result matches heat_sequential float-for-float: {ok}",
    ]
    return recovered, detail, ok


def _run_collectives(injector: FaultInjector, seed: int, threads: int) -> tuple[int, list[str], bool]:
    from repro.mpi.comm import Communicator, MPIError, mpi_run

    n_ranks = max(3, min(4, threads))
    lo, hi = 0, 40
    expected = sum(range(lo, hi))

    def program(comm: Communicator) -> int | None:
        config = comm.bcast({"lo": lo, "hi": hi} if comm.rank == 0 else None,
                            root=0)
        partial = sum(range(config["lo"] + comm.rank, config["hi"], comm.size))
        totals = comm.gather(partial, root=0)
        if comm.rank == 0:
            return sum(totals)
        return None

    attempts = {"n": 0}

    def run() -> int:
        attempts["n"] += 1
        return mpi_run(n_ranks, program, timeout=0.6)[0]

    policy = RetryPolicy(max_attempts=4, base_s=0.0, cap_s=0.0, seed=seed,
                         retry_on=(MPIError,))
    total = policy.call(run, what="mpi.collectives")
    ok = total == expected
    recovered = attempts["n"] - 1
    detail = [
        f"bcast+gather sum on {n_ranks} ranks survived drops inside both "
        f"collectives: {recovered} whole-run retry(ies)",
        f"total={total} (expected {expected})",
    ]
    return recovered, detail, ok


_WORK_TAG, _RESULT_TAG, _STOP_TAG = 11, 12, 13


def _run_partition(injector: FaultInjector, seed: int, threads: int) -> tuple[int, list[str], bool]:
    from repro.mpi.comm import Communicator, MPIError, mpi_run

    n_ranks = 4                       # the plan partitions rank 2
    items = list(range(12))
    expected = sum(x * x for x in items)

    def program(comm: Communicator) -> dict | None:
        if comm.rank == 0:
            workers = list(range(1, comm.size))
            assigned = {
                w: [x for i, x in enumerate(items) if i % len(workers) == j]
                for j, w in enumerate(workers)
            }
            for w in workers:
                comm.send(assigned[w], dest=w, tag=_WORK_TAG)
            # Detection: a deadline budget for the whole collection phase;
            # a worker whose results never arrive within it is declared
            # partitioned and its items are reassigned to the master.
            deadline = Deadline.after(3.0)
            results: dict[int, int] = {}
            dead: list[int] = []
            for w in workers:
                try:
                    deadline.check(what=f"collect from rank {w}")
                    results.update(comm.recv(
                        source=w, tag=_RESULT_TAG,
                        timeout=min(0.4, deadline.remaining()),
                    ))
                except MPIError:
                    dead.append(w)
            reassigned = [x for w in dead for x in assigned[w]]
            results.update({x: x * x for x in reassigned})
            for w in workers:
                comm.send(None, dest=w, tag=_STOP_TAG)
            return {
                "total": sum(results.values()),
                "dead": dead,
                "reassigned": len(reassigned),
            }
        try:
            batch = comm.recv(source=0, tag=_WORK_TAG, timeout=0.8)
        except MPIError:
            return None               # partitioned from the master: stand down
        comm.send({x: x * x for x in batch}, dest=0, tag=_RESULT_TAG)
        try:
            comm.recv(source=0, tag=_STOP_TAG, timeout=2.0)
        except MPIError:
            pass
        return None

    master = mpi_run(n_ranks, program, timeout=6.0)[0]
    ok = master["total"] == expected and master["dead"] == [2]
    detail = [
        f"rank 2 partitioned: master detected {len(master['dead'])} dead "
        f"worker(s) by deadline and reassigned {master['reassigned']} "
        f"item(s)",
        f"total={master['total']} (expected {expected})",
    ]
    return master["reassigned"], detail, ok


for _name, _run, _plan in (
    ("mapreduce", _run_mapreduce, _mapreduce_plan),
    ("openmp", _run_openmp, _openmp_plan),
    ("mpi", _run_mpi, _mpi_plan),
    ("drugdesign", _run_drugdesign, _drugdesign_plan),
    ("stencil", _run_stencil, _stencil_plan),
    ("collectives", _run_collectives, _collectives_plan),
    ("partition", _run_partition, _partition_plan),
):
    registry.register(_name, chaos=_run, chaos_plan=_plan)


def chaos_workload_names() -> list[str]:
    return registry.names("chaos")


def run_chaos(
    workload: str,
    seed: int = 0,
    threads: int = 4,
    plan: FaultPlan | None = None,
) -> ChaosReport:
    """Run one scenario under its (or a custom) fault plan.

    Raises KeyError for unknown workloads.  Activates the fault session
    itself; the caller may independently wrap it in a telemetry session.
    """
    from repro import faults

    entry = registry.get(workload)
    if entry.chaos is None:
        raise KeyError(workload)
    normalized = entry.name
    active_plan = plan if plan is not None else named_plan(normalized, seed)
    with faults.inject(active_plan) as injector:
        recovered, detail, ok = entry.chaos(injector, seed, threads)
    return ChaosReport(
        workload=normalized,
        seed=seed,
        plan=active_plan,
        injected_by_kind=injector.counts_by_kind(),
        recovered=recovered,
        detail=detail,
        log_lines=injector.log_lines(),
        ok=ok,
    )
