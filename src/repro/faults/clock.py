"""Injectable clocks: real, fake, and time-compressed.

Every sleep in the resilience stack — retry backoff, circuit-breaker
reset windows, injected stalls, straggler delays — goes through a
:class:`Clock` so tests control time instead of waiting for it:

- :class:`SystemClock` — the real thing (``time.monotonic`` and real
  sleeps); the default everywhere, zero behaviour change.
- :class:`FakeClock` — virtual time.  ``sleep`` *advances* the virtual
  clock and returns immediately, so a test of a 30-second backoff
  schedule finishes in microseconds and can then assert exactly how much
  virtual time was slept.
- :class:`ScaledClock` — compresses real waits by a factor while
  *reporting* durations in nominal (uncompressed) units.  This is for
  genuinely concurrent code (the straggler engine's racing primaries and
  backups) where virtual time would need a scheduler: the threads still
  really block, just 20x shorter, and measured wall time stays in the
  units the delays were written in.

Never ``time.time()`` here: wall clocks step under NTP and break both
interval math and replay.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from concurrent.futures import wait as _futures_wait
from typing import Collection

__all__ = ["Clock", "SystemClock", "FakeClock", "ScaledClock", "SYSTEM_CLOCK"]


class Clock:
    """Interface: monotonic time plus the three blocking shapes we use."""

    def monotonic(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError

    def wait(self, event: threading.Event, timeout: float) -> bool:
        """Block until ``event`` is set or ``timeout`` elapses; returns
        whether the event was set (the semantics of ``Event.wait``)."""
        raise NotImplementedError

    def wait_futures(
        self, futures: Collection[Future], timeout: float
    ) -> tuple[set[Future], set[Future]]:
        """``concurrent.futures.wait`` under this clock's notion of time."""
        raise NotImplementedError


class SystemClock(Clock):
    """Real time.  Stateless — share the module singleton."""

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def wait(self, event: threading.Event, timeout: float) -> bool:
        return event.wait(timeout=timeout)

    def wait_futures(
        self, futures: Collection[Future], timeout: float
    ) -> tuple[set[Future], set[Future]]:
        done, pending = _futures_wait(futures, timeout=timeout)
        return done, pending


#: Shared default instance.
SYSTEM_CLOCK = SystemClock()


class FakeClock(Clock):
    """Virtual time for single-actor code (policies, planned schedules).

    ``sleep`` advances the clock instead of blocking; ``slept`` records
    every requested interval so tests can assert the backoff schedule.
    ``wait`` reports the event's current state and charges the full
    timeout when it was not set — the caller observed a timeout.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()
        self.slept: list[float] = []

    def monotonic(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance time backwards ({seconds})")
        with self._lock:
            self._now += seconds

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot sleep a negative interval ({seconds})")
        with self._lock:
            self._now += seconds
            self.slept.append(seconds)

    def wait(self, event: threading.Event, timeout: float) -> bool:
        if event.is_set():
            return True
        self.sleep(timeout)
        return event.is_set()

    def wait_futures(
        self, futures: Collection[Future], timeout: float
    ) -> tuple[set[Future], set[Future]]:
        done, pending = _futures_wait(futures, timeout=0)
        if pending:
            self.sleep(timeout)
            done, pending = _futures_wait(futures, timeout=0)
        return done, pending


class ScaledClock(Clock):
    """Real blocking, compressed by ``scale`` (< 1 shrinks waits).

    A 0.5 s straggler delay under ``ScaledClock(0.05)`` really blocks
    25 ms, and a measured interval of that block reads back as ~0.5 —
    durations stay in the nominal units the code was written in, so
    ratio assertions (speculation beats waiting) survive unchanged.
    """

    def __init__(self, scale: float, base: Clock | None = None) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        self.scale = scale
        self._base = base if base is not None else SYSTEM_CLOCK

    def monotonic(self) -> float:
        return self._base.monotonic() / self.scale

    def sleep(self, seconds: float) -> None:
        self._base.sleep(seconds * self.scale)

    def wait(self, event: threading.Event, timeout: float) -> bool:
        return self._base.wait(event, timeout * self.scale)

    def wait_futures(
        self, futures: Collection[Future], timeout: float
    ) -> tuple[set[Future], set[Future]]:
        return self._base.wait_futures(futures, timeout * self.scale)
