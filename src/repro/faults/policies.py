"""Resilience policies: retry with backoff, deadlines, circuit breaking.

The recovery half of the chaos story.  All three policies run on an
injectable :class:`~repro.faults.clock.Clock`, so tests drive a
30-second backoff schedule in virtual time, and all three emit
telemetry for every decision (attempt, backoff sleep, breaker trip),
so a chaos trace shows recovery next to the fault that caused it.

- :class:`RetryPolicy` — exponential backoff with *decorrelated jitter*
  (the AWS architecture-blog variant: each sleep is uniform on
  ``[base, prev * 3]``, capped), seeded so a given policy instance
  produces a reproducible sleep sequence.
- :class:`Deadline` — a propagatable time budget: callers derive child
  deadlines (``min`` semantics) and pass them down, so a slow retry loop
  near the root cannot silently spend a caller's entire budget.
- :class:`CircuitBreaker` — closed → open after N consecutive failures,
  half-open probe after a reset window, closed again on success.
"""

from __future__ import annotations

import random
import threading
from typing import Any, Callable, Iterator

from repro.faults.clock import SYSTEM_CLOCK, Clock
from repro.telemetry import instrument as telemetry

__all__ = [
    "RetryError",
    "DeadlineExceeded",
    "CircuitOpenError",
    "RetryPolicy",
    "Deadline",
    "CircuitBreaker",
]


class RetryError(RuntimeError):
    """Every attempt failed; carries the last underlying error."""

    def __init__(self, attempts: int, last: BaseException) -> None:
        self.attempts = attempts
        self.last = last
        super().__init__(f"gave up after {attempts} attempt(s): {last!r}")


class DeadlineExceeded(TimeoutError):
    """The propagated time budget ran out."""


class CircuitOpenError(RuntimeError):
    """The breaker is open; the call was rejected without running."""


class Deadline:
    """An absolute point on a clock, passed down a call tree."""

    __slots__ = ("_at", "_clock")

    def __init__(self, at: float, clock: Clock | None = None) -> None:
        self._at = float(at)
        self._clock = clock if clock is not None else SYSTEM_CLOCK

    @classmethod
    def after(cls, timeout_s: float, clock: Clock | None = None) -> "Deadline":
        if timeout_s < 0:
            raise ValueError(f"timeout_s must be >= 0, got {timeout_s}")
        clk = clock if clock is not None else SYSTEM_CLOCK
        return cls(clk.monotonic() + timeout_s, clk)

    def remaining(self) -> float:
        return max(0.0, self._at - self._clock.monotonic())

    def expired(self) -> bool:
        return self._clock.monotonic() >= self._at

    def check(self, what: str = "operation") -> None:
        if self.expired():
            telemetry.instant("policy.deadline.exceeded", what=what)
            telemetry.inc("policy.deadline.exceeded")
            raise DeadlineExceeded(f"{what}: deadline exceeded")

    def subdeadline(self, timeout_s: float) -> "Deadline":
        """Derive a child budget: never later than the parent (min)."""
        if timeout_s < 0:
            raise ValueError(f"timeout_s must be >= 0, got {timeout_s}")
        return Deadline(
            min(self._at, self._clock.monotonic() + timeout_s), self._clock
        )


class RetryPolicy:
    """Retry with capped exponential backoff and decorrelated jitter."""

    def __init__(
        self,
        max_attempts: int = 4,
        base_s: float = 0.05,
        cap_s: float = 2.0,
        seed: int = 0,
        clock: Clock | None = None,
        retry_on: tuple[type[BaseException], ...] = (Exception,),
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_s < 0 or cap_s < base_s:
            raise ValueError(f"need 0 <= base_s <= cap_s, got {base_s}, {cap_s}")
        self.max_attempts = max_attempts
        self.base_s = base_s
        self.cap_s = cap_s
        self.seed = seed
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.retry_on = retry_on

    def backoffs(self) -> Iterator[float]:
        """The (reproducible) sleep schedule: decorrelated jitter.

        ``sleep_n = min(cap, uniform(base, sleep_{n-1} * 3))``, starting
        from ``base`` — spreads retry storms without synchronized waves.
        """
        rng = random.Random(self.seed)
        sleep = self.base_s
        while True:
            sleep = min(self.cap_s, rng.uniform(self.base_s, max(self.base_s, sleep * 3)))
            yield sleep

    def call(
        self,
        fn: Callable[[], Any],
        what: str = "call",
        deadline: Deadline | None = None,
    ) -> Any:
        """Run ``fn`` until it succeeds, retries are exhausted, or the
        deadline expires.  Only ``retry_on`` exceptions are retried;
        anything else propagates immediately (a bug is not a blip)."""
        schedule = self.backoffs()
        last: BaseException | None = None
        for attempt in range(self.max_attempts):
            if deadline is not None:
                deadline.check(what)
            try:
                result = fn()
            except self.retry_on as exc:
                last = exc
                telemetry.instant("policy.retry", what=what, attempt=attempt,
                                  error=repr(exc))
                telemetry.inc("policy.retries")
                if attempt + 1 >= self.max_attempts:
                    break
                pause = next(schedule)
                if deadline is not None and pause > deadline.remaining():
                    telemetry.instant("policy.retry.budget_exhausted", what=what)
                    break
                self.clock.sleep(pause)
            else:
                if attempt > 0:
                    telemetry.instant("policy.recovered", what=what,
                                      attempts=attempt + 1)
                    telemetry.inc("policy.recoveries")
                return result
        assert last is not None
        raise RetryError(self.max_attempts, last) from last


class CircuitBreaker:
    """Fail fast when a dependency is persistently broken.

    Closed: calls pass; ``failure_threshold`` consecutive failures trip
    it open.  Open: calls are rejected with :class:`CircuitOpenError`
    until ``reset_timeout_s`` has elapsed on the clock.  Half-open: one
    probe call is admitted; success closes the breaker, failure re-opens
    it (and restarts the reset window).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 1.0,
        clock: Clock | None = None,
        name: str = "breaker",
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_timeout_s < 0:
            raise ValueError(f"reset_timeout_s must be >= 0, got {reset_timeout_s}")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.name = name
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probing = False
        self.rejected = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if (
            self._state == self.OPEN
            and self.clock.monotonic() - self._opened_at >= self.reset_timeout_s
        ):
            self._state = self.HALF_OPEN
            telemetry.instant("policy.breaker.half_open", breaker=self.name)
        return self._state

    def allow(self) -> bool:
        """Admission decision; half-open admits exactly one probe."""
        with self._lock:
            state = self._state_locked()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN and not self._probing:
                self._probing = True
                return True
            self.rejected += 1
            telemetry.inc("policy.breaker.rejected")
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probing = False
            if self._state != self.CLOSED:
                telemetry.instant("policy.breaker.closed", breaker=self.name)
                telemetry.inc("policy.breaker.closes")
            self._state = self.CLOSED

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            tripped = (
                self._consecutive_failures >= self.failure_threshold
                or self._state_locked() != self.CLOSED
            )
            self._probing = False
            if tripped:
                self._state = self.OPEN
                self._opened_at = self.clock.monotonic()
                telemetry.instant("policy.breaker.opened", breaker=self.name,
                                  failures=self._consecutive_failures)
                telemetry.inc("policy.breaker.opens")

    def call(self, fn: Callable[[], Any]) -> Any:
        """Guarded call: rejection raises :class:`CircuitOpenError`."""
        if not self.allow():
            raise CircuitOpenError(f"{self.name} is open")
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result
