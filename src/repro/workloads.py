"""The unified workload registry: one name table for every front-end.

Before this module existed, ``trace``, ``chaos``, and ``sched`` each
kept a private ``dict`` of workload names, so "mapreduce" meant three
separately-registered things and a new workload had to be wired into
every CLI by hand.  Now a workload is registered **once** — under one
name, with a runner per *mode* it supports — and every front-end
(``repro trace``/``chaos``/``sched``/``bench`` and the ``repro.serve``
job service) resolves names through this table.  The service layer in
particular may only reach workloads through here (the DESIGN rule):
whatever a client can POST is exactly what the CLIs can run.

Modes and their runner shapes:

- ``trace``  — ``fn(threads) -> summary_str`` run under whatever
  telemetry session is active (see :mod:`repro.telemetry.workloads`);
- ``chaos``  — ``fn(injector, seed, threads) -> (recovered, detail, ok)``
  paired with a ``plan(seed) -> FaultPlan`` builder (see
  :mod:`repro.faults.chaos`);
- ``sched``  — ``fn(executor, workers, seed) -> (summary, lines)`` run
  through a fresh deterministic :class:`WorkStealingExecutor` (see
  :mod:`repro.sched.workloads`);
- ``pipeline`` — ``fn(store, workers=, seed=, resume=, kill_after=,
  params=) -> PipelineRun`` over a durable
  :class:`~repro.pipeline.store.JobStore` (see
  :mod:`repro.pipeline.workloads`).

Provider modules call :func:`register` at import time; the registry
imports them lazily on first lookup, so ``import repro.workloads`` stays
cheap and there is no import cycle.  :func:`run_job` is the uniform
entry point the job service and benchmarks use: ``(mode, name, params)``
in, a JSON-safe payload dict out — with chaos runs serialized behind a
lock because fault-injection sessions do not nest.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping

__all__ = [
    "MODES",
    "Workload",
    "WorkloadModeError",
    "register",
    "get",
    "names",
    "entries",
    "render_listing",
    "runner_for",
    "validate_params",
    "run_job",
]

#: Execution modes, in the order listings display them.
MODES: tuple[str, ...] = ("trace", "chaos", "sched", "pipeline")

#: Parameters each mode accepts in :func:`run_job` (integers, except the
#: enumerated string parameters in :data:`STRING_PARAMS`).
MODE_PARAMS: dict[str, tuple[str, ...]] = {
    "trace": ("threads",),
    "chaos": ("seed", "threads"),
    "sched": ("workers", "seed", "mode", "speculate"),
    "pipeline": ("workers", "seed"),
}

#: Integer parameters that accept 0 (``seed`` is a value, ``speculate``
#: a 0/1 flag — every other integer parameter is a count >= 1).
_ZERO_OK_PARAMS: frozenset[str] = frozenset({"seed", "speculate"})

#: String-valued parameters and their allowed values.  ``mode`` here is
#: the *executor* mode of a sched job (threaded workers vs a process
#: pool), orthogonal to the workload mode that names the front-end.
STRING_PARAMS: dict[str, tuple[str, ...]] = {
    "mode": ("threaded", "mp"),
}


class WorkloadModeError(ValueError):
    """The workload exists but does not support the requested mode."""


@dataclass(frozen=True)
class Workload:
    """One registered workload: a name plus a runner per supported mode."""

    name: str
    description: str = ""
    trace: Callable[[int], str] | None = None
    chaos: Callable[..., tuple[int, list, bool]] | None = None
    chaos_plan: Callable[[int], Any] | None = None
    sched: Callable[..., tuple[str, list]] | None = None
    pipeline: Callable[..., Any] | None = None

    @property
    def modes(self) -> tuple[str, ...]:
        return tuple(
            mode for mode in MODES if getattr(self, mode) is not None
        )


_lock = threading.Lock()
_REGISTRY: dict[str, Workload] = {}
_providers_loaded = False

#: Fault-injection sessions do not nest (module-global injector state),
#: so concurrent chaos jobs — e.g. from the serve worker pool — take
#: this lock and run one at a time.
_chaos_run_lock = threading.Lock()


def normalize(name: str) -> str:
    return name.replace("-", "_").lower()


def register(
    name: str,
    *,
    description: str = "",
    trace: Callable[[int], str] | None = None,
    chaos: Callable[..., tuple[int, list, bool]] | None = None,
    chaos_plan: Callable[[int], Any] | None = None,
    sched: Callable[..., tuple[str, list]] | None = None,
    pipeline: Callable[..., Any] | None = None,
) -> Workload:
    """Register (or extend) a workload.

    A name may be registered from several provider modules, each adding
    the mode it implements; re-registering a runner a different callable
    already provides raises — silently shadowing a mode is always a bug.
    Returns the merged entry.
    """
    if chaos is not None and chaos_plan is None:
        raise ValueError(f"workload {name!r}: chaos runner needs a chaos_plan")
    key = normalize(name)
    with _lock:
        entry = _REGISTRY.get(key, Workload(name=key))
        updates: dict[str, Any] = {}
        for mode_attr, fn in (
            ("trace", trace), ("chaos", chaos),
            ("chaos_plan", chaos_plan), ("sched", sched),
            ("pipeline", pipeline),
        ):
            if fn is None:
                continue
            existing = getattr(entry, mode_attr)
            if existing is not None and existing is not fn:
                raise ValueError(
                    f"workload {key!r} already has a {mode_attr!r} runner"
                )
            updates[mode_attr] = fn
        if description and not entry.description:
            updates["description"] = description
        entry = replace(entry, **updates)
        _REGISTRY[key] = entry
        return entry


def unregister(name: str) -> None:
    """Remove a workload (test hygiene for dynamically registered ones)."""
    with _lock:
        _REGISTRY.pop(normalize(name), None)


def _ensure_providers_loaded() -> None:
    """Import every provider module once so its registrations land."""
    global _providers_loaded
    if _providers_loaded:
        return
    with _lock:
        if _providers_loaded:
            return
        _providers_loaded = True
    # Outside the lock: the providers call register(), which takes it.
    import repro.faults.chaos       # noqa: F401  (registers chaos runners)
    import repro.megacohort.workloads  # noqa: F401  (registers megacohort modes)
    import repro.mpi.stencil_sched  # noqa: F401  (registers stencil_sched modes)
    import repro.pipeline.workloads  # noqa: F401  (registers pipeline runners)
    import repro.sched.workloads    # noqa: F401  (registers sched runners)
    import repro.telemetry.workloads  # noqa: F401  (registers trace runners)


def get(name: str) -> Workload:
    """Resolve a workload; raises ``KeyError`` for unknown names."""
    _ensure_providers_loaded()
    key = normalize(name)
    with _lock:
        if key not in _REGISTRY:
            raise KeyError(name)
        return _REGISTRY[key]


def names(mode: str | None = None) -> list[str]:
    """Sorted workload names, optionally only those supporting ``mode``."""
    _ensure_providers_loaded()
    with _lock:
        entries_now = list(_REGISTRY.values())
    if mode is None:
        return sorted(e.name for e in entries_now)
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
    return sorted(e.name for e in entries_now if getattr(e, mode) is not None)


def entries() -> list[Workload]:
    _ensure_providers_loaded()
    with _lock:
        return sorted(_REGISTRY.values(), key=lambda e: e.name)


def render_listing() -> str:
    """The one listing every ``--list`` flag prints, byte-identical
    across the ``trace``/``chaos``/``sched``/``serve`` subcommands."""
    rows = entries()
    width = max((len(row.name) for row in rows), default=0)
    lines = [f"workloads ({len(rows)} registered, modes: {','.join(MODES)}):"]
    for row in rows:
        lines.append(f"  {row.name:<{width}}  {','.join(row.modes)}")
    return "\n".join(lines)


def runner_for(workload: Workload, mode: str) -> Callable:
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
    fn = getattr(workload, mode)
    if fn is None:
        raise WorkloadModeError(
            f"workload {workload.name!r} does not support mode {mode!r} "
            f"(supports: {', '.join(workload.modes)})"
        )
    return fn


def validate_params(mode: str, params: Mapping[str, Any] | None) -> dict[str, Any]:
    """Check/coerce a job request's parameters for ``mode``.

    Unknown keys and ill-typed values raise ``ValueError`` — the job
    service turns that into a 400 before anything is admitted.  Most
    parameters are integers; the ones named in :data:`STRING_PARAMS`
    must be one of their enumerated strings.
    """
    if mode not in MODE_PARAMS:
        raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
    allowed = MODE_PARAMS[mode]
    out: dict[str, Any] = {}
    for key, value in dict(params or {}).items():
        if key not in allowed:
            raise ValueError(
                f"unknown parameter {key!r} for mode {mode!r} "
                f"(allowed: {', '.join(allowed)})"
            )
        if key in STRING_PARAMS:
            choices = STRING_PARAMS[key]
            if not isinstance(value, str) or value not in choices:
                raise ValueError(
                    f"parameter {key!r} must be one of "
                    f"{', '.join(choices)}, got {value!r}"
                )
            out[key] = value
            continue
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"parameter {key!r} must be an integer, "
                             f"got {value!r}")
        if value < (0 if key in _ZERO_OK_PARAMS else 1):
            raise ValueError(f"parameter {key!r} out of range: {value}")
        out[key] = value
    return out


def _run_chaos_serialized(name: str, seed: int, threads: int):
    """Run one chaos workload under ``_chaos_run_lock``, asserting the
    serialization invariant instead of trusting it.

    Fault-injection sessions are process-global and do not nest; if two
    chaos jobs ever overlapped, the second ``faults.enable`` would raise
    deep inside a runtime with a half-installed hook.  This chokepoint
    fails fast and loud instead: the lock must be held by *this* call
    (not merely locked by someone), and no injector may already be
    active when the session starts.
    """
    from repro.faults import chaos as chaos_mod
    from repro.faults import hooks as fault_hooks

    acquired = _chaos_run_lock.acquire()
    try:
        if not acquired or not _chaos_run_lock.locked():
            raise RuntimeError(
                "chaos serialization broken: _chaos_run_lock not held"
            )
        if fault_hooks.enabled():
            raise RuntimeError(
                "chaos serialization broken: a fault-injection session is "
                "already active; chaos runs must not nest"
            )
        return chaos_mod.run_chaos(name, seed=seed, threads=threads)
    finally:
        _chaos_run_lock.release()


def run_job(
    mode: str, name: str, params: Mapping[str, Any] | None = None
) -> dict[str, Any]:
    """Run one workload in one mode and return a JSON-safe payload.

    The uniform execution entry point behind the job service and the
    serve benchmark: the payload is a pure function of (mode, name,
    params), which is what makes it content-addressable in the
    :class:`~repro.sched.cache.ResultCache`.
    """
    workload = get(name)
    fn = runner_for(workload, mode)
    clean = validate_params(mode, params)
    if mode == "trace":
        summary = fn(clean.get("threads", 4))
        return {"mode": mode, "workload": workload.name, "summary": summary}
    if mode == "chaos":
        report = _run_chaos_serialized(workload.name,
                                       seed=clean.get("seed", 7),
                                       threads=clean.get("threads", 4))
        return {
            "mode": mode,
            "workload": workload.name,
            "summary": (
                f"chaos {workload.name}: {report.injected_total} injected, "
                f"{report.recovered} recovered, "
                f"{'OK' if report.ok else 'FAILED'}"
            ),
            "ok": report.ok,
            "injected": dict(report.injected_by_kind),
            "recovered": report.recovered,
            "detail": list(report.detail),
            "log": list(report.log_lines),
        }
    if mode == "pipeline":
        from repro.pipeline import resolve_db
        from repro.pipeline.store import JobStore
        from repro.pipeline.workloads import run_pipeline_workload

        with JobStore(resolve_db()) as store:
            run = run_pipeline_workload(
                workload.name, store,
                workers=clean.get("workers", 4),
                seed=clean.get("seed", 7),
                resume=True,
            )
        return {
            "mode": mode,
            "workload": workload.name,
            "summary": run.summary,
            "output": list(run.output_lines),
            "stages": [
                {"stage": name, "status": status}
                for name, status in run.stage_status
            ],
            "stats": dict(run.stats),
            "run_id": run.run_id,
        }
    from repro.sched.workloads import run_sched_workload

    report = run_sched_workload(workload.name,
                                workers=clean.get("workers", 4),
                                seed=clean.get("seed", 7),
                                mode=clean.get("mode", "threaded"),
                                speculate=bool(clean.get("speculate", 0)))
    return {
        "mode": mode,
        "workload": workload.name,
        "summary": report.summary,
        "output": list(report.output_lines),
        "stats": dict(report.stats),
        "log": list(report.log_lines),
    }
