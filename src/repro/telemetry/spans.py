"""Thread-safe hierarchical span tracing.

A :class:`Tracer` records :class:`Span` events — named intervals on a
monotonic clock — plus instant and counter samples.  Each OS thread keeps
its own span *stack* (``threading.local``), so concurrently running
threads nest their spans independently; cross-thread parentage (a worker
thread's root span hanging under the region span of the forking thread)
is expressed by passing ``parent_id`` explicitly.

The clock is ``time.monotonic_ns`` (never wall-clock: traces must stay
ordered across NTP steps) and timestamps are microseconds since the
tracer was created — the unit Chrome's ``trace_event`` format expects.

Threads carry a *logical identity* — ``(process, tid, thread_name)`` —
so exported traces group by what the runtime means (OpenMP team-thread
number, MPI rank) rather than by opaque OS thread ids.  Identity is set
by the runtimes via :meth:`Tracer.set_thread_identity`; threads that
never set one get a compact auto-assigned tid under the ``"main"``
process.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["Span", "TraceEvent", "SpanNode", "Tracer"]

#: Phase codes (a subset of Chrome trace_event's).
PHASE_COMPLETE = "X"
PHASE_INSTANT = "i"
PHASE_COUNTER = "C"


@dataclass
class Span:
    """One named interval on one thread.  ``end_us`` is filled at finish;
    an unfinished span (crashed thread) exports with zero duration."""

    span_id: int
    parent_id: int | None
    name: str
    category: str
    start_us: float
    end_us: float | None = None
    process: str = "main"
    tid: int = 0
    thread_name: str = ""
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_us(self) -> float:
        if self.end_us is None:
            return 0.0
        return self.end_us - self.start_us


@dataclass(frozen=True)
class TraceEvent:
    """A point event: an instant marker or a counter sample."""

    phase: str                    # PHASE_INSTANT or PHASE_COUNTER
    name: str
    ts_us: float
    process: str
    tid: int
    thread_name: str
    args: dict[str, Any]


@dataclass
class SpanNode:
    """One node of a reconstructed span tree."""

    span: Span
    children: list["SpanNode"] = field(default_factory=list)

    def walk(self) -> Iterator[Span]:
        yield self.span
        for child in self.children:
            yield from child.walk()


class _ThreadState(threading.local):
    """Per-thread mutable tracer state (stack + logical identity)."""

    def __init__(self) -> None:  # called once per thread by threading.local
        self.stack: list[Span] = []
        self.process: str | None = None
        self.tid: int | None = None
        self.thread_name: str | None = None


class _ActiveSpan:
    """Context manager for one open span; reentrant-safe via the stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *_exc: object) -> None:
        self._tracer._finish(self._span)


class Tracer:
    """Collects spans and point events from any number of threads.

    ``listener`` is an optional live feed: a callable invoked (outside
    the tracer lock, on the recording thread) with ``("span_open", Span)``,
    ``("span_close", Span)``, ``("instant", TraceEvent)``, or
    ``("counter", TraceEvent)`` as each record lands.  It powers
    ``repro trace --follow`` and the serve status stream; exporters keep
    reading the collected lists after the fact, so a listener adds no
    cost when absent and must itself be thread-safe when present.
    """

    def __init__(self, listener: Any = None) -> None:
        self._origin_ns = time.monotonic_ns()
        self._lock = threading.Lock()
        self._next_id = 0
        self._spans: list[Span] = []
        self._events: list[TraceEvent] = []
        self._local = _ThreadState()
        self._auto_tids: dict[tuple[str, int], int] = {}
        self._auto_tid_next: dict[str, int] = {}
        self._listener = listener

    # -- clock & identity ----------------------------------------------------

    def now_us(self) -> float:
        return (time.monotonic_ns() - self._origin_ns) / 1_000.0

    def set_thread_identity(
        self, tid: int, thread_name: str, process: str = "main"
    ) -> None:
        """Declare the calling thread's logical identity (e.g. OpenMP
        team-thread number, MPI rank).  Applies to spans opened after."""
        self._local.tid = tid
        self._local.thread_name = thread_name
        self._local.process = process

    def clear_thread_identity(self) -> None:
        self._local.tid = None
        self._local.thread_name = None
        self._local.process = None

    def ensure_thread(self, process: str, thread_name: str | None = None) -> None:
        """Place the calling thread under ``process`` with a compact
        auto-assigned tid (idempotent) — for anonymous pool workers that
        have no natural team-thread/rank number."""
        local = self._local
        if local.process == process and local.tid is not None:
            return
        local.tid = self._auto_tid(process)
        local.process = process
        local.thread_name = thread_name or threading.current_thread().name

    def _auto_tid(self, process: str) -> int:
        key = (process, threading.get_ident())
        with self._lock:
            tid = self._auto_tids.get(key)
            if tid is None:
                tid = self._auto_tid_next.get(process, 0)
                self._auto_tid_next[process] = tid + 1
                self._auto_tids[key] = tid
        return tid

    def _identity(self) -> tuple[str, int, str]:
        local = self._local
        if local.tid is not None:
            return (local.process or "main", local.tid, local.thread_name or "")
        return ("main", self._auto_tid("main"), threading.current_thread().name)

    # -- spans ---------------------------------------------------------------

    def span(
        self,
        name: str,
        category: str = "",
        parent_id: int | None = None,
        **args: Any,
    ) -> _ActiveSpan:
        """Open a span as a context manager.

        The parent defaults to the innermost open span *on this thread*;
        ``parent_id`` overrides it (cross-thread nesting: a worker's root
        span under the forking thread's region span).
        """
        local = self._local
        if parent_id is None and local.stack:
            parent_id = local.stack[-1].span_id
        process, tid, thread_name = self._identity()
        with self._lock:
            self._next_id += 1
            span_id = self._next_id
        span = Span(
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            category=category,
            start_us=self.now_us(),
            process=process,
            tid=tid,
            thread_name=thread_name,
            args=dict(args),
        )
        local.stack.append(span)
        if self._listener is not None:
            self._listener("span_open", span)
        return _ActiveSpan(self, span)

    def _finish(self, span: Span) -> None:
        span.end_us = self.now_us()
        stack = self._local.stack
        # Normal case: the finishing span is the innermost one.
        if stack and stack[-1] is span:
            stack.pop()
        else:  # pragma: no cover - misnested exit; drop defensively
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            self._spans.append(span)
        if self._listener is not None:
            self._listener("span_close", span)

    def current_span_id(self) -> int | None:
        """Id of the innermost open span on the calling thread, if any."""
        stack = self._local.stack
        return stack[-1].span_id if stack else None

    # -- point events --------------------------------------------------------

    def instant(self, name: str, **args: Any) -> None:
        """Record an instant marker at the current time."""
        self._record_event(PHASE_INSTANT, name, args)

    def counter(self, name: str, value: float, series: str = "value") -> None:
        """Record a timestamped counter sample (Chrome 'C' event)."""
        self._record_event(PHASE_COUNTER, name, {series: value})

    def _record_event(self, phase: str, name: str, args: dict[str, Any]) -> None:
        process, tid, thread_name = self._identity()
        event = TraceEvent(
            phase=phase,
            name=name,
            ts_us=self.now_us(),
            process=process,
            tid=tid,
            thread_name=thread_name,
            args=args,
        )
        with self._lock:
            self._events.append(event)
        if self._listener is not None:
            self._listener(
                "instant" if phase == PHASE_INSTANT else "counter", event
            )

    # -- inspection ----------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """Finished spans, in completion order (thread-safe snapshot)."""
        with self._lock:
            return list(self._spans)

    @property
    def events(self) -> list[TraceEvent]:
        with self._lock:
            return list(self._events)

    def spans_named(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def events_named(self, name: str) -> list[TraceEvent]:
        return [e for e in self.events if e.name == name]

    def span_tree(self) -> list[SpanNode]:
        """Reconstruct the forest of spans from parent links.

        Children are ordered by start time; roots are spans whose parent
        was never recorded (or None).  The tree is rebuilt from the flat
        record on every call — it is an analysis view, not live state.
        """
        spans = sorted(self.spans, key=lambda s: (s.start_us, s.span_id))
        nodes = {span.span_id: SpanNode(span) for span in spans}
        roots: list[SpanNode] = []
        for span in spans:
            node = nodes[span.span_id]
            if span.parent_id is not None and span.parent_id in nodes:
                nodes[span.parent_id].children.append(node)
            else:
                roots.append(node)
        return roots
