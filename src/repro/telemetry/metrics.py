"""Counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` owns named instruments; instruments are
created on first use and are safe to update from any thread.  The
module also provides :class:`NullMetrics` — a registry whose
instruments are shared no-op singletons — so instrumented code can hold
a registry reference unconditionally and pay one virtual call when
telemetry is off (the hooks in :mod:`repro.telemetry.instrument` go one
step further and skip the call entirely behind a single branch).

Histograms use *fixed* bucket boundaries chosen at creation: updates are
a bisect plus an integer increment — no allocation on the hot path and
no rebinning, which keeps concurrent observation cheap and the exported
shape deterministic.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "DEFAULT_LATENCY_BUCKETS_US",
]

#: Default histogram boundaries for microsecond latencies: ~1 us .. ~10 s.
DEFAULT_LATENCY_BUCKETS_US: tuple[float, ...] = (
    1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0, 10_000_000.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, delta: float = 1.0) -> None:
        if delta < 0:
            raise ValueError(f"counter {self.name}: negative increment {delta}")
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that goes up and down (queue depth, in-flight tasks)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-boundary histogram with count/sum/min/max.

    ``boundaries`` are upper bounds of the first ``len(boundaries)``
    buckets; one implicit overflow bucket catches everything above the
    last boundary.
    """

    __slots__ = ("name", "boundaries", "_counts", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(
        self, name: str, boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS_US
    ) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError(f"histogram {name}: needs at least one boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name}: boundaries must be increasing")
        self.name = name
        self.boundaries = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.boundaries, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> tuple[int, ...]:
        """Counts per bucket; the last entry is the overflow bucket."""
        with self._lock:
            return tuple(self._counts)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
                "boundaries": list(self.boundaries),
                "bucket_counts": list(self._counts),
            }


class MetricsRegistry:
    """Process-wide named instruments, created on first use.

    Re-requesting a name returns the existing instrument; requesting a
    name already registered as a *different* kind raises — silent
    aliasing of a counter as a gauge is always a bug.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Any] = {}

    def _get_or_create(self, name: str, kind: type, factory: Any) -> Any:
        if not name:
            raise ValueError("instrument name must be non-empty")
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise TypeError(
                        f"instrument {name!r} already registered as "
                        f"{type(existing).__name__}, requested {kind.__name__}"
                    )
                return existing
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS_US
    ) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, boundaries)
        )

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time value of every instrument, keyed by name."""
        with self._lock:
            instruments = dict(self._instruments)
        out: dict[str, Any] = {}
        for name, instrument in sorted(instruments.items()):
            if isinstance(instrument, Histogram):
                out[name] = instrument.snapshot()
            else:
                out[name] = instrument.value
        return out


class _NullInstrument:
    """Accepts every update and records nothing."""

    __slots__ = ()
    name = "<null>"
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0

    def inc(self, delta: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def bucket_counts(self) -> tuple[int, ...]:
        return ()

    def snapshot(self) -> dict[str, Any]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Registry stand-in for disabled telemetry: every request returns the
    same no-op instrument, so holders never need a None check."""

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS_US
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def names(self) -> list[str]:
        return []

    def snapshot(self) -> dict[str, Any]:
        return {}
