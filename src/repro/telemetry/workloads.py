"""Traceable workloads for ``python -m repro trace``.

Each workload is a small, deterministic exercise of one (or several) of
the reproduction's runtimes, chosen to produce an *instructive* trace —
the kind a student opens in Perfetto and immediately sees the lecture
concept: fork/join team spans, barrier convoys, MapReduce re-execution,
MPI message matching, drug-design load imbalance.

Workloads run under whatever telemetry session the caller has enabled;
they do not manage sessions themselves (so tests can compose them).
Every function returns a one-line human summary for the CLI to print.

This module keeps no name table of its own: every workload is registered
as the ``trace`` mode of the unified :mod:`repro.workloads` registry, so
the same names resolve from the ``trace``/``chaos``/``sched`` CLIs and
the ``repro.serve`` job service alike.
"""

from __future__ import annotations

from repro import workloads as registry

__all__ = ["workload_names", "run_workload"]

#: Small deterministic corpus for the MapReduce workloads.
_DOCUMENTS: tuple[tuple[int, str], ...] = (
    (0, "the fork joins the team and the team joins the fork"),
    (1, "a barrier waits for every thread every time"),
    (2, "map shuffle reduce map shuffle reduce"),
    (3, "the master re executes failed tasks"),
    (4, "stragglers get backup tasks near the end"),
    (5, "the reduction combines partial sums into one"),
    (6, "messages match by source and tag in order"),
    (7, "the scatter hands one block to every rank"),
)


def _run_fork_join(threads: int) -> str:
    from repro.patternlets.forkjoin import run_fork_join

    demo = run_fork_join(threads)
    return f"fork-join patternlet on {demo.num_threads} threads"


def _run_barrier(threads: int) -> str:
    from repro.patternlets.barrier_sync import run_barrier_demo

    run_barrier_demo(threads)
    return f"barrier patternlet on {threads} threads"


def _run_reduction(threads: int) -> str:
    from repro.patternlets.reduction_loop import run_reduction_loop

    demo = run_reduction_loop(threads, 500)
    return f"reduction patternlet on {threads} threads (n=500)"


def _run_mapreduce(threads: int) -> str:
    """Word count with an injected worker death (visible re-execution),
    cross-checked by an OpenMP parallel count — so one trace carries
    spans from two runtimes: `mr.*` tasks and `omp.*` team threads."""
    from repro.mapreduce.engine import MapReduceEngine, TaskFailure
    from repro.mapreduce.jobs import tokenize, word_count_job
    from repro.openmp.runtime import OpenMP

    engine = MapReduceEngine(
        n_workers=threads,
        failures=[TaskFailure("map", 0, 0), TaskFailure("reduce", 1, 0)],
    )
    result = engine.run(word_count_job(n_reduce_tasks=4), list(_DOCUMENTS))
    counted = dict(result.output)

    # Cross-check on the OpenMP runtime: each team member counts one
    # slice of the corpus; a critical section merges the partials.
    omp = OpenMP(num_threads=min(threads, len(_DOCUMENTS)))
    merged: dict[str, int] = {}

    def body(ctx) -> None:
        partial: dict[str, int] = {}
        for doc_id, text in _DOCUMENTS:
            if doc_id % ctx.num_threads == ctx.thread_num:
                for word in tokenize(text):
                    partial[word] = partial.get(word, 0) + 1
        with ctx.critical("merge"):
            for word, count in partial.items():
                merged[word] = merged.get(word, 0) + count
        ctx.barrier()

    omp.parallel(body)
    if merged != counted:
        raise AssertionError("OpenMP cross-check disagrees with MapReduce")
    return (
        f"word count over {len(_DOCUMENTS)} documents: "
        f"{len(result.output)} distinct words, {result.retries} retried "
        f"task(s), OpenMP cross-check ok"
    )


def _run_stragglers(threads: int) -> str:
    from repro.mapreduce.jobs import word_count_job
    from repro.mapreduce.stragglers import SlowTask, SpeculativeEngine

    engine = SpeculativeEngine(
        n_workers=threads,
        straggler_wait_s=0.02,
        slow_tasks=[SlowTask(task_index=0, delay_s=0.2)],
    )
    outcome = engine.run(word_count_job(n_reduce_tasks=2), list(_DOCUMENTS))
    return (
        f"speculative word count: {outcome.backups_launched} backup(s) "
        f"launched, {outcome.backups_won} won"
    )


def _run_mpi(threads: int) -> str:
    """Ring shift + collectives on every rank (message-matching trace)."""
    from repro.mpi.comm import Communicator, mpi_run

    def program(comm: Communicator) -> int:
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        token = comm.sendrecv(comm.rank, dest=right, source=left)
        comm.barrier()
        total = comm.allreduce(token, op=lambda a, b: a + b)
        comm.barrier()
        return total

    totals = mpi_run(threads, program)
    return f"ring + allreduce on {threads} ranks (sum={totals[0]})"


def _run_drugdesign(threads: int) -> str:
    """All four solver styles over one ligand set — compare their shapes
    (work-shared loop vs atomic counter vs scatter/allreduce) side by
    side in a single trace."""
    from repro.drugdesign.ligands import DEFAULT_PROTEIN, generate_ligands
    from repro.drugdesign.mpi_solver import solve_mpi
    from repro.drugdesign.solvers import (
        solve_cxx11_threads,
        solve_openmp,
        solve_sequential,
    )

    ligands = generate_ligands(24, max_ligand=5, seed=500)
    sequential = solve_sequential(ligands, DEFAULT_PROTEIN)
    for solver in (
        lambda: solve_openmp(ligands, DEFAULT_PROTEIN, threads),
        lambda: solve_cxx11_threads(ligands, DEFAULT_PROTEIN, threads),
        lambda: solve_mpi(ligands, DEFAULT_PROTEIN, threads),
    ):
        if not solver().same_answer_as(sequential):
            raise AssertionError("solver styles disagree")
    return (
        f"4 solver styles over {len(ligands)} ligands agree "
        f"(max score {sequential.max_score})"
    )


for _name, _fn in (
    ("fork_join", _run_fork_join),
    ("barrier", _run_barrier),
    ("reduction", _run_reduction),
    ("mapreduce", _run_mapreduce),
    ("stragglers", _run_stragglers),
    ("mpi", _run_mpi),
    ("drugdesign", _run_drugdesign),
):
    registry.register(_name, trace=_fn)


def workload_names() -> list[str]:
    return registry.names("trace")


def run_workload(name: str, threads: int = 4) -> str:
    """Run one named workload; raises KeyError for unknown names and
    :class:`repro.workloads.WorkloadModeError` for non-trace ones."""
    payload = registry.run_job("trace", name, {"threads": threads})
    return payload["summary"]
