"""The hooks instrumented code calls.

Every hook starts with the same single branch: load the module-global
``_STATE`` tuple and bail if it is ``None``.  That is the entire cost of
disabled telemetry — no tracer object, no lock, no allocation — which is
what lets the runtimes keep their hooks inline on hot paths (barrier
waits, message receives, per-ligand scoring) without a measurable tax on
the deterministic tests.

Enabled state is installed by :func:`repro.telemetry.enable` /
:class:`repro.telemetry.TelemetrySession`; instrumented modules import
only this module and never manage state themselves::

    from repro.telemetry import instrument as telemetry
    ...
    with telemetry.span("omp.parallel", num_threads=n):
        ...
"""

from __future__ import annotations

from typing import Any

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Tracer

__all__ = [
    "enabled",
    "span",
    "instant",
    "counter_event",
    "inc",
    "gauge",
    "observe",
    "observe_us",
    "set_thread",
    "ensure_thread",
    "clear_thread",
    "current_span_id",
    "now_us",
]

#: (tracer, metrics) when telemetry is on, None when off.  Read without a
#: lock — rebinding a module global is atomic under the GIL, and a stale
#: read merely drops (or records) one event at the enable/disable edge.
_STATE: tuple[Tracer, MetricsRegistry] | None = None


class _NullSpan:
    """Shared, stateless stand-in for a span context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *_exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


def _install(tracer: Tracer, metrics: MetricsRegistry) -> None:
    global _STATE
    _STATE = (tracer, metrics)


def _uninstall() -> None:
    global _STATE
    _STATE = None


def enabled() -> bool:
    """Is telemetry currently collecting?"""
    return _STATE is not None


def span(name: str, category: str = "", parent_id: int | None = None, **args: Any):
    """Open a span if telemetry is on; otherwise a shared no-op."""
    state = _STATE
    if state is None:
        return _NULL_SPAN
    return state[0].span(name, category, parent_id=parent_id, **args)


def instant(name: str, **args: Any) -> None:
    state = _STATE
    if state is None:
        return
    state[0].instant(name, **args)


def counter_event(name: str, value: float, series: str = "value") -> None:
    """Timestamped counter sample on the trace timeline."""
    state = _STATE
    if state is None:
        return
    state[0].counter(name, value, series)


def inc(name: str, delta: float = 1.0) -> None:
    """Bump an aggregate metrics counter."""
    state = _STATE
    if state is None:
        return
    state[1].counter(name).inc(delta)


def gauge(name: str, value: float) -> None:
    state = _STATE
    if state is None:
        return
    state[1].gauge(name).set(value)


def observe(name: str, value: float, boundaries: Any = None) -> None:
    """Record into a histogram with explicit bucket ``boundaries``.

    The boundaries only matter on the call that *creates* the histogram
    (first use); later observations reuse the registered instrument.
    Use this for non-latency shapes — steal-probe counts, queue depths —
    where the default microsecond buckets would collapse everything into
    one bin.
    """
    state = _STATE
    if state is None:
        return
    if boundaries is None:
        state[1].histogram(name).observe(value)
    else:
        state[1].histogram(name, boundaries).observe(value)


def observe_us(name: str, value_us: float) -> None:
    """Record a microsecond latency into a histogram."""
    state = _STATE
    if state is None:
        return
    state[1].histogram(name).observe(value_us)


def set_thread(tid: int, thread_name: str, process: str = "main") -> None:
    """Declare the calling thread's logical identity (no-op when off)."""
    state = _STATE
    if state is None:
        return
    state[0].set_thread_identity(tid, thread_name, process)


def ensure_thread(process: str, thread_name: str | None = None) -> None:
    """Adopt an anonymous worker thread into ``process`` (no-op when off)."""
    state = _STATE
    if state is None:
        return
    state[0].ensure_thread(process, thread_name)


def clear_thread() -> None:
    state = _STATE
    if state is None:
        return
    state[0].clear_thread_identity()


def current_span_id() -> int | None:
    """Innermost open span on this thread — capture before forking workers
    so their root spans parent under the region span."""
    state = _STATE
    if state is None:
        return None
    return state[0].current_span_id()


def now_us() -> float:
    """Tracer-relative monotonic microseconds (0.0 when telemetry is off)."""
    state = _STATE
    if state is None:
        return 0.0
    return state[0].now_us()
