"""``repro.telemetry`` — observability for every runtime in this repo.

The paper's pedagogy is *making parallel execution visible*; this package
is the reproduction's instrument panel.  It has four layers:

- :mod:`repro.telemetry.spans` — thread-safe hierarchical span tracing
  (:class:`Tracer`) on a monotonic clock, with per-thread span stacks and
  logical thread identities (OpenMP team-thread, MPI rank);
- :mod:`repro.telemetry.metrics` — counters, gauges, and fixed-bucket
  histograms in a :class:`MetricsRegistry`;
- :mod:`repro.telemetry.export` — Chrome ``trace_event`` JSON (open it
  in ``chrome://tracing`` / Perfetto), JSON-lines, and OTLP span JSON
  (the OpenTelemetry collector wire format);
- :mod:`repro.telemetry.instrument` — the hooks the runtimes call.
  **Telemetry is off by default**: each hook is a single branch on a
  module global, so the deterministic tests and simulated-time models
  are untouched when nothing is collecting.

Usage::

    from repro import telemetry

    with telemetry.session() as session:
        run_fork_join(4)
    telemetry.export.write_chrome_trace("trace.json",
                                        session.tracer, session.metrics)

or imperatively: ``telemetry.enable()`` … ``telemetry.disable()``.
Sessions do not nest — the runtimes report to one process-global
collector, mirroring how a real tracing backend is wired.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.telemetry import export, instrument
from repro.telemetry.instrument import _install, _uninstall
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from repro.telemetry.spans import Span, SpanNode, TraceEvent, Tracer

__all__ = [
    "Tracer",
    "Span",
    "SpanNode",
    "TraceEvent",
    "MetricsRegistry",
    "NullMetrics",
    "Counter",
    "Gauge",
    "Histogram",
    "TelemetrySession",
    "enable",
    "disable",
    "is_enabled",
    "get_tracer",
    "get_metrics",
    "session",
    "export",
    "instrument",
]

_session_lock = threading.Lock()
_current: "TelemetrySession | None" = None


class TelemetrySession:
    """One enable→collect→disable cycle; also a context manager."""

    def __init__(
        self,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def __enter__(self) -> "TelemetrySession":
        _activate(self)
        return self

    def __exit__(self, *_exc: object) -> None:
        disable()

    # Convenience re-exports so callers rarely need the submodules.

    def write_chrome_trace(self, path: str) -> dict[str, Any]:
        return export.write_chrome_trace(path, self.tracer, self.metrics)

    def write_jsonl(self, path: str) -> int:
        return export.write_jsonl(path, self.tracer, self.metrics)

    def write_otlp_json(self, path: str) -> dict[str, Any]:
        return export.write_otlp_json(path, self.tracer)


def _activate(new_session: TelemetrySession) -> None:
    global _current
    with _session_lock:
        if _current is not None:
            raise RuntimeError(
                "telemetry is already enabled; sessions do not nest"
            )
        _current = new_session
        _install(new_session.tracer, new_session.metrics)


def enable(
    tracer: Tracer | None = None, metrics: MetricsRegistry | None = None
) -> TelemetrySession:
    """Start collecting process-wide; returns the active session."""
    new_session = TelemetrySession(tracer, metrics)
    _activate(new_session)
    return new_session


def disable() -> TelemetrySession | None:
    """Stop collecting; returns the session that was active, if any."""
    global _current
    with _session_lock:
        finished = _current
        _current = None
        _uninstall()
    return finished


def is_enabled() -> bool:
    return instrument.enabled()


def get_tracer() -> Tracer | None:
    """The active session's tracer, or None when telemetry is off."""
    current = _current
    return current.tracer if current is not None else None


def get_metrics() -> MetricsRegistry | None:
    current = _current
    return current.metrics if current is not None else None


def session(
    tracer: Tracer | None = None, metrics: MetricsRegistry | None = None
) -> TelemetrySession:
    """``with telemetry.session() as s:`` — enable for the block."""
    return TelemetrySession(tracer, metrics)
