"""Exporters: Chrome ``trace_event`` JSON, JSON-lines, and OTLP JSON.

The Chrome format is the *JSON Array Format with metadata*: a top-level
object with a ``traceEvents`` list, loadable in ``chrome://tracing`` or
https://ui.perfetto.dev.  Spans become complete events (``"ph": "X"``),
instants ``"i"``, counter samples ``"C"``; logical processes (the
runtime that emitted the span: ``openmp``, ``mapreduce``, ``mpi``,
``drugdesign``) map to synthetic pids and logical threads (team-thread
number, MPI rank) to tids, with ``process_name`` / ``thread_name``
metadata events so the viewer shows real labels.

Events are emitted sorted by ``(pid, tid, ts)`` so every per-thread
track is monotonically ordered — some viewers tolerate disorder, but
diffing two trace files should not depend on scheduler interleaving.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import PHASE_COMPLETE, Tracer

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "to_jsonl_records",
    "write_jsonl",
    "to_otlp_json",
    "write_otlp_json",
]


def _assign_pids(tracer: Tracer) -> dict[str, int]:
    """Stable logical-process → pid mapping: 'main' is pid 1, the rest
    follow alphabetically."""
    processes = {span.process for span in tracer.spans}
    processes.update(event.process for event in tracer.events)
    ordered = sorted(processes, key=lambda p: (p != "main", p))
    return {process: pid for pid, process in enumerate(ordered, start=1)}


def _jsonable(value: Any) -> Any:
    """Args may carry arbitrary objects; coerce the non-JSON ones to repr."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def _jsonable_args(args: Mapping[str, Any]) -> dict[str, Any]:
    return {str(k): _jsonable(v) for k, v in args.items()}


def to_chrome_trace(
    tracer: Tracer,
    metrics: MetricsRegistry | None = None,
) -> dict[str, Any]:
    """Render the tracer's records as a Chrome trace_event document."""
    pids = _assign_pids(tracer)
    events: list[dict[str, Any]] = []
    thread_names: dict[tuple[int, int], str] = {}

    for span in tracer.spans:
        pid = pids[span.process]
        thread_names.setdefault((pid, span.tid), span.thread_name)
        events.append({
            "name": span.name,
            "cat": span.category or "span",
            "ph": PHASE_COMPLETE,
            "ts": span.start_us,
            "dur": span.duration_us,
            "pid": pid,
            "tid": span.tid,
            "args": _jsonable_args({
                **span.args,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
            }),
        })
    for event in tracer.events:
        pid = pids[event.process]
        thread_names.setdefault((pid, event.tid), event.thread_name)
        record: dict[str, Any] = {
            "name": event.name,
            "cat": "event",
            "ph": event.phase,
            "ts": event.ts_us,
            "pid": pid,
            "tid": event.tid,
            "args": _jsonable_args(event.args),
        }
        if event.phase == "i":
            record["s"] = "t"          # instant scope: thread
        events.append(record)

    # Per-track monotonic order (and a deterministic file for diffing).
    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"], e["name"]))

    metadata: list[dict[str, Any]] = []
    for process, pid in sorted(pids.items(), key=lambda kv: kv[1]):
        metadata.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": process},
        })
    for (pid, tid), name in sorted(thread_names.items()):
        if name:
            metadata.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": name},
            })

    document: dict[str, Any] = {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.telemetry"},
    }
    if metrics is not None:
        document["otherData"]["metrics"] = _jsonable(metrics.snapshot())
    return document


def write_chrome_trace(
    path: str,
    tracer: Tracer,
    metrics: MetricsRegistry | None = None,
) -> dict[str, Any]:
    """Write the Chrome trace to ``path`` and return the document."""
    document = to_chrome_trace(tracer, metrics)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return document


def to_jsonl_records(
    tracer: Tracer,
    metrics: MetricsRegistry | None = None,
) -> list[dict[str, Any]]:
    """Flat record-per-line view: spans, events, then metric snapshots.

    Easier to grep/load into pandas than the Chrome document; the
    ``kind`` field discriminates."""
    records: list[dict[str, Any]] = []
    for span in sorted(tracer.spans, key=lambda s: (s.start_us, s.span_id)):
        records.append({
            "kind": "span",
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "category": span.category,
            "process": span.process,
            "tid": span.tid,
            "thread_name": span.thread_name,
            "start_us": span.start_us,
            "duration_us": span.duration_us,
            "args": _jsonable_args(span.args),
        })
    for event in sorted(tracer.events, key=lambda e: e.ts_us):
        records.append({
            "kind": "instant" if event.phase == "i" else "counter",
            "name": event.name,
            "process": event.process,
            "tid": event.tid,
            "ts_us": event.ts_us,
            "args": _jsonable_args(event.args),
        })
    if metrics is not None:
        for name, value in metrics.snapshot().items():
            records.append({"kind": "metric", "name": name, "value": _jsonable(value)})
    return records


def write_jsonl(
    path: str,
    tracer: Tracer,
    metrics: MetricsRegistry | None = None,
) -> int:
    """Write JSON-lines records to ``path``; returns the record count."""
    records = to_jsonl_records(tracer, metrics)
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
    return len(records)


# ---------------------------------------------------------------------------
# OTLP JSON (OpenTelemetry Protocol, JSON encoding of ExportTraceServiceRequest)
# ---------------------------------------------------------------------------

#: InstrumentationScope name stamped on every exported scope.
OTLP_SCOPE_NAME = "repro.telemetry"

#: ``SpanKind.SPAN_KIND_INTERNAL`` — all our spans are in-process.
_OTLP_KIND_INTERNAL = 1


def _otlp_value(value: Any) -> dict[str, Any]:
    """One OTLP ``AnyValue``.  bool before int: bool is an int subclass."""
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}       # int64 is a string in OTLP JSON
    if isinstance(value, float):
        return {"doubleValue": value}
    if isinstance(value, str):
        return {"stringValue": value}
    if isinstance(value, (list, tuple)):
        return {"arrayValue": {"values": [_otlp_value(v) for v in value]}}
    return {"stringValue": repr(value)}


def _otlp_attributes(args: Mapping[str, Any]) -> list[dict[str, Any]]:
    return [
        {"key": str(key), "value": _otlp_value(value)}
        for key, value in sorted(args.items(), key=lambda kv: str(kv[0]))
        if value is not None
    ]


def _otlp_trace_id(tracer: Tracer) -> str:
    """Deterministic 32-hex trace id for the whole capture.

    Derived from the span-id set, so re-exporting the same tracer (or a
    byte-identical replay) yields the same trace id, while two different
    captures get different ones."""
    ids = ",".join(str(span.span_id) for span in
                   sorted(tracer.spans, key=lambda s: s.span_id))
    return hashlib.md5(f"repro.telemetry:{ids}".encode()).hexdigest()


def _otlp_span_id(span_id: int) -> str:
    return f"{span_id & 0xFFFFFFFFFFFFFFFF:016x}"


def to_otlp_json(tracer: Tracer) -> dict[str, Any]:
    """Render the tracer's spans as an OTLP ``ExportTraceServiceRequest``.

    One ``resourceSpans`` entry per logical process (keyed by
    ``service.name``), every span under one deterministic ``traceId``,
    parent/child linkage preserved through ``parentSpanId``.  Timestamps
    are the tracer's relative microseconds scaled to nanoseconds — the
    *relationships* (ordering, containment, duration) are what matter for
    analysis, and relative stamps keep exports reproducible.
    """
    by_process: dict[str, list[Any]] = {}
    for span in sorted(tracer.spans, key=lambda s: (s.start_us, s.span_id)):
        by_process.setdefault(span.process, []).append(span)

    trace_id = _otlp_trace_id(tracer)
    resource_spans: list[dict[str, Any]] = []
    for process in sorted(by_process, key=lambda p: (p != "main", p)):
        otlp_spans: list[dict[str, Any]] = []
        for span in by_process[process]:
            record: dict[str, Any] = {
                "traceId": trace_id,
                "spanId": _otlp_span_id(span.span_id),
                "name": span.name,
                "kind": _OTLP_KIND_INTERNAL,
                "startTimeUnixNano": str(int(span.start_us * 1_000)),
                "endTimeUnixNano": str(int((span.start_us + span.duration_us) * 1_000)),
                "attributes": _otlp_attributes({
                    **span.args,
                    "category": span.category,
                    "thread.id": span.tid,
                    "thread.name": span.thread_name,
                }),
            }
            if span.parent_id is not None:
                record["parentSpanId"] = _otlp_span_id(span.parent_id)
            otlp_spans.append(record)
        resource_spans.append({
            "resource": {
                "attributes": _otlp_attributes({"service.name": process}),
            },
            "scopeSpans": [{
                "scope": {"name": OTLP_SCOPE_NAME},
                "spans": otlp_spans,
            }],
        })
    return {"resourceSpans": resource_spans}


def write_otlp_json(path: str, tracer: Tracer) -> dict[str, Any]:
    """Write the OTLP document to ``path`` and return it."""
    document = to_otlp_json(tracer)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return document
