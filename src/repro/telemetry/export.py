"""Exporters: Chrome ``trace_event`` JSON and JSON-lines.

The Chrome format is the *JSON Array Format with metadata*: a top-level
object with a ``traceEvents`` list, loadable in ``chrome://tracing`` or
https://ui.perfetto.dev.  Spans become complete events (``"ph": "X"``),
instants ``"i"``, counter samples ``"C"``; logical processes (the
runtime that emitted the span: ``openmp``, ``mapreduce``, ``mpi``,
``drugdesign``) map to synthetic pids and logical threads (team-thread
number, MPI rank) to tids, with ``process_name`` / ``thread_name``
metadata events so the viewer shows real labels.

Events are emitted sorted by ``(pid, tid, ts)`` so every per-thread
track is monotonically ordered — some viewers tolerate disorder, but
diffing two trace files should not depend on scheduler interleaving.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import PHASE_COMPLETE, Tracer

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "to_jsonl_records",
    "write_jsonl",
]


def _assign_pids(tracer: Tracer) -> dict[str, int]:
    """Stable logical-process → pid mapping: 'main' is pid 1, the rest
    follow alphabetically."""
    processes = {span.process for span in tracer.spans}
    processes.update(event.process for event in tracer.events)
    ordered = sorted(processes, key=lambda p: (p != "main", p))
    return {process: pid for pid, process in enumerate(ordered, start=1)}


def _jsonable(value: Any) -> Any:
    """Args may carry arbitrary objects; coerce the non-JSON ones to repr."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def _jsonable_args(args: Mapping[str, Any]) -> dict[str, Any]:
    return {str(k): _jsonable(v) for k, v in args.items()}


def to_chrome_trace(
    tracer: Tracer,
    metrics: MetricsRegistry | None = None,
) -> dict[str, Any]:
    """Render the tracer's records as a Chrome trace_event document."""
    pids = _assign_pids(tracer)
    events: list[dict[str, Any]] = []
    thread_names: dict[tuple[int, int], str] = {}

    for span in tracer.spans:
        pid = pids[span.process]
        thread_names.setdefault((pid, span.tid), span.thread_name)
        events.append({
            "name": span.name,
            "cat": span.category or "span",
            "ph": PHASE_COMPLETE,
            "ts": span.start_us,
            "dur": span.duration_us,
            "pid": pid,
            "tid": span.tid,
            "args": _jsonable_args({
                **span.args,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
            }),
        })
    for event in tracer.events:
        pid = pids[event.process]
        thread_names.setdefault((pid, event.tid), event.thread_name)
        record: dict[str, Any] = {
            "name": event.name,
            "cat": "event",
            "ph": event.phase,
            "ts": event.ts_us,
            "pid": pid,
            "tid": event.tid,
            "args": _jsonable_args(event.args),
        }
        if event.phase == "i":
            record["s"] = "t"          # instant scope: thread
        events.append(record)

    # Per-track monotonic order (and a deterministic file for diffing).
    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"], e["name"]))

    metadata: list[dict[str, Any]] = []
    for process, pid in sorted(pids.items(), key=lambda kv: kv[1]):
        metadata.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": process},
        })
    for (pid, tid), name in sorted(thread_names.items()):
        if name:
            metadata.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": name},
            })

    document: dict[str, Any] = {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.telemetry"},
    }
    if metrics is not None:
        document["otherData"]["metrics"] = _jsonable(metrics.snapshot())
    return document


def write_chrome_trace(
    path: str,
    tracer: Tracer,
    metrics: MetricsRegistry | None = None,
) -> dict[str, Any]:
    """Write the Chrome trace to ``path`` and return the document."""
    document = to_chrome_trace(tracer, metrics)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return document


def to_jsonl_records(
    tracer: Tracer,
    metrics: MetricsRegistry | None = None,
) -> list[dict[str, Any]]:
    """Flat record-per-line view: spans, events, then metric snapshots.

    Easier to grep/load into pandas than the Chrome document; the
    ``kind`` field discriminates."""
    records: list[dict[str, Any]] = []
    for span in sorted(tracer.spans, key=lambda s: (s.start_us, s.span_id)):
        records.append({
            "kind": "span",
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "category": span.category,
            "process": span.process,
            "tid": span.tid,
            "thread_name": span.thread_name,
            "start_us": span.start_us,
            "duration_us": span.duration_us,
            "args": _jsonable_args(span.args),
        })
    for event in sorted(tracer.events, key=lambda e: e.ts_us):
        records.append({
            "kind": "instant" if event.phase == "i" else "counter",
            "name": event.name,
            "process": event.process,
            "tid": event.tid,
            "ts_us": event.ts_us,
            "args": _jsonable_args(event.args),
        })
    if metrics is not None:
        for name, value in metrics.snapshot().items():
            records.append({"kind": "metric", "name": name, "value": _jsonable(value)})
    return records


def write_jsonl(
    path: str,
    tracer: Tracer,
    metrics: MetricsRegistry | None = None,
) -> int:
    """Write JSON-lines records to ``path``; returns the record count."""
    records = to_jsonl_records(tracer, metrics)
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
    return len(records)
