"""Shared benchmark instrumentation helpers.

Every ``benchmarks/bench_*.py`` script and ``src`` bench module that
reports memory uses one definition of "peak RSS" — :func:`peak_rss_bytes`
— so the numbers in different ``BENCH_*.json`` files are comparable.

``ru_maxrss`` is the high-water mark of the process's resident set, in
**kibibytes on Linux** and **bytes on macOS** (the one platform quirk
this module exists to hide).  ``RUSAGE_CHILDREN`` covers reaped child
processes, which is what accounts for a ``mode="mp"`` process pool after
``executor.close()`` has joined its children.
"""

from __future__ import annotations

import resource
import sys

__all__ = ["peak_rss_bytes", "format_bytes"]


def _ru_maxrss_bytes(who: int) -> int:
    raw = resource.getrusage(who).ru_maxrss
    if sys.platform == "darwin":
        return int(raw)
    return int(raw) * 1024


def peak_rss_bytes(include_children: bool = True) -> int:
    """Peak resident set size of this process, in bytes.

    With ``include_children`` (default) the result is the max over the
    process itself and its reaped children — a process pool's memory
    counts once its workers have been joined.
    """
    peak = _ru_maxrss_bytes(resource.RUSAGE_SELF)
    if include_children:
        peak = max(peak, _ru_maxrss_bytes(resource.RUSAGE_CHILDREN))
    return peak


def format_bytes(n_bytes: float) -> str:
    """Human-readable binary size (``1.5 GiB`` style)."""
    value = float(n_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.0f} {unit}" if unit == "B" else f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")
