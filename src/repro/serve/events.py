"""Status-event plumbing shared by the job service and ``trace --follow``.

An :class:`EventLog` is an append-only, thread-safe sequence of small
records, each with a monotonically increasing ``seq``.  Producers
``emit`` from any thread (a scheduler worker flipping a job to
``running``, a tracer listener reporting a span close); consumers read
incrementally with :meth:`after` — "everything since the last seq I
saw" — which is exactly the shape both a chunked HTTP status stream and
a live terminal feed need: no consumer registration, no backpressure on
producers, any number of independent readers each holding only a cursor.

``wait(seq, timeout)`` blocks a *thread* until something newer than
``seq`` exists (the CLI follower uses it); the asyncio side never
blocks — the HTTP streamer polls :meth:`after` between short sleeps.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Event", "EventLog"]


@dataclass(frozen=True)
class Event:
    """One status record: a kind plus JSON-safe payload fields."""

    seq: int
    ts_s: float              # seconds since the log was created (monotonic)
    kind: str
    data: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {"seq": self.seq, "ts_s": round(self.ts_s, 6),
                "kind": self.kind, **self.data}


class EventLog:
    """Append-only event sequence with cursor-based incremental reads."""

    def __init__(self) -> None:
        self._origin = time.monotonic()
        self._cond = threading.Condition()
        self._events: list[Event] = []
        self._closed = False

    def emit(self, kind: str, **data: Any) -> Event:
        """Append one event (any thread); wakes blocked :meth:`wait` ers."""
        with self._cond:
            event = Event(
                seq=len(self._events) + 1,
                ts_s=time.monotonic() - self._origin,
                kind=kind,
                data=data,
            )
            self._events.append(event)
            self._cond.notify_all()
        return event

    def close(self) -> None:
        """Mark the stream complete; wakes waiters so followers can exit."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def __len__(self) -> int:
        with self._cond:
            return len(self._events)

    def snapshot(self) -> list[Event]:
        with self._cond:
            return list(self._events)

    def after(self, seq: int) -> list[Event]:
        """Every event with ``seq`` greater than the given cursor."""
        with self._cond:
            # seq values are 1..len, dense — slice instead of scanning.
            return list(self._events[max(seq, 0):])

    def wait(self, seq: int, timeout: float | None = None) -> bool:
        """Block until an event newer than ``seq`` exists or the log is
        closed; True if there is something new to read."""
        with self._cond:
            self._cond.wait_for(
                lambda: len(self._events) > seq or self._closed,
                timeout=timeout,
            )
            return len(self._events) > seq
