"""repro.serve — async job service over the scheduler.

A stdlib-only asyncio HTTP service (``python -m repro serve``) that
exposes every workload in the unified :mod:`repro.workloads` registry
as a job API: POST a request, poll or stream its status, fetch the
result.  Admission runs through the bounded scheduler queue (429 on a
full backlog), overload shedding through a circuit breaker (503 while
open), and identical requests are served from the content-addressed
result cache without re-execution.
"""

from repro.serve.events import Event, EventLog
from repro.serve.http import BackgroundServer, ServeApp, render_metrics_text
from repro.serve.service import TERMINAL_STATES, Job, JobService

__all__ = [
    "Event",
    "EventLog",
    "Job",
    "JobService",
    "TERMINAL_STATES",
    "ServeApp",
    "BackgroundServer",
    "render_metrics_text",
]
