"""Stdlib-only asyncio HTTP front-end for :class:`JobService`.

A deliberately small HTTP/1.1 implementation on ``asyncio`` streams —
no framework, one connection per request (``Connection: close``), JSON
bodies — because the interesting machinery (admission, shedding,
memoisation, streaming) lives in the service and the protocol layer
should stay legible end to end.

Endpoints
---------
- ``POST /jobs`` — body ``{"workload": name, "mode": "sched"|"trace"|
  "chaos"|"pipeline", "params": {...}, "priority": n, "on_complete":
  {spec}}``; 202 with the job status, or 200 immediately when the
  request is a cache hit.  400 bad request, 404 unknown workload, 429
  backlog full, 503 breaker open.  ``on_complete`` arms a durable
  follow-up job submitted when this one reaches a terminal state.
- ``POST /jobs/batch`` — body ``{"jobs": [spec, ...], "priority": n}``;
  admits the whole list atomically through the scheduler's batch path:
  207 Multi-Status with every job's status on success, 429 (or 503)
  with ``"admitted": 0`` when the backlog cannot take them all — never
  a partial admission.
- ``GET /jobs`` — all jobs, oldest first.
- ``GET /jobs/<id>`` — one job's status; with ``?follow=1`` a chunked
  ``application/x-ndjson`` stream of its status events that ends when
  the job reaches a terminal state.
- ``GET /jobs/<id>/result`` — the result payload (409 until terminal).
- ``POST /jobs/<id>/cancel`` — cancel a queued job.
- ``GET /workloads`` — the unified registry (names, modes, params).
- ``GET /metrics`` — Prometheus-style text exposition of the telemetry
  registry (``?format=json`` for the raw snapshot).
- ``GET /healthz`` — liveness + queue depth + breaker state.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any
from urllib.parse import parse_qs, unquote

from repro import workloads
from repro.faults.policies import CircuitOpenError
from repro.sched.core import BackpressureError
from repro.serve.service import TERMINAL_STATES, JobService
from repro.telemetry import instrument

__all__ = ["ServeApp", "BackgroundServer", "render_metrics_text"]

_REASONS = {
    200: "OK", 202: "Accepted", 207: "Multi-Status", 400: "Bad Request",
    404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}

#: How often the chunked status stream polls a job's event log.
_FOLLOW_POLL_S = 0.02


def _metric_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    return "".join(out)


def render_metrics_text(snapshot: dict[str, Any]) -> str:
    """Prometheus-style text exposition of a metrics snapshot.

    Counters/gauges render as ``name value``; histograms as cumulative
    ``_bucket{le=...}`` lines plus ``_count`` and ``_sum`` — enough for
    any Prometheus-shaped scraper and trivially greppable in CI.
    """
    lines: list[str] = []
    for name, value in snapshot.items():        # snapshot() is sorted
        metric = _metric_name(name)
        if isinstance(value, dict):             # histogram snapshot
            if not value:
                continue
            cumulative = 0
            bounds = [str(b) for b in value["boundaries"]] + ["+Inf"]
            for bound, count in zip(bounds, value["bucket_counts"]):
                cumulative += count
                lines.append(f'{metric}_bucket{{le="{bound}"}} {cumulative}')
            lines.append(f"{metric}_count {value['count']}")
            lines.append(f"{metric}_sum {value['sum']}")
        else:
            lines.append(f"{metric} {value}")
    return "\n".join(lines) + "\n"


class _Request:
    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method: str, path: str, query: dict[str, list[str]],
                 headers: dict[str, str], body: bytes) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        if not self.body:
            return {}
        return json.loads(self.body.decode("utf-8"))

    def flag(self, name: str) -> bool:
        values = self.query.get(name, [])
        return bool(values) and values[-1] not in ("0", "false", "no")


class ServeApp:
    """Routes HTTP requests onto a :class:`JobService`."""

    def __init__(self, service: JobService) -> None:
        self.service = service

    # -- protocol plumbing ---------------------------------------------------

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        started = time.perf_counter()
        route = "?"
        status = 500
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            route, status = await self._dispatch(request, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            return
        except Exception as exc:  # noqa: BLE001 - protocol backstop
            try:
                status = 500
                await self._respond(writer, 500, {"error": repr(exc)})
            except ConnectionError:
                return
        finally:
            instrument.observe_us(
                f"serve.latency.{_metric_name(route)}",
                (time.perf_counter() - started) * 1e6,
            )
            instrument.inc(f"serve.requests.{status}")
            try:
                writer.close()
            except ConnectionError:
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> _Request | None:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            key, _, value = raw.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        body = await reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        return _Request(method, unquote(path), parse_qs(query), headers, body)

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        content_type: str = "application/json",
    ) -> int:
        if isinstance(payload, (dict, list)):
            body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        else:
            body = str(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        return status

    # -- routing -------------------------------------------------------------

    async def _dispatch(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> tuple[str, int]:
        method, path = request.method, request.path.rstrip("/") or "/"
        with instrument.span("serve.request", category="serve",
                             method=method, path=path):
            if path == "/jobs" and method == "POST":
                return "POST /jobs", await self._post_job(request, writer)
            if path == "/jobs/batch" and method == "POST":
                return ("POST /jobs/batch",
                        await self._post_batch(request, writer))
            if path == "/jobs" and method == "GET":
                jobs = [job.describe() for job in self.service.jobs()]
                return "GET /jobs", await self._respond(writer, 200, jobs)
            if path.startswith("/jobs/"):
                return await self._job_routes(request, writer, method, path)
            if path == "/workloads" and method == "GET":
                listing = [
                    {"name": entry.name, "modes": list(entry.modes),
                     "params": {m: list(workloads.MODE_PARAMS[m])
                                for m in entry.modes}}
                    for entry in workloads.entries()
                ]
                return "GET /workloads", await self._respond(writer, 200, listing)
            if path == "/metrics" and method == "GET":
                snapshot = self.service.metrics_snapshot()
                if request.query.get("format", [""])[-1] == "json":
                    return "GET /metrics", await self._respond(writer, 200, snapshot)
                return "GET /metrics", await self._respond(
                    writer, 200, render_metrics_text(snapshot),
                    content_type="text/plain; charset=utf-8",
                )
            if path == "/healthz" and method == "GET":
                return "GET /healthz", await self._respond(
                    writer, 200, self.service.stats()
                )
            return (
                f"{method} {path}",
                await self._respond(writer, 404, {"error": f"no route {path}"}),
            )

    async def _post_job(self, request: _Request,
                        writer: asyncio.StreamWriter) -> int:
        try:
            spec = request.json()
        except (ValueError, UnicodeDecodeError) as exc:
            return await self._respond(writer, 400,
                                       {"error": f"bad JSON body: {exc}"})
        if not isinstance(spec, dict) or "workload" not in spec:
            return await self._respond(
                writer, 400, {"error": 'body must be {"workload": ..., '
                                       '"mode": ..., "params": {...}}'})
        try:
            job = self.service.submit(
                mode=spec.get("mode", "sched"),
                workload=str(spec["workload"]),
                params=spec.get("params") or {},
                priority=int(spec.get("priority", 0)),
                on_complete=spec.get("on_complete"),
            )
        except KeyError as exc:
            return await self._respond(
                writer, 404, {"error": f"unknown workload {exc.args[0]!r}"})
        except BackpressureError as exc:
            return await self._respond(writer, 429, {"error": str(exc)})
        except CircuitOpenError as exc:
            return await self._respond(writer, 503, {"error": str(exc)})
        except (TypeError, ValueError) as exc:     # includes WorkloadModeError
            return await self._respond(writer, 400, {"error": str(exc)})
        status = 200 if job.cached else 202
        return await self._respond(writer, status, job.describe())

    async def _post_batch(self, request: _Request,
                          writer: asyncio.StreamWriter) -> int:
        try:
            spec = request.json()
        except (ValueError, UnicodeDecodeError) as exc:
            return await self._respond(writer, 400,
                                       {"error": f"bad JSON body: {exc}"})
        if (not isinstance(spec, dict)
                or not isinstance(spec.get("jobs"), list)
                or not spec["jobs"]):
            return await self._respond(
                writer, 400,
                {"error": 'body must be {"jobs": [spec, ...], '
                          '"priority": n}', "admitted": 0})
        try:
            jobs = self.service.submit_batch(
                spec["jobs"], priority=int(spec.get("priority", 0)),
            )
        except KeyError as exc:
            return await self._respond(
                writer, 404,
                {"error": f"unknown workload {exc.args[0]!r}", "admitted": 0})
        except BackpressureError as exc:
            return await self._respond(writer, 429,
                                       {"error": str(exc), "admitted": 0})
        except CircuitOpenError as exc:
            return await self._respond(writer, 503,
                                       {"error": str(exc), "admitted": 0})
        except (TypeError, ValueError) as exc:
            return await self._respond(writer, 400,
                                       {"error": str(exc), "admitted": 0})
        return await self._respond(writer, 207, {
            "admitted": len(jobs),
            "jobs": [job.describe() for job in jobs],
        })

    async def _job_routes(
        self, request: _Request, writer: asyncio.StreamWriter,
        method: str, path: str,
    ) -> tuple[str, int]:
        parts = path.split("/")[2:]                 # after "/jobs/"
        try:
            job = self.service.get(parts[0])
        except KeyError:
            return (
                f"{method} /jobs/{{id}}",
                await self._respond(writer, 404,
                                    {"error": f"unknown job {parts[0]!r}"}),
            )
        action = parts[1] if len(parts) > 1 else ""
        if method == "GET" and action == "":
            if request.flag("follow"):
                return ("GET /jobs/{id}?follow",
                        await self._stream_job(job, writer))
            return ("GET /jobs/{id}",
                    await self._respond(writer, 200, job.describe()))
        if method == "GET" and action == "result":
            if job.state == "done":
                return ("GET /jobs/{id}/result", await self._respond(
                    writer, 200,
                    {"id": job.job_id, "state": job.state,
                     "cached": job.cached, "result": job.result}))
            if job.state in TERMINAL_STATES:        # failed / cancelled
                return ("GET /jobs/{id}/result", await self._respond(
                    writer, 409,
                    {"id": job.job_id, "state": job.state, "error": job.error}))
            return ("GET /jobs/{id}/result", await self._respond(
                writer, 409,
                {"id": job.job_id, "state": job.state,
                 "error": "job not finished; poll again or use ?follow=1"}))
        if method == "POST" and action == "cancel":
            ok = self.service.cancel(job.job_id)
            return ("POST /jobs/{id}/cancel", await self._respond(
                writer, 200 if ok else 409,
                {"id": job.job_id, "state": job.state, "cancelled": ok}))
        return (f"{method} /jobs/{{id}}/{action}", await self._respond(
            writer, 405, {"error": f"unsupported {method} on {path}"}))

    async def _stream_job(self, job, writer: asyncio.StreamWriter) -> int:
        """Chunked NDJSON status stream, one line per event, ending when
        the job is terminal — the polling client's push alternative."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )

        def chunk(record: dict) -> bytes:
            data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
            return f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n"

        writer.write(chunk({"kind": "snapshot", **job.describe()}))
        await writer.drain()
        cursor = 0
        while True:
            fresh = job.events.after(cursor)
            for event in fresh:
                cursor = event.seq
                writer.write(chunk(event.as_dict()))
            if fresh:
                await writer.drain()
            if job.state in TERMINAL_STATES and not job.events.after(cursor):
                break
            await asyncio.sleep(_FOLLOW_POLL_S)
        writer.write(chunk({"kind": "end", "state": job.state}))
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        return 200


class BackgroundServer:
    """An in-process server on its own event-loop thread.

    The shape both the tests and ``bench serve`` need: start, read the
    bound port (``port=0`` picks a free one), hammer it from client
    threads, stop.  The CLI path (``python -m repro serve``) runs the
    loop in the foreground instead — see ``repro.cli``.
    """

    def __init__(self, service: JobService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.app = ServeApp(service)
        self.host = host
        self.port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.AbstractServer | None = None

    def start(self) -> "BackgroundServer":
        started = threading.Event()
        failure: list[BaseException] = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                self._server = loop.run_until_complete(asyncio.start_server(
                    self.app.handle, self.host, self.port))
                self.port = self._server.sockets[0].getsockname()[1]
            except BaseException as exc:  # noqa: BLE001 - surfaced to caller
                failure.append(exc)
                started.set()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                self._server.close()
                loop.run_until_complete(self._server.wait_closed())
                loop.close()

        self._thread = threading.Thread(target=run, name="serve-http",
                                        daemon=True)
        self._thread.start()
        started.wait()
        if failure:
            raise failure[0]
        return self

    def stop(self, shutdown_service: bool = True) -> dict[str, int]:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        if shutdown_service:
            return self.service.shutdown()
        return {"cancelled": 0, "drained": 0}

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *_exc: object) -> None:
        self.stop()
