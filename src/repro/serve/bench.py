"""The many-clients load benchmark behind ``python -m repro bench serve``.

Starts a real :class:`~repro.serve.http.BackgroundServer` on a free
port and hammers it from concurrent client threads speaking plain
``http.client`` HTTP — the full stack (parse → admit → schedule →
execute → poll → result), not a shortcut through :class:`JobService`.

Two phases, same clients:

- **cold** — every request carries unique parameters, so every job
  executes on the scheduler.  Measures end-to-end submit→done latency
  and jobs/sec with a busy worker pool;
- **warm** — every client repeats one identical request.  Each should
  be served from the content-addressed result cache without
  re-execution, so the phase measures memoised latency and the cache
  hit rate (cross-checked against the ``serve.jobs.cached`` counter
  scraped from ``/metrics``).

Results go to ``BENCH_serve.json``; ``ok`` is true when every job
completed, the warm phase was (almost) entirely cache hits, and warm
p50 beats cold p50 — the CI smoke gate.  Absolute numbers are
machine-dependent; the cold/warm *ratio* is the point.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Any

from repro.serve.http import BackgroundServer
from repro.serve.service import JobService

__all__ = ["run_serve_bench", "render_point"]

#: Concurrent client threads (the acceptance floor is 16).
N_CLIENTS = 16

_POLL_S = 0.005


def _request(
    port: int, method: str, path: str, body: dict | None = None
) -> tuple[int, Any]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, payload, headers)
        response = conn.getresponse()
        raw = response.read()
        if response.headers.get_content_type() == "application/json":
            return response.status, json.loads(raw.decode("utf-8"))
        return response.status, raw.decode("utf-8", "replace")
    finally:
        conn.close()


def _run_one(port: int, spec: dict) -> tuple[float, bool, str]:
    """Submit one job and ride it to a terminal state.

    Returns (submit→done latency in seconds, served-from-cache, state).
    """
    started = time.perf_counter()
    status, body = _request(port, "POST", "/jobs", spec)
    if status not in (200, 202):
        return time.perf_counter() - started, False, f"http{status}"
    cached = bool(body.get("cached"))
    job_id = body["id"]
    state = body["state"]
    while state not in ("done", "failed", "cancelled"):
        time.sleep(_POLL_S)
        status, body = _request(port, "GET", f"/jobs/{job_id}")
        if status != 200:
            return time.perf_counter() - started, cached, f"http{status}"
        state = body["state"]
    return time.perf_counter() - started, cached, state


def _percentile(sorted_s: list[float], q: float) -> float:
    if not sorted_s:
        return 0.0
    index = min(len(sorted_s) - 1, round(q * (len(sorted_s) - 1)))
    return sorted_s[int(index)]


def _phase(
    port: int, clients: int, jobs_per_client: int, spec_for: Any
) -> dict[str, Any]:
    """Run ``clients`` threads, each submitting ``jobs_per_client`` jobs."""
    latencies: list[list[float]] = [[] for _ in range(clients)]
    cached_flags: list[int] = [0] * clients
    states: list[list[str]] = [[] for _ in range(clients)]
    barrier = threading.Barrier(clients + 1)

    def client(index: int) -> None:
        barrier.wait()
        for job_n in range(jobs_per_client):
            latency, cached, state = _run_one(port, spec_for(index, job_n))
            latencies[index].append(latency)
            cached_flags[index] += int(cached)
            states[index].append(state)

    threads = [
        threading.Thread(target=client, args=(i,), name=f"bench-client-{i}")
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - wall_start

    flat = sorted(lat for per in latencies for lat in per)
    all_states = [state for per in states for state in per]
    total = len(flat)
    return {
        "jobs": total,
        "done": sum(1 for state in all_states if state == "done"),
        "cached": sum(cached_flags),
        "wall_s": wall_s,
        "jobs_per_s": total / wall_s if wall_s > 0 else 0.0,
        "p50_ms": _percentile(flat, 0.50) * 1e3,
        "p99_ms": _percentile(flat, 0.99) * 1e3,
    }


def run_serve_bench(
    quick: bool = False,
    out_path: str | None = "BENCH_serve.json",
    clients: int = N_CLIENTS,
    workers: int = 4,
) -> dict[str, Any]:
    """Run the cold/warm load benchmark; write and return the point.

    ``quick`` shrinks jobs-per-client for the CI smoke step but keeps
    the full client count — concurrency is the thing being tested.
    """
    jobs_per_client = 2 if quick else 6
    service = JobService(workers=workers, backlog=max(256, clients * 8))
    point: dict[str, Any] = {
        "bench": "serve",
        "quick": quick,
        "clients": clients,
        "workers": workers,
        "jobs_per_client": jobs_per_client,
    }
    with BackgroundServer(service) as server:
        port = server.port
        # Cold: unique seeds → every job executes on the scheduler.
        cold = _phase(
            port, clients, jobs_per_client,
            lambda index, job_n: {
                "workload": "mapreduce", "mode": "sched",
                "params": {"workers": 2,
                           "seed": 1000 + index * jobs_per_client + job_n},
            },
        )
        # Warm: one identical request from everyone → cache hits.
        warm_spec = {"workload": "mapreduce", "mode": "sched",
                     "params": {"workers": 2, "seed": 1000}}
        warm = _phase(port, clients, jobs_per_client,
                      lambda index, job_n: dict(warm_spec))
        _, metrics = _request(port, "GET", "/metrics?format=json")
    service.shutdown()

    point.update({f"cold_{key}": value for key, value in cold.items()})
    point.update({f"warm_{key}": value for key, value in warm.items()})
    point["warm_hit_rate"] = warm["cached"] / warm["jobs"] if warm["jobs"] else 0.0
    point["metrics_jobs_submitted"] = metrics.get("serve.jobs.submitted", 0)
    point["metrics_jobs_cached"] = metrics.get("serve.jobs.cached", 0)
    point["metrics_jobs_completed"] = metrics.get("serve.jobs.completed", 0)
    for key, value in list(point.items()):
        if isinstance(value, float):
            point[key] = round(value, 6)
    # The warm phase races its first requests against each other: the
    # cache fills on the first completion, so up to one miss per seed
    # collision window is expected — gate at "almost all hits".
    point["gate_applied"] = True       # throughput gate runs on any core count
    point["ok"] = bool(
        point["cold_done"] == point["cold_jobs"]
        and point["warm_done"] == point["warm_jobs"]
        and point["warm_hit_rate"] >= 0.75
        and point["metrics_jobs_cached"] >= point["warm_cached"]
        and point["warm_p50_ms"] <= point["cold_p50_ms"]
    )
    point["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(point, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return point


def render_point(point: dict[str, Any]) -> str:
    """The benchmark point as the aligned table the CLI prints."""
    lines = [
        f"serve bench (quick={point['quick']}): {point['clients']} clients x "
        f"{point['jobs_per_client']} jobs, {point['workers']} workers, "
        f"ok={point['ok']}"
    ]
    for phase in ("cold", "warm"):
        lines.append(
            f"  {phase:4s}  p50 {point[f'{phase}_p50_ms']:8.2f} ms   "
            f"p99 {point[f'{phase}_p99_ms']:8.2f} ms   "
            f"{point[f'{phase}_jobs_per_s']:7.1f} jobs/s   "
            f"{point[f'{phase}_cached']}/{point[f'{phase}_jobs']} cached"
        )
    lines.append(
        f"  warm hit rate {point['warm_hit_rate'] * 100:.0f}%  "
        f"(metrics: {point['metrics_jobs_cached']} cached / "
        f"{point['metrics_jobs_submitted']} submitted)"
    )
    return "\n".join(lines)
