"""The job service core: admission, execution, status, graceful drain.

:class:`JobService` is the transport-independent heart of
``python -m repro serve`` — the HTTP layer in :mod:`repro.serve.http`
is a thin translation onto it, and the tests drive it directly.  It
composes the substrate built in earlier PRs as production components:

- **admission control** — jobs are tasks on a
  :class:`~repro.sched.executor.WorkStealingExecutor` in long-lived
  serving mode whose bounded :class:`~repro.sched.queue.JobQueue`
  refuses work past ``backlog`` with
  :class:`~repro.sched.core.BackpressureError` (HTTP 429);
- **overload shedding** — a
  :class:`~repro.faults.policies.CircuitBreaker` fed by job outcomes
  rejects new *executions* while open with
  :class:`~repro.faults.policies.CircuitOpenError` (HTTP 503).  Cached
  results are still served while shedding: a hit costs no execution,
  so refusing it would protect nothing;
- **request memoisation** — results are content-addressed in a
  :class:`~repro.sched.cache.ResultCache` under the fingerprint of the
  canonicalised request ``(mode, workload, params)``; an identical
  request completes instantly as a ``cached`` job without re-execution;
- **observability** — every transition bumps ``serve.*`` counters, the
  queue-depth gauge tracks the backlog, and per-job latency lands in a
  histogram; with telemetry enabled each execution runs under a
  ``serve.job`` span.

Workloads are resolved **only** through the unified
:mod:`repro.workloads` registry (the DESIGN rule): the service can run
exactly what the CLIs can, nothing else.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro import telemetry, workloads
from repro.faults.policies import CircuitBreaker, CircuitOpenError
from repro.sched.cache import ResultCache, fingerprint
from repro.sched.core import BackpressureError
from repro.sched.executor import WorkStealingExecutor
from repro.serve.events import EventLog
from repro.telemetry import instrument

__all__ = ["Job", "JobService", "TERMINAL_STATES"]

#: States a job never leaves.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

_MISSING = object()


@dataclass
class Job:
    """One client request's lifecycle: queued → running → terminal."""

    job_id: str
    mode: str
    workload: str
    params: dict[str, int]
    priority: int
    key: str                                  # content-address of the request
    state: str = "queued"
    cached: bool = False
    created_s: float = field(default_factory=time.time)
    started_s: float | None = None
    finished_s: float | None = None
    result: dict[str, Any] | None = None
    error: str | None = None
    events: EventLog = field(default_factory=EventLog)
    handle: Any = None                        # sched TaskHandle (None if cached)

    def _transition(self, state: str, **extra: Any) -> None:
        self.state = state
        self.events.emit("state", state=state, **extra)
        if state in TERMINAL_STATES:
            self.finished_s = time.time()
            self.events.close()

    def describe(self) -> dict[str, Any]:
        """JSON-safe status view (what ``GET /jobs/<id>`` returns)."""
        return {
            "id": self.job_id,
            "mode": self.mode,
            "workload": self.workload,
            "params": dict(self.params),
            "priority": self.priority,
            "key": self.key,
            "state": self.state,
            "cached": self.cached,
            "created_s": self.created_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "error": self.error,
            "events": len(self.events),
        }


class JobService:
    """Long-lived workload execution service over the scheduler."""

    def __init__(
        self,
        workers: int = 4,
        backlog: int = 64,
        seed: int = 0,
        cache: ResultCache | None = None,
        cache_dir: str | None = None,
        breaker: CircuitBreaker | None = None,
        manage_telemetry: bool = True,
    ) -> None:
        if backlog < 1:
            raise ValueError(f"backlog must be >= 1, got {backlog}")
        self.backlog = backlog
        self.executor = WorkStealingExecutor(
            n_workers=workers, seed=seed, deterministic=False,
            max_pending=backlog,
        )
        self.cache = cache if cache is not None else ResultCache(directory=cache_dir)
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            failure_threshold=5, reset_timeout_s=1.0, name="serve"
        )
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._next_id = 0
        self._closed = False
        # One observable metrics surface for /metrics: enable a session
        # for the service's lifetime unless the caller already runs one.
        self._session = None
        if manage_telemetry and not telemetry.is_enabled():
            self._session = telemetry.enable()
        self.executor.start()

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        mode: str,
        workload: str,
        params: Mapping[str, Any] | None = None,
        priority: int = 0,
    ) -> Job:
        """Admit one job request; returns the (possibly already done) job.

        Raises ``KeyError`` for an unknown workload, ``ValueError`` /
        :class:`~repro.workloads.WorkloadModeError` for a bad mode or
        parameters (HTTP 400/404), :class:`CircuitOpenError` while
        shedding (503), and
        :class:`~repro.sched.core.BackpressureError` when the backlog is
        full (429).
        """
        if self._closed:
            raise RuntimeError("service is shut down")
        entry = workloads.get(workload)
        workloads.runner_for(entry, mode)       # raises WorkloadModeError
        clean = workloads.validate_params(mode, params)
        key = fingerprint("serve", mode, entry.name, clean)
        with self._lock:
            self._next_id += 1
            job_id = f"j{self._next_id}"
        job = Job(job_id=job_id, mode=mode, workload=entry.name,
                  params=clean, priority=priority, key=key)
        job.events.emit("state", state="queued")
        instrument.inc("serve.jobs.submitted")

        cached = self.cache.get(key, _MISSING)
        if cached is not _MISSING:
            job.cached = True
            job.result = cached
            job.started_s = job.finished_s = time.time()
            job._transition("done", cached=True)
            instrument.inc("serve.jobs.cached")
            with self._lock:
                self._jobs[job_id] = job
            return job

        if not self.breaker.allow():
            instrument.inc("serve.rejected.breaker")
            raise CircuitOpenError(
                "service is shedding load (circuit breaker open)"
            )
        try:
            job.handle = self.executor.submit(
                lambda: self._execute(job),
                name=f"{mode}:{entry.name}", priority=priority,
            )
        except BackpressureError:
            instrument.inc("serve.rejected.backpressure")
            raise
        with self._lock:
            self._jobs[job_id] = job
        instrument.gauge("serve.queue.depth", self.executor.pending())
        return job

    def _execute(self, job: Job) -> None:
        """Runs on a scheduler worker; never raises (outcomes live on the
        job, not the task handle — a failed *workload* is a served
        result, not a scheduler fault)."""
        job.started_s = time.time()
        job._transition("running")
        started = time.perf_counter()
        with instrument.span("serve.job", category="serve", job=job.job_id,
                             mode=job.mode, workload=job.workload):
            try:
                payload = workloads.run_job(job.mode, job.workload, job.params)
            except Exception as exc:  # noqa: BLE001 - reported to the client
                job.error = repr(exc)
                self.breaker.record_failure()
                instrument.inc("serve.jobs.failed")
                job._transition("failed", error=job.error)
            else:
                self.cache.put(job.key, payload)
                job.result = payload
                self.breaker.record_success()
                instrument.inc("serve.jobs.completed")
                job._transition("done", cached=False)
        instrument.observe_us(
            "serve.job.latency_us", (time.perf_counter() - started) * 1e6
        )
        instrument.gauge("serve.queue.depth", self.executor.pending())

    # -- inspection ----------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """Raises ``KeyError`` for unknown ids."""
        with self._lock:
            return self._jobs[job_id]

    def jobs(self) -> list[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.created_s)

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; True if it will never run."""
        job = self.get(job_id)
        if job.handle is None or not job.handle.cancel():
            return job.state == "cancelled"
        instrument.inc("serve.jobs.cancelled")
        job._transition("cancelled")
        instrument.gauge("serve.queue.depth", self.executor.pending())
        return True

    def stats(self) -> dict[str, Any]:
        with self._lock:
            by_state: dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
        return {
            "jobs": by_state,
            "queue_depth": self.executor.pending(),
            "backlog": self.backlog,
            "breaker": self.breaker.state,
            "cache": self.cache.stats(),
            "workers": self.executor.n_workers,
        }

    def metrics_snapshot(self) -> dict[str, Any]:
        """The active telemetry registry's instruments (for /metrics)."""
        metrics = telemetry.get_metrics()
        return metrics.snapshot() if metrics is not None else {}

    # -- graceful shutdown ---------------------------------------------------

    def shutdown(self, timeout: float | None = None) -> dict[str, int]:
        """Drain in-flight jobs, cancel queued ones, stop the workers.

        Queued-but-unstarted jobs end in a terminal ``cancelled`` state
        (their streams close, pollers see it); running jobs finish and
        are served normally.  Idempotent.  Returns
        ``{"cancelled": n, "drained": m}``.
        """
        with self._lock:
            if self._closed:
                return {"cancelled": 0, "drained": 0}
            self._closed = True
            queued = [job for job in self._jobs.values()
                      if job.state == "queued" and job.handle is not None]
        cancelled = 0
        for job in queued:
            if job.handle.cancel():
                instrument.inc("serve.jobs.cancelled")
                job._transition("cancelled")
                cancelled += 1
        drained_from = time.time()
        self.executor.shutdown(cancel_pending=True, timeout=timeout)
        # Sweep stragglers: a job admitted concurrently with shutdown may
        # have had its task cancelled at the executor without the service
        # seeing it — reflect the terminal state on the job record too.
        with self._lock:
            stragglers = [job for job in self._jobs.values()
                          if job.state == "queued"]
        for job in stragglers:
            if job.handle is not None and job.handle.cancelled():
                job._transition("cancelled")
                cancelled += 1
        with self._lock:
            drained = sum(
                1 for job in self._jobs.values()
                if job.finished_s is not None
                and job.finished_s >= drained_from
                and job.state in ("done", "failed")
            )
        if self._session is not None:
            telemetry.disable()
            self._session = None
        return {"cancelled": cancelled, "drained": drained}
