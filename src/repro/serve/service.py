"""The job service core: admission, execution, status, graceful drain.

:class:`JobService` is the transport-independent heart of
``python -m repro serve`` — the HTTP layer in :mod:`repro.serve.http`
is a thin translation onto it, and the tests drive it directly.  It
composes the substrate built in earlier PRs as production components:

- **admission control** — jobs are tasks on a
  :class:`~repro.sched.executor.WorkStealingExecutor` in long-lived
  serving mode whose bounded :class:`~repro.sched.queue.JobQueue`
  refuses work past ``backlog`` with
  :class:`~repro.sched.core.BackpressureError` (HTTP 429);
- **overload shedding** — a
  :class:`~repro.faults.policies.CircuitBreaker` fed by job outcomes
  rejects new *executions* while open with
  :class:`~repro.faults.policies.CircuitOpenError` (HTTP 503).  Cached
  results are still served while shedding: a hit costs no execution,
  so refusing it would protect nothing;
- **request memoisation** — results are content-addressed in a
  :class:`~repro.sched.cache.ResultCache` under the fingerprint of the
  canonicalised request ``(mode, workload, params)``; an identical
  request completes instantly as a ``cached`` job without re-execution;
- **observability** — every transition bumps ``serve.*`` counters, the
  queue-depth gauge tracks the backlog, and per-job latency lands in a
  histogram; with telemetry enabled each execution runs under a
  ``serve.job`` span;
- **durable callbacks** — a submission may carry ``on_complete``: a
  follow-up job spec armed in the durable
  :class:`~repro.pipeline.store.JobStore` and enqueued exactly once
  when the parent reaches a terminal state.  The armed spec lives in
  SQLite (the DESIGN rule: durable state goes through the pipeline
  store), so follow-ups survive a service restart; in-memory queues
  stay ephemeral.  Every terminal transition is also recorded durably
  (:meth:`~repro.pipeline.store.JobStore.mark_terminal`), so a
  restarted service can tell "armed, parent still running" from
  "armed, parent already finished — the fire was lost" and resubmits
  the latter on construction;
- **atomic batches** — :meth:`submit_batch` admits a list of specs all
  or nothing, riding :meth:`WorkStealingExecutor.submit_batch` /
  :meth:`JobQueue.push_batch`: one overflowing batch is refused whole
  (HTTP 429 with zero admissions), never half-admitted.

Workloads are resolved **only** through the unified
:mod:`repro.workloads` registry (the DESIGN rule): the service can run
exactly what the CLIs can, nothing else.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro import telemetry, workloads
from repro.faults.policies import CircuitBreaker, CircuitOpenError
from repro.pipeline.store import JobStore
from repro.sched.cache import ResultCache, fingerprint
from repro.sched.core import BackpressureError
from repro.sched.executor import WorkStealingExecutor
from repro.serve.events import EventLog
from repro.telemetry import instrument

__all__ = ["Job", "JobService", "TERMINAL_STATES"]

#: States a job never leaves.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

_MISSING = object()


@dataclass
class Job:
    """One client request's lifecycle: queued → running → terminal."""

    job_id: str
    mode: str
    workload: str
    params: dict[str, int]
    priority: int
    key: str                                  # content-address of the request
    state: str = "queued"
    cached: bool = False
    created_s: float = field(default_factory=time.time)
    started_s: float | None = None
    finished_s: float | None = None
    result: dict[str, Any] | None = None
    error: str | None = None
    events: EventLog = field(default_factory=EventLog)
    handle: Any = None                        # sched TaskHandle (None if cached)
    follow_ups: list[str] = field(default_factory=list)  # on_complete job ids

    def _transition(self, state: str, **extra: Any) -> None:
        self.state = state
        self.events.emit("state", state=state, **extra)
        if state in TERMINAL_STATES:
            self.finished_s = time.time()
            self.events.close()

    def describe(self) -> dict[str, Any]:
        """JSON-safe status view (what ``GET /jobs/<id>`` returns)."""
        return {
            "id": self.job_id,
            "mode": self.mode,
            "workload": self.workload,
            "params": dict(self.params),
            "priority": self.priority,
            "key": self.key,
            "state": self.state,
            "cached": self.cached,
            "created_s": self.created_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "error": self.error,
            "events": len(self.events),
            "follow_ups": list(self.follow_ups),
        }


class JobService:
    """Long-lived workload execution service over the scheduler."""

    def __init__(
        self,
        workers: int = 4,
        backlog: int = 64,
        seed: int = 0,
        cache: ResultCache | None = None,
        cache_dir: str | None = None,
        breaker: CircuitBreaker | None = None,
        manage_telemetry: bool = True,
        store: JobStore | None = None,
        store_path: str | None = None,
    ) -> None:
        if backlog < 1:
            raise ValueError(f"backlog must be >= 1, got {backlog}")
        self.backlog = backlog
        # The durable side-channel: on_complete callback specs are armed
        # here so they survive a restart when store_path names a file.
        self.store = store if store is not None \
            else JobStore(store_path or ":memory:")
        self._owns_store = store is None
        self.executor = WorkStealingExecutor(
            n_workers=workers, seed=seed, deterministic=False,
            max_pending=backlog,
        )
        self.cache = cache if cache is not None else ResultCache(directory=cache_dir)
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            failure_threshold=5, reset_timeout_s=1.0, name="serve"
        )
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._next_id = 0
        self._closed = False
        # One observable metrics surface for /metrics: enable a session
        # for the service's lifetime unless the caller already runs one.
        self._session = None
        if manage_telemetry and not telemetry.is_enabled():
            self._session = telemetry.enable()
        self.executor.start()
        self._resubmit_stranded_callbacks()

    # -- submission ----------------------------------------------------------

    def _validate_follow_up(self, spec: Any) -> dict[str, Any]:
        """Normalise an ``on_complete`` spec (recursively) or raise the
        same errors :meth:`submit` would — *before* the parent admits."""
        if not isinstance(spec, Mapping) or "workload" not in spec:
            raise ValueError(
                'on_complete must be an object with a "workload"'
            )
        mode = str(spec.get("mode", "sched"))
        entry = workloads.get(str(spec["workload"]))    # KeyError → 404
        workloads.runner_for(entry, mode)               # WorkloadModeError
        clean = workloads.validate_params(mode, spec.get("params") or {})
        out: dict[str, Any] = {
            "mode": mode, "workload": entry.name, "params": clean,
            "priority": int(spec.get("priority", 0)),
        }
        if spec.get("on_complete") is not None:
            out["on_complete"] = self._validate_follow_up(spec["on_complete"])
        return out

    def submit(
        self,
        mode: str,
        workload: str,
        params: Mapping[str, Any] | None = None,
        priority: int = 0,
        on_complete: Mapping[str, Any] | None = None,
    ) -> Job:
        """Admit one job request; returns the (possibly already done) job.

        ``on_complete`` is a follow-up job spec (``{"workload": ...,
        "mode": ..., "params": ..., "on_complete": ...}``, chainable)
        armed durably in the pipeline store and submitted exactly once
        when this job reaches a terminal state.

        Raises ``KeyError`` for an unknown workload, ``ValueError`` /
        :class:`~repro.workloads.WorkloadModeError` for a bad mode or
        parameters (HTTP 400/404), :class:`CircuitOpenError` while
        shedding (503), and
        :class:`~repro.sched.core.BackpressureError` when the backlog is
        full (429).
        """
        if self._closed:
            raise RuntimeError("service is shut down")
        entry = workloads.get(workload)
        workloads.runner_for(entry, mode)       # raises WorkloadModeError
        clean = workloads.validate_params(mode, params)
        follow = (self._validate_follow_up(on_complete)
                  if on_complete is not None else None)
        key = fingerprint("serve", mode, entry.name, clean)
        with self._lock:
            self._next_id += 1
            job_id = f"j{self._next_id}"
        job = Job(job_id=job_id, mode=mode, workload=entry.name,
                  params=clean, priority=priority, key=key)
        job.events.emit("state", state="queued")
        instrument.inc("serve.jobs.submitted")

        cached = self.cache.get(key, _MISSING)
        if cached is not _MISSING:
            job.cached = True
            job.result = cached
            job.started_s = job.finished_s = time.time()
            job._transition("done", cached=True)
            self._mark_terminal(job)
            instrument.inc("serve.jobs.cached")
            with self._lock:
                self._jobs[job_id] = job
            if follow is not None:
                # Mark first, then arm, then fire: if the process dies
                # between arm and fire, the completions row already says
                # the parent is terminal, so a restart resubmits.
                self.store.add_callback(job.key, follow)
                self._fire_callbacks(job)
            return job

        if not self.breaker.allow():
            instrument.inc("serve.rejected.breaker")
            raise CircuitOpenError(
                "service is shedding load (circuit breaker open)"
            )
        try:
            job.handle = self.executor.submit(
                lambda: self._execute(job),
                name=f"{mode}:{entry.name}", priority=priority,
            )
        except BackpressureError:
            instrument.inc("serve.rejected.backpressure")
            raise
        with self._lock:
            self._jobs[job_id] = job
        if follow is not None:
            # Arm after admission (a refused job must not leave a stray
            # armed row), then close the race with an already-finished
            # job: claim_callbacks is exactly-once, so if _execute beat
            # us to the claim this second fire finds nothing.
            self.store.add_callback(job.key, follow)
            if job.state in TERMINAL_STATES:
                self._fire_callbacks(job)
        instrument.gauge("serve.queue.depth", self.executor.pending())
        return job

    def submit_batch(
        self,
        specs: Sequence[Mapping[str, Any]],
        priority: int = 0,
    ) -> list[Job]:
        """Admit a list of job specs atomically: all, or none.

        Every spec is resolved and validated before anything is
        admitted, so one bad spec refuses the whole batch (400/404 with
        zero admissions).  Cache hits complete instantly without
        occupying backlog; the rest ride the executor's atomic
        :meth:`~repro.sched.executor.WorkStealingExecutor.submit_batch`
        — if the backlog cannot take them all,
        :class:`~repro.sched.core.BackpressureError` propagates and
        **nothing** is admitted, not even the cache hits.
        """
        if self._closed:
            raise RuntimeError("service is shut down")
        specs = list(specs)
        if not specs:
            raise ValueError("batch must contain at least one job spec")
        resolved = []
        for i, spec in enumerate(specs):
            if not isinstance(spec, Mapping) or "workload" not in spec:
                raise ValueError(
                    f'batch job {i}: each spec needs a "workload"'
                )
            mode = str(spec.get("mode", "sched"))
            entry = workloads.get(str(spec["workload"]))
            workloads.runner_for(entry, mode)
            clean = workloads.validate_params(mode, spec.get("params") or {})
            follow = (self._validate_follow_up(spec["on_complete"])
                      if spec.get("on_complete") is not None else None)
            key = fingerprint("serve", mode, entry.name, clean)
            resolved.append((mode, entry.name, clean, follow, key))

        jobs: list[Job] = []
        hits: list[tuple[Job, Any]] = []
        misses: list[Job] = []
        for mode, name, clean, follow, key in resolved:
            with self._lock:
                self._next_id += 1
                job_id = f"j{self._next_id}"
            job = Job(job_id=job_id, mode=mode, workload=name, params=clean,
                      priority=priority, key=key)
            job.follow_up_spec = follow  # type: ignore[attr-defined]
            jobs.append(job)
            cached = self.cache.get(key, _MISSING)
            if cached is not _MISSING:
                hits.append((job, cached))
            else:
                misses.append(job)

        if misses and not self.breaker.allow():
            instrument.inc("serve.rejected.breaker")
            raise CircuitOpenError(
                "service is shedding load (circuit breaker open)"
            )
        if misses:
            try:
                handles = self.executor.submit_batch(
                    [lambda job=job: self._execute(job) for job in misses],
                    name="serve.batch", priority=priority,
                )
            except BackpressureError:
                # Zero admissions: the cache hits are discarded too —
                # a partially-admitted batch is exactly what this
                # endpoint promises never to produce.
                instrument.inc("serve.rejected.backpressure")
                raise
            for job, handle in zip(misses, handles):
                job.handle = handle

        for job in jobs:
            job.events.emit("state", state="queued")
            instrument.inc("serve.jobs.submitted")
            with self._lock:
                self._jobs[job.job_id] = job
        for job, payload in hits:
            job.cached = True
            job.result = payload
            job.started_s = job.finished_s = time.time()
            job._transition("done", cached=True)
            self._mark_terminal(job)
            instrument.inc("serve.jobs.cached")
        for job in jobs:
            follow = getattr(job, "follow_up_spec", None)
            if follow is not None:
                self.store.add_callback(job.key, follow)
                if job.state in TERMINAL_STATES:
                    self._fire_callbacks(job)
        instrument.gauge("serve.queue.depth", self.executor.pending())
        return jobs

    def _mark_terminal(self, job: Job) -> None:
        """Durably record that this job's key reached a terminal state.

        The completions row is what lets a *restarted* service tell a
        stranded callback (parent finished, fire lost to the shutdown)
        from one whose parent never ran — only the former may be
        resubmitted.  Written before callbacks fire, so there is no
        window where the spec is claimed-or-armed with the parent's
        completion unrecorded.
        """
        self.store.mark_terminal(job.key, job.state)

    def _resubmit_stranded_callbacks(self) -> None:
        """Replay armed follow-ups whose parent already finished.

        Runs once, on construction.  A previous incarnation that shut
        down (or died) between a parent's terminal transition and its
        callback fire left the spec armed in the durable store *and* a
        completions row naming the parent terminal — the fire is lost,
        the obligation is not.  ``claim_callbacks`` flips armed → fired
        atomically, so two services racing on the same store resubmit
        each spec at most once.
        """
        for parent_key, state in self.store.stranded_callbacks():
            for spec in self.store.claim_callbacks(parent_key):
                try:
                    self.submit(
                        mode=spec.get("mode", "sched"),
                        workload=spec["workload"],
                        params=spec.get("params") or {},
                        priority=int(spec.get("priority", 0)),
                        on_complete=spec.get("on_complete"),
                    )
                except Exception as exc:  # noqa: BLE001 - parent long gone
                    instrument.inc("serve.callbacks.dropped")
                    instrument.instant("serve.callback.dropped",
                                       parent=parent_key, error=repr(exc))
                else:
                    instrument.inc("serve.callbacks.resubmitted")
                    instrument.instant("serve.callback.resubmitted",
                                       parent=parent_key, parent_state=state)

    def _fire_callbacks(self, job: Job) -> None:
        """Submit every armed follow-up for this job's key, exactly once.

        During shutdown armed callbacks are deliberately left in the
        durable store untouched: a restarted service pointed at the same
        ``store_path`` still has them.
        """
        if self._closed:
            return
        for spec in self.store.claim_callbacks(job.key):
            try:
                follow = self.submit(
                    mode=spec.get("mode", "sched"),
                    workload=spec["workload"],
                    params=spec.get("params") or {},
                    priority=int(spec.get("priority", 0)),
                    on_complete=spec.get("on_complete"),
                )
            except Exception as exc:  # noqa: BLE001 - parent already terminal
                instrument.inc("serve.callbacks.dropped")
                instrument.instant("serve.callback.dropped", job=job.job_id,
                                   error=repr(exc))
            else:
                job.follow_ups.append(follow.job_id)
                instrument.inc("serve.callbacks.fired")

    def _execute(self, job: Job) -> None:
        """Runs on a scheduler worker; never raises (outcomes live on the
        job, not the task handle — a failed *workload* is a served
        result, not a scheduler fault)."""
        job.started_s = time.time()
        job._transition("running")
        started = time.perf_counter()
        with instrument.span("serve.job", category="serve", job=job.job_id,
                             mode=job.mode, workload=job.workload):
            try:
                payload = workloads.run_job(job.mode, job.workload, job.params)
            except Exception as exc:  # noqa: BLE001 - reported to the client
                job.error = repr(exc)
                self.breaker.record_failure()
                instrument.inc("serve.jobs.failed")
                job._transition("failed", error=job.error)
            else:
                self.cache.put(job.key, payload)
                job.result = payload
                self.breaker.record_success()
                instrument.inc("serve.jobs.completed")
                job._transition("done", cached=False)
        self._mark_terminal(job)
        self._fire_callbacks(job)
        instrument.observe_us(
            "serve.job.latency_us", (time.perf_counter() - started) * 1e6
        )
        instrument.gauge("serve.queue.depth", self.executor.pending())

    # -- inspection ----------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """Raises ``KeyError`` for unknown ids."""
        with self._lock:
            return self._jobs[job_id]

    def jobs(self) -> list[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.created_s)

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; True if it will never run."""
        job = self.get(job_id)
        if job.handle is None or not job.handle.cancel():
            return job.state == "cancelled"
        instrument.inc("serve.jobs.cancelled")
        job._transition("cancelled")
        self._mark_terminal(job)
        self._fire_callbacks(job)
        instrument.gauge("serve.queue.depth", self.executor.pending())
        return True

    def stats(self) -> dict[str, Any]:
        with self._lock:
            by_state: dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
        return {
            "jobs": by_state,
            "queue_depth": self.executor.pending(),
            "backlog": self.backlog,
            "breaker": self.breaker.state,
            "cache": self.cache.stats(),
            "workers": self.executor.n_workers,
        }

    def metrics_snapshot(self) -> dict[str, Any]:
        """The active telemetry registry's instruments (for /metrics)."""
        metrics = telemetry.get_metrics()
        return metrics.snapshot() if metrics is not None else {}

    # -- graceful shutdown ---------------------------------------------------

    def shutdown(self, timeout: float | None = None) -> dict[str, int]:
        """Drain in-flight jobs, cancel queued ones, stop the workers.

        Queued-but-unstarted jobs end in a terminal ``cancelled`` state
        (their streams close, pollers see it); running jobs finish and
        are served normally.  Idempotent.  Returns
        ``{"cancelled": n, "drained": m}``.
        """
        with self._lock:
            if self._closed:
                return {"cancelled": 0, "drained": 0}
            self._closed = True
            queued = [job for job in self._jobs.values()
                      if job.state == "queued" and job.handle is not None]
        cancelled = 0
        for job in queued:
            if job.handle.cancel():
                instrument.inc("serve.jobs.cancelled")
                job._transition("cancelled")
                self._mark_terminal(job)
                cancelled += 1
        drained_from = time.time()
        self.executor.shutdown(cancel_pending=True, timeout=timeout)
        # Sweep stragglers: a job admitted concurrently with shutdown may
        # have had its task cancelled at the executor without the service
        # seeing it — reflect the terminal state on the job record too.
        with self._lock:
            stragglers = [job for job in self._jobs.values()
                          if job.state == "queued"]
        for job in stragglers:
            if job.handle is not None and job.handle.cancelled():
                job._transition("cancelled")
                self._mark_terminal(job)
                cancelled += 1
        with self._lock:
            drained = sum(
                1 for job in self._jobs.values()
                if job.finished_s is not None
                and job.finished_s >= drained_from
                and job.state in ("done", "failed")
            )
        if self._session is not None:
            telemetry.disable()
            self._session = None
        if self._owns_store:
            self.store.close()
        return {"cancelled": cancelled, "drained": drained}
