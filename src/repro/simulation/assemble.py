"""Convert raw generated score arrays into survey response objects.

The generator works on numpy arrays; the analysis pipeline works on the
typed objects of :mod:`repro.survey`.  This module is the bridge: it maps
the (N, K, category, wave, item) integer array onto per-student
:class:`~repro.survey.responses.StudentResponse` sheets for both waves.
"""

from __future__ import annotations

from typing import Sequence

from repro.simulation.model import CATEGORIES, WAVES, RawScores
from repro.survey.instrument import Instrument
from repro.survey.responses import ElementResponse, StudentResponse, WaveResponses
from repro.survey.scales import Category

__all__ = ["assemble_waves"]


def assemble_waves(
    raw: RawScores,
    instrument: Instrument,
    student_ids: Sequence[str],
) -> dict[str, WaveResponses]:
    """Build both waves' :class:`WaveResponses` from a raw score array.

    ``student_ids`` fixes row order; the instrument's element order must
    match the generator's skill order (validated).
    """
    if tuple(instrument.element_names) != tuple(raw.skills):
        raise ValueError(
            "instrument elements and generated skills differ: "
            f"{instrument.element_names} vs {raw.skills}"
        )
    n, k, n_cat, n_wave, n_items = raw.scores.shape
    if len(student_ids) != n:
        raise ValueError(f"{len(student_ids)} ids for {n} generated students")
    if len(set(student_ids)) != n:
        raise ValueError("duplicate student ids")
    if n_cat != len(CATEGORIES) or n_wave != len(WAVES):
        raise ValueError("raw scores have unexpected category/wave dimensions")
    for element in instrument.elements:
        if element.n_items != n_items:
            raise ValueError(
                f"element {element.name!r} has {element.n_items} items, "
                f"generator produced {n_items}"
            )

    category_enum = {"class_emphasis": Category.CLASS_EMPHASIS,
                     "personal_growth": Category.PERSONAL_GROWTH}

    waves: dict[str, WaveResponses] = {}
    for wi, wave_name in enumerate(WAVES):
        responses = []
        for si in range(n):
            ratings: dict[tuple[str, Category], ElementResponse] = {}
            for ki, skill in enumerate(raw.skills):
                for ci, cat_name in enumerate(CATEGORIES):
                    scores = raw.scores[si, ki, ci, wi]
                    ratings[(skill, category_enum[cat_name])] = ElementResponse(
                        element=skill,
                        category=category_enum[cat_name],
                        definition=int(scores[0]),
                        components=tuple(int(x) for x in scores[1:]),
                    )
            responses.append(
                StudentResponse(student_id=str(student_ids[si]), ratings=ratings)
            )
        waves[wave_name] = WaveResponses(
            wave_name=wave_name, instrument=instrument, responses=tuple(responses)
        )
    return waves
