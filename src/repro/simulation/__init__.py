"""Synthetic survey-response generation.

The paper's raw data — 124 students' item-level ratings over two waves —
is not published.  This package builds the closest synthetic equivalent:
a seeded latent-trait (Gaussian copula) Likert response model whose knobs
are *calibrated* so the generated raw responses, pushed through the same
scoring and statistics pipeline the paper used, reproduce the paper's
published statistics (per-skill means, wave-level SDs, per-skill
emphasis↔growth Pearson correlations) within tight tolerances.

Crucially, nothing downstream is hard-coded: the benchmarks recompute
Tables 1–6 from simulated *item-level* responses, so the whole analysis
pipeline (scoring → t-tests → Cohen's d → Pearson → rankings) is
exercised end-to-end, exactly as it would be on real data.

- :mod:`repro.simulation.model` — the latent-trait response model.
- :mod:`repro.simulation.calibration` — deterministic fixed-point
  calibration of the model's knobs against published targets.
- :mod:`repro.simulation.assemble` — conversion of the model's raw score
  arrays into :mod:`repro.survey` response objects.
"""

from repro.simulation.assemble import assemble_waves
from repro.simulation.calibration import CalibrationResult, calibrate
from repro.simulation.model import ModelKnobs, ResponseModel, SimulationTargets
from repro.simulation.sensitivity import (
    SensitivityPoint,
    sensitivity_sweep,
    subsample_analysis,
)

__all__ = [
    "CalibrationResult",
    "ModelKnobs",
    "ResponseModel",
    "SensitivityPoint",
    "SimulationTargets",
    "assemble_waves",
    "calibrate",
    "sensitivity_sweep",
    "subsample_analysis",
]
