"""Cohort-size sensitivity: would a smaller study still find the effects?

The paper had 124 students.  :func:`subsample_analysis` reruns the exact
published analysis on a random subset of the cohort, and
:func:`sensitivity_sweep` maps effect detection across cohort sizes —
connecting the simulation to the power analysis in
:mod:`repro.stats.power` (the empirical detection rates should track the
analytic power curve, which the tests verify at a coarse level).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.analysis import StudyAnalysis, analyze_waves
from repro.survey.responses import WaveResponses

__all__ = ["SensitivityPoint", "subsample_analysis", "sensitivity_sweep"]


def _subsample(wave: WaveResponses, ids: list[str]) -> WaveResponses:
    wanted = set(ids)
    return WaveResponses(
        wave_name=wave.wave_name,
        instrument=wave.instrument,
        responses=tuple(r for r in wave.responses if r.student_id in wanted),
    )


def subsample_analysis(
    first: WaveResponses,
    second: WaveResponses,
    n: int,
    seed: int = 0,
) -> StudyAnalysis:
    """The published analysis on a random n-student subset of the cohort."""
    common = sorted(
        {r.student_id for r in first.responses}
        & {r.student_id for r in second.responses}
    )
    if not 2 <= n <= len(common):
        raise ValueError(f"n must be in [2, {len(common)}], got {n}")
    rng = np.random.default_rng(seed)
    chosen = list(rng.choice(common, size=n, replace=False))
    return analyze_waves(_subsample(first, chosen), _subsample(second, chosen))


@dataclass(frozen=True)
class SensitivityPoint:
    """Detection behaviour at one cohort size."""

    n: int
    n_replicates: int
    emphasis_detection_rate: float    # fraction of subsamples with p < .05
    growth_detection_rate: float
    mean_d_emphasis: float
    mean_d_growth: float


def sensitivity_sweep(
    first: WaveResponses,
    second: WaveResponses,
    sizes: tuple[int, ...] = (16, 32, 64, 124),
    n_replicates: int = 10,
    seed: int = 0,
) -> list[SensitivityPoint]:
    """Detection rates of the two headline effects across cohort sizes."""
    if n_replicates < 1:
        raise ValueError("need at least one replicate")
    points: list[SensitivityPoint] = []
    for size in sizes:
        emphasis_hits = 0
        growth_hits = 0
        d_emphasis: list[float] = []
        d_growth: list[float] = []
        for replicate in range(n_replicates):
            analysis = subsample_analysis(
                first, second, size, seed=seed * 1000 + size * 17 + replicate
            )
            emphasis_hits += analysis.ttest_emphasis.p_value < 0.05
            growth_hits += analysis.ttest_growth.p_value < 0.05
            d_emphasis.append(analysis.cohens_d_emphasis.d)
            d_growth.append(analysis.cohens_d_growth.d)
        points.append(SensitivityPoint(
            n=size,
            n_replicates=n_replicates,
            emphasis_detection_rate=emphasis_hits / n_replicates,
            growth_detection_rate=growth_hits / n_replicates,
            mean_d_emphasis=float(np.mean(d_emphasis)),
            mean_d_growth=float(np.mean(d_growth)),
        ))
    return points
