"""Deterministic calibration of the response model.

Because :class:`~repro.simulation.model.ResponseModel` fixes its underlying
standard-normal draws at construction, every observed statistic is a smooth
deterministic function of the knobs, and each target is (locally) monotone
in exactly one knob:

- the observed mean of a skill's scores is increasing in its latent ``mu``;
- the observed wave-level SD of the overall average is increasing in the
  student-factor share ``alpha``;
- the observed emphasis↔growth Pearson r of a skill is increasing in its
  residual correlation ``c_q``.

Calibration therefore runs a few rounds of coordinate-wise secant updates.
It converges in a handful of rounds to well under the publication
tolerances (the paper reports 2 decimal places).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulation.model import (
    CATEGORIES,
    WAVES,
    ModelKnobs,
    ResponseModel,
    SimulationTargets,
)

__all__ = ["CalibrationResult", "calibrate"]

# Publication precision is 2 decimals; calibrate well inside that.
MEAN_TOL = 0.005
SD_TOL = 0.005
R_TOL = 0.02
MAX_ROUNDS = 60


@dataclass(frozen=True)
class CalibrationResult:
    """Calibrated knobs plus the residual errors at convergence."""

    knobs: ModelKnobs
    rounds: int
    max_mean_error: float
    max_sd_error: float
    max_r_error: float
    converged: bool

    def __str__(self) -> str:
        status = "converged" if self.converged else "NOT converged"
        return (
            f"calibration {status} in {self.rounds} rounds "
            f"(|mean err| <= {self.max_mean_error:.4f}, "
            f"|sd err| <= {self.max_sd_error:.4f}, "
            f"|r err| <= {self.max_r_error:.4f})"
        )


def _target_arrays(targets: SimulationTargets) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    k = len(targets.skills)
    mean = np.empty((k, 2, 2))
    sd = np.empty((2, 2))
    r = np.empty((k, 2))
    for ki, skill in enumerate(targets.skills):
        for ci, cat in enumerate(CATEGORIES):
            for wi, wave in enumerate(WAVES):
                mean[ki, ci, wi] = targets.skill_means[(skill, cat, wave)]
    for ci, cat in enumerate(CATEGORIES):
        for wi, wave in enumerate(WAVES):
            sd[ci, wi] = targets.overall_sd[(cat, wave)]
    for ki, skill in enumerate(targets.skills):
        for wi, wave in enumerate(WAVES):
            r[ki, wi] = targets.pearson_r[(skill, wave)]
    return mean, sd, r


def _target_var(target_sd: np.ndarray) -> np.ndarray:
    return target_sd**2


def calibrate(
    model: ResponseModel,
    targets: SimulationTargets,
    knobs: ModelKnobs | None = None,
) -> CalibrationResult:
    """Fit the model's knobs to the published targets.

    Raises :class:`ValueError` if the model and targets disagree on the
    skill list; returns a :class:`CalibrationResult` whose ``converged``
    flag reports whether all tolerances were met (they always are for the
    paper's targets; the flag exists for exotic user-supplied targets).
    """
    if tuple(targets.skills) != model.skills:
        raise ValueError("model and targets must agree on the skill list and order")
    if targets.n_students != model.n_students:
        raise ValueError("model and targets must agree on the cohort size")

    target_mean, target_sd, target_r = _target_arrays(targets)
    current = (knobs or ModelKnobs.initial(targets)).copy()

    rounds = 0
    errors = (np.inf, np.inf, np.inf)
    for rounds in range(1, MAX_ROUNDS + 1):
        obs = model.observed(current)

        # 1. SDs: the overall SD scales with the student-share; update
        #    alpha via the variance decomposition, clamped to [0, 0.98].
        #    observed_var ~= base_var + (s*alpha)^2 where base_var is the
        #    alpha-independent floor; solve for the new alpha directly.
        s = model.latent_scale
        obs_var = obs["overall_sd"] ** 2
        base_var = obs_var - (s * current.alpha) ** 2
        want = _target_var(target_sd) - base_var
        current.alpha = np.sqrt(np.clip(want / (s * s), 0.0, 0.98**2))

        # 2. Correlations: damped secant (discretisation attenuates r by a
        #    roughly constant factor, so the ratio update converges).  When
        #    a residual correlation saturates at its ceiling and the
        #    observed r is still short, route the remaining correlation
        #    through the shared student factor by raising rho_p.
        obs2 = model.observed(current)
        r_err = obs2["pearson_r"] - target_r
        current.c_q = np.clip(current.c_q - 0.9 * r_err, -0.995, 0.995)
        saturated_short = (current.c_q >= 0.995) & (r_err < -R_TOL / 2.0)
        if np.any(saturated_short):
            deficit = float(-r_err[saturated_short].max())
            current.rho_p = min(0.99, current.rho_p + 0.5 * deficit)

        # 3. Means: inner secant loop on mu alone, last so the final check
        #    sees means solved under the round's alpha/c_q.  The
        #    discretised mean tracks the latent mean with slope ~1
        #    mid-scale but flattens near the Likert ceiling, so estimate
        #    the local slope from the previous inner step.
        prev_mu: np.ndarray | None = None
        prev_mean: np.ndarray | None = None
        for _ in range(8):
            obs3 = model.observed(current)
            mean_err = obs3["skill_mean"] - target_mean
            if float(np.abs(mean_err).max()) <= MEAN_TOL / 2.0:
                break
            slope = np.ones_like(mean_err)
            if prev_mu is not None:
                d_mu = current.mu - prev_mu
                d_obs = obs3["skill_mean"] - prev_mean
                with np.errstate(divide="ignore", invalid="ignore"):
                    est = np.where(np.abs(d_mu) > 1e-9, d_obs / d_mu, 1.0)
                slope = np.clip(np.nan_to_num(est, nan=1.0), 0.25, 1.5)
            prev_mu = current.mu.copy()
            prev_mean = obs3["skill_mean"].copy()
            current.mu = current.mu - mean_err / slope

        final = model.observed(current)
        errors = (
            float(np.abs(final["skill_mean"] - target_mean).max()),
            float(np.abs(final["overall_sd"] - target_sd).max()),
            float(np.abs(final["pearson_r"] - target_r).max()),
        )
        if errors[0] <= MEAN_TOL and errors[1] <= SD_TOL and errors[2] <= R_TOL:
            break

    return CalibrationResult(
        knobs=current,
        rounds=rounds,
        max_mean_error=errors[0],
        max_sd_error=errors[1],
        max_r_error=errors[2],
        converged=errors[0] <= MEAN_TOL and errors[1] <= SD_TOL and errors[2] <= R_TOL,
    )
