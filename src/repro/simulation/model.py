"""Latent-trait Likert response model.

Per student *i*, skill *k*, category *c* (emphasis/growth) and wave *w*,
the model posits a latent trait

    theta[i,k,c,w] = mu[k,c,w] + s * (alpha[c,w] * p[i,c,w]
                                       + sqrt(1 - alpha^2) * q[i,k,c,w])

where ``p`` is a student-level factor shared across skills (it creates the
between-student variance that the wave-level SDs in Tables 2–3 measure)
and ``q`` is a skill-specific residual.  The emphasis/growth pairs are
coupled two ways: the student factors ``(p_E, p_G)`` share a global copula
correlation ``rho_p``, and the residual pairs ``(q_E, q_G)`` share a
per-skill, per-wave correlation ``c_q[k,w]`` — the knob that calibration
uses to hit Table 4's Pearson values.

Each of the skill's items is then an independent noisy read of the trait,

    item = clip(round(theta + sigma_item * e), 1, 5)

which is exactly a Gaussian-copula discretisation with thresholds at the
half-integers.  Skill scores / overall averages are computed downstream by
:mod:`repro.survey.scoring` from these raw integer items.

Waves are drawn independently (no cross-wave student correlation).  This
is a documented choice: the paper's reported t statistics are *not*
jointly consistent with its reported wave means/SDs under any
non-negative cross-wave correlation (see EXPERIMENTS.md), so we match the
means/SDs exactly and report the recomputed t.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "SimulationTargets",
    "ModelKnobs",
    "ResponseModel",
    "CATEGORIES",
    "WAVES",
    "draw_response_blocks",
    "student_factors",
    "skill_residuals",
    "scores_from_blocks",
]

CATEGORIES: tuple[str, str] = ("class_emphasis", "personal_growth")
WAVES: tuple[str, str] = ("first_half", "second_half")

#: Latent skill-trait scale (before the student/residual split).  Fixed by
#: design; calibration moves the other knobs around it.  The value trades
#: off two constraints: the skill-residual variance floor ``s^2 / 7`` must
#: sit below the smallest published wave SD (0.1721), while ``s^2`` must
#: dominate the per-skill item-noise variance so the largest published
#: Pearson r (0.73) stays reachable after discretisation attenuation.
LATENT_SCALE = 0.38

#: SD of the per-item read noise around the trait (small, for the same
#: attenuation reason; rounding to the Likert grid adds ~1/12 on its own).
ITEM_NOISE = 0.22


@dataclass(frozen=True)
class SimulationTargets:
    """Published statistics the generator must reproduce.

    - ``skill_means[(skill, category, wave)]`` — Tables 5 and 6.
    - ``overall_sd[(category, wave)]`` — the SDs in Tables 2 and 3.
    - ``pearson_r[(skill, wave)]`` — Table 4 (emphasis↔growth).
    """

    skills: tuple[str, ...]
    n_students: int
    skill_means: Mapping[tuple[str, str, str], float]
    overall_sd: Mapping[tuple[str, str], float]
    pearson_r: Mapping[tuple[str, str], float]

    def __post_init__(self) -> None:
        for (skill, cat, wave), m in self.skill_means.items():
            if skill not in self.skills or cat not in CATEGORIES or wave not in WAVES:
                raise ValueError(f"bad skill-mean key {(skill, cat, wave)}")
            if not 1.0 <= m <= 5.0:
                raise ValueError(f"skill mean {m} outside Likert range")
        expected = {(s, c, w) for s in self.skills for c in CATEGORIES for w in WAVES}
        if set(self.skill_means) != expected:
            raise ValueError("skill_means must cover every (skill, category, wave)")
        if set(self.overall_sd) != {(c, w) for c in CATEGORIES for w in WAVES}:
            raise ValueError("overall_sd must cover every (category, wave)")
        if set(self.pearson_r) != {(s, w) for s in self.skills for w in WAVES}:
            raise ValueError("pearson_r must cover every (skill, wave)")


@dataclass
class ModelKnobs:
    """Free parameters the calibration adjusts.

    Arrays are indexed ``[skill, category, wave]`` / ``[category, wave]`` /
    ``[skill, wave]`` in the order of ``SimulationTargets.skills``,
    :data:`CATEGORIES` and :data:`WAVES`.
    """

    mu: np.ndarray          # (K, 2, 2) latent trait means
    alpha: np.ndarray       # (2, 2)    student-factor share, in [0, 1)
    c_q: np.ndarray         # (K, 2)    residual emphasis<->growth correlation
    rho_p: float = 0.90     # student-factor emphasis<->growth correlation

    def copy(self) -> "ModelKnobs":
        return ModelKnobs(
            mu=self.mu.copy(), alpha=self.alpha.copy(), c_q=self.c_q.copy(),
            rho_p=self.rho_p,
        )

    @classmethod
    def initial(cls, targets: SimulationTargets) -> "ModelKnobs":
        """Naive starting point: latent mean = target mean, mid-range shares."""
        k = len(targets.skills)
        mu = np.empty((k, 2, 2))
        for ki, skill in enumerate(targets.skills):
            for ci, cat in enumerate(CATEGORIES):
                for wi, wave in enumerate(WAVES):
                    mu[ki, ci, wi] = targets.skill_means[(skill, cat, wave)]
        alpha = np.full((2, 2), 0.4)
        c_q = np.empty((k, 2))
        for ki, skill in enumerate(targets.skills):
            for wi, wave in enumerate(WAVES):
                c_q[ki, wi] = min(0.95, targets.pearson_r[(skill, wave)] * 1.2)
        return cls(mu=mu, alpha=alpha, c_q=c_q)


@dataclass(frozen=True)
class RawScores:
    """Generated item scores: int array (N, K, 2 categories, 2 waves, items)."""

    skills: tuple[str, ...]
    items_per_skill: int
    scores: np.ndarray

    def skill_score(self) -> np.ndarray:
        """Per-student skill scores (N, K, 2, 2): mean over items."""
        return self.scores.mean(axis=-1)

    def composite_score(self) -> np.ndarray:
        """Per-student Beyerlein composite scores (N, K, 2, 2).

        Item 0 of every skill is the definition item; the composite is
        ``(definition + mean(components)) / 2`` — the quantity Tables 5
        and 6 rank, and therefore the quantity calibration targets.
        """
        definition = self.scores[..., 0]
        components = self.scores[..., 1:].mean(axis=-1)
        return (definition + components) / 2.0

    def overall(self) -> np.ndarray:
        """Per-student overall average (N, 2, 2): mean over skills & items."""
        return self.scores.mean(axis=(1, 4))


def draw_response_blocks(
    rng: np.random.Generator, n: int, k: int, items_per_skill: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The model's standard-normal building blocks ``(p_raw, q_raw, e)``.

    This is the model's *canonical draw order* — student factors, then
    skill residuals, then item noise — shared by :class:`ResponseModel`
    and the mega-cohort shard generator, so a single shard drawn from
    the same stream reproduces the monolithic model's draws bit for
    bit.
    """
    p_raw = rng.standard_normal((n, 2, 2, 2))
    q_raw = rng.standard_normal((n, k, 2, 2, 2))
    e = rng.standard_normal((n, k, 2, 2, items_per_skill))
    return p_raw, q_raw, e


def student_factors(p_raw: np.ndarray, rho_p: float) -> np.ndarray:
    """Correlated student factors (N, 2 categories, 2 waves)."""
    a = p_raw[:, 0]                  # (N, 2mix, W) base
    b = p_raw[:, 1]
    out = np.empty((p_raw.shape[0], 2, 2))
    out[:, 0, :] = a[:, 0, :]
    out[:, 1, :] = rho_p * a[:, 0, :] + np.sqrt(max(0.0, 1 - rho_p**2)) * b[:, 0, :]
    return out


def skill_residuals(q_raw: np.ndarray, c_q: np.ndarray) -> np.ndarray:
    """Correlated skill residuals (N, K, 2 categories, 2 waves)."""
    a = q_raw[:, :, 0]               # (N, K, mix, W)
    b = q_raw[:, :, 1]
    out = np.empty((q_raw.shape[0], q_raw.shape[1], 2, 2))
    out[:, :, 0, :] = a[:, :, 0, :]
    c = c_q[None, :, :]              # (1, K, W)
    out[:, :, 1, :] = c * a[:, :, 0, :] + np.sqrt(np.maximum(0.0, 1 - c**2)) * b[:, :, 0, :]
    return out


def scores_from_blocks(
    knobs: ModelKnobs,
    p_raw: np.ndarray,
    q_raw: np.ndarray,
    e: np.ndarray,
    latent_scale: float = LATENT_SCALE,
    item_noise: float = ITEM_NOISE,
) -> np.ndarray:
    """Raw item scores (N, K, 2, 2, items) from standard-normal blocks.

    The pure generation map behind :meth:`ResponseModel.generate`,
    shared with the mega-cohort shard path; the floating-point
    operation order is the identity anchor, so change it only with the
    N=124 bit-identity test in hand.
    """
    k = q_raw.shape[1]
    if knobs.mu.shape != (k, 2, 2):
        raise ValueError(f"mu has shape {knobs.mu.shape}, expected {(k, 2, 2)}")
    if np.any((knobs.alpha < 0) | (knobs.alpha >= 1)):
        raise ValueError("alpha must be in [0, 1)")
    if np.any(np.abs(knobs.c_q) > 1):
        raise ValueError("c_q must be in [-1, 1]")
    p = student_factors(p_raw, knobs.rho_p)         # (N, C, W)
    q = skill_residuals(q_raw, knobs.c_q)           # (N, K, C, W)
    alpha = knobs.alpha[None, None, :, :]           # (1, 1, C, W)
    theta = knobs.mu[None, :, :, :] + latent_scale * (
        alpha * p[:, None, :, :] + np.sqrt(1 - alpha**2) * q
    )                                               # (N, K, C, W)
    latent_items = theta[..., None] + item_noise * e
    return np.clip(np.rint(latent_items), 1, 5).astype(np.int64)


class ResponseModel:
    """The generator.  Standard-normal draws are made once per instance so
    that regenerating with different knobs is a smooth deterministic map —
    which is what lets calibration use simple monotone root finding."""

    def __init__(
        self,
        skills: Sequence[str],
        n_students: int,
        items_per_skill: int = 5,
        seed: int = 2018,
        latent_scale: float = LATENT_SCALE,
        item_noise: float = ITEM_NOISE,
    ) -> None:
        if n_students < 2:
            raise ValueError("need at least 2 students")
        if items_per_skill < 1:
            raise ValueError("need at least 1 item per skill")
        self.skills = tuple(skills)
        self.n_students = n_students
        self.items_per_skill = items_per_skill
        self.latent_scale = latent_scale
        self.item_noise = item_noise
        rng = np.random.default_rng(seed)
        # Independent standard-normal building blocks, drawn once, in the
        # canonical order shared with the mega-cohort shard generator.
        self._p_raw, self._q_raw, self._e = draw_response_blocks(
            rng, n_students, len(self.skills), items_per_skill
        )

    def _student_factors(self, rho_p: float) -> np.ndarray:
        """Correlated student factors (N, 2 categories, 2 waves)."""
        return student_factors(self._p_raw, rho_p)

    def _residuals(self, c_q: np.ndarray) -> np.ndarray:
        """Correlated skill residuals (N, K, 2 categories, 2 waves)."""
        return skill_residuals(self._q_raw, c_q)

    def generate(self, knobs: ModelKnobs) -> RawScores:
        """Generate the full raw item-score array for these knobs."""
        scores = scores_from_blocks(
            knobs,
            self._p_raw,
            self._q_raw,
            self._e,
            latent_scale=self.latent_scale,
            item_noise=self.item_noise,
        )
        return RawScores(
            skills=self.skills, items_per_skill=self.items_per_skill, scores=scores
        )

    # --- observed statistics used by calibration -------------------------

    def observed(self, knobs: ModelKnobs) -> dict[str, np.ndarray]:
        """Observed statistics for the current knobs.

        Returns ``skill_mean`` (K, C, W), ``overall_sd`` (C, W) and
        ``pearson_r`` (K, W) computed from a fresh generation with the
        fixed underlying draws.
        """
        raw = self.generate(knobs)
        skill = raw.skill_score()                       # (N, K, C, W)
        overall = raw.overall()                         # (N, C, W)
        # Mean targets are the published Tables 5/6 values, which are
        # cohort-mean *composite* scores.
        skill_mean = raw.composite_score().mean(axis=0)  # (K, C, W)
        overall_sd = overall.std(axis=0, ddof=1)        # (C, W)
        k = len(self.skills)
        r = np.empty((k, 2))
        for ki in range(k):
            for wi in range(2):
                e = skill[:, ki, 0, wi]
                g = skill[:, ki, 1, wi]
                r[ki, wi] = np.corrcoef(e, g)[0, 1]
        return {"skill_mean": skill_mean, "overall_sd": overall_sd, "pearson_r": r}
