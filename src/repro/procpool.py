"""A deterministic process pool: the GIL escape hatch.

The threaded :class:`~repro.sched.executor.WorkStealingExecutor` gives
wall-clock concurrency for I/O and NumPy-released sections, but
pure-Python task bodies still serialise behind the GIL — the one paper
claim (real multicore speedup) a thread pool cannot demonstrate.  This
module supplies the execution vehicle for ``mode="mp"``: one child
process per scheduler worker, connected by a ``multiprocessing.Pipe``
pair, executing :class:`~repro.sched.core.Call` payloads.

Design rules:

- **Scheduling stays in the parent.**  Children never pick work; the
  executor decides (worker, task) exactly as in threaded mode and then
  ships the body to *that* worker's child.  The canonical event log is
  therefore byte-identical between modes — mp changes where a task body
  runs, never which worker runs it or when.
- **Shared memory for arrays, pickle for the rest.**  A NumPy array
  argument of at least :data:`SHM_MIN_BYTES` is copied once into a
  ``multiprocessing.shared_memory`` segment and shipped as a name +
  shape + dtype triple; the child maps it zero-copy.  Smaller or
  non-array payloads ride the pipe as pickles — the copy is cheaper
  than the segment bookkeeping.  The parent owns every segment and
  unlinks it as soon as the reply arrives.
- **Fail loudly.**  A child that dies mid-task surfaces as
  :class:`ProcPoolError` in the parent; exceptions raised by the task
  body are pickled back and re-raised so retry/fault handling in the
  executor behaves exactly as threaded mode.

Pools are created before any drain thread starts, so the default
``fork`` start method is safe; ``REPRO_MP_START`` selects ``spawn`` or
``forkserver`` where fork is unavailable or unwanted.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Sequence

from repro.config import resolve_mp_start_method, resolve_mp_workers
from repro.sched.core import Call

__all__ = [
    "SHM_MIN_BYTES",
    "ProcPoolError",
    "ProcessPool",
    "export_call",
    "release_segments",
]

#: Arrays below this size ride the pipe as pickles; at or above it they
#: go through a shared-memory segment (one copy in the parent, zero in
#: the child).  64 KiB is where segment setup stops dominating.
SHM_MIN_BYTES = 64 * 1024


class ProcPoolError(RuntimeError):
    """A pool worker died, timed out, or the transport failed."""


@dataclass(frozen=True)
class _ShmRef:
    """A shared-memory-resident ndarray: name + shape + dtype, no bytes."""

    name: str
    shape: tuple[int, ...]
    dtype: str


def _export_value(value: Any, segments: list[shared_memory.SharedMemory]) -> Any:
    """Replace a large ndarray (or a list/tuple of them) with shm refs."""
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a baked-in dep
        return value
    if isinstance(value, np.ndarray) and value.nbytes >= SHM_MIN_BYTES:
        array = np.ascontiguousarray(value)
        segment = shared_memory.SharedMemory(create=True, size=array.nbytes)
        segments.append(segment)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        return _ShmRef(segment.name, array.shape, array.dtype.str)
    if isinstance(value, (list, tuple)):
        out = [_export_value(item, segments) for item in value]
        return type(value)(out) if isinstance(value, tuple) else out
    return value


def export_call(call: Call) -> tuple[Call, list[shared_memory.SharedMemory]]:
    """Rewrite a :class:`Call` so its big arrays travel via shared memory.

    Returns the rewritten call and the parent-owned segments backing it;
    the caller must :func:`release_segments` once the reply is in.
    """
    segments: list[shared_memory.SharedMemory] = []
    args = tuple(_export_value(arg, segments) for arg in call.args)
    kwargs = {key: _export_value(val, segments)
              for key, val in call.kwargs.items()}
    if not segments:
        return call, segments
    return Call(call.fn, *args, **kwargs), segments


def release_segments(segments: Sequence[shared_memory.SharedMemory]) -> None:
    """Close and unlink parent-owned segments (idempotent, best-effort)."""
    for segment in segments:
        try:
            segment.close()
            segment.unlink()
        except (FileNotFoundError, OSError):  # already reaped
            pass


def _resolve_value(value: Any, opened: list[shared_memory.SharedMemory]) -> Any:
    """Child side: map shm refs back into (copied) ndarrays."""
    if isinstance(value, _ShmRef):
        import numpy as np

        segment = shared_memory.SharedMemory(name=value.name)
        opened.append(segment)
        view = np.ndarray(value.shape, dtype=np.dtype(value.dtype),
                          buffer=segment.buf)
        # Copy out: the parent unlinks the segment right after the reply,
        # so the task result must never alias the mapping.
        return view.copy()
    if isinstance(value, (list, tuple)):
        out = [_resolve_value(item, opened) for item in value]
        return type(value)(out) if isinstance(value, tuple) else out
    return value


def _worker_main(conn, worker_index: int) -> None:
    """Pool child: receive ``(seq, Call)``, reply ``(seq, ok, payload)``.

    A ``None`` message is the shutdown sentinel.  Forked children may
    inherit an active telemetry or fault-injection session and the
    parent's kernel-backend selection; all three are reset so a shipped
    task body runs plain (hooks fire parent-side, and a child resolving
    backend ``mp`` must not recurse into a nested pool).
    """
    try:
        from repro import faults, telemetry

        if telemetry.is_enabled():
            telemetry.disable()
        if faults.is_enabled():
            faults.disable()
        from repro import kernels

        if kernels.backend() == "mp":
            kernels.set_backend("numpy")
    except Exception:  # pragma: no cover - never fail startup on cleanup
        pass
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        seq, call = message
        opened: list[shared_memory.SharedMemory] = []
        try:
            args = tuple(_resolve_value(arg, opened) for arg in call.args)
            kwargs = {key: _resolve_value(val, opened)
                      for key, val in call.kwargs.items()}
            value = call.fn(*args, **kwargs)
            reply = (seq, True, value)
        except BaseException as exc:  # noqa: BLE001 - shipped to parent
            reply = (seq, False, exc)
        finally:
            for segment in opened:
                segment.close()
        try:
            conn.send(reply)
        except Exception:
            try:  # the value (or exception) itself failed to pickle
                conn.send((seq, False,
                           ProcPoolError(f"unpicklable reply: {reply[2]!r}")))
            except (BrokenPipeError, OSError):
                break
    conn.close()


class _PoolWorker:
    __slots__ = ("process", "conn", "lock")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.lock = threading.Lock()


class ProcessPool:
    """A fixed set of worker processes addressed by worker index.

    The executor maps scheduler worker ``w`` to pool child ``w % size``
    — a fixed assignment, so the task→process mapping is as deterministic
    as the task→worker mapping itself.
    """

    def __init__(self, n_workers: int | None = None, *,
                 start_method: str | None = None,
                 timeout_s: float = 60.0) -> None:
        self.n_workers = resolve_mp_workers(n_workers)
        self.start_method = resolve_mp_start_method(start_method)
        self.timeout_s = float(timeout_s)
        self._closed = False
        context = multiprocessing.get_context(self.start_method)
        self._workers: list[_PoolWorker] = []
        for index in range(self.n_workers):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main, args=(child_conn, index),
                name=f"repro-pool-{index}", daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers.append(_PoolWorker(process, parent_conn))

    # -- execution -----------------------------------------------------------

    def run(self, worker: int, call: Call,
            timeout: float | None = None) -> Any:
        """Execute one :class:`Call` on worker ``worker % size``, blocking."""
        if self._closed:
            raise ProcPoolError("pool is closed")
        slot = self._workers[worker % self.n_workers]
        shipped, segments = export_call(call)
        budget = self.timeout_s if timeout is None else float(timeout)
        try:
            with slot.lock:
                try:
                    slot.conn.send((0, shipped))
                    if not slot.conn.poll(budget):
                        raise ProcPoolError(
                            f"pool worker {worker % self.n_workers} timed out "
                            f"after {budget:.1f}s on {call!r}"
                        )
                    _seq, ok, payload = slot.conn.recv()
                except (EOFError, BrokenPipeError, OSError) as exc:
                    raise ProcPoolError(
                        f"pool worker {worker % self.n_workers} died "
                        f"running {call!r}"
                    ) from exc
        finally:
            release_segments(segments)
        if ok:
            return payload
        if isinstance(payload, BaseException):
            raise payload
        raise ProcPoolError(str(payload))

    def scatter(self, calls: Sequence[Call],
                timeout: float | None = None) -> list[Any]:
        """Run ``calls[i]`` on worker ``i % size`` concurrently; ordered results.

        All sends go out before any receive, so every child computes in
        parallel; per-worker pipes are FIFO, so replies pair up by
        position.  The first failure is re-raised after all replies (and
        segments) are accounted for.
        """
        if self._closed:
            raise ProcPoolError("pool is closed")
        budget = self.timeout_s if timeout is None else float(timeout)
        per_worker: list[list[int]] = [[] for _ in self._workers]
        for i in range(len(calls)):
            per_worker[i % self.n_workers].append(i)
        all_segments: list[shared_memory.SharedMemory] = []
        results: list[Any] = [None] * len(calls)
        failure: BaseException | None = None
        for slot in self._workers:
            slot.lock.acquire()
        try:
            for w, slot in enumerate(self._workers):
                for i in per_worker[w]:
                    shipped, segments = export_call(calls[i])
                    all_segments.extend(segments)
                    slot.conn.send((i, shipped))
            for w, slot in enumerate(self._workers):
                for i in per_worker[w]:
                    if not slot.conn.poll(budget):
                        raise ProcPoolError(
                            f"pool worker {w} timed out after {budget:.1f}s"
                        )
                    seq, ok, payload = slot.conn.recv()
                    if ok:
                        results[seq] = payload
                    elif failure is None:
                        failure = (payload if isinstance(payload, BaseException)
                                   else ProcPoolError(str(payload)))
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise ProcPoolError("pool worker died mid-scatter") from exc
        finally:
            for slot in self._workers:
                slot.lock.release()
            release_segments(all_segments)
        if failure is not None:
            raise failure
        return results

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut the children down (idempotent); stragglers are terminated."""
        if self._closed:
            return
        self._closed = True
        for slot in self._workers:
            with slot.lock:
                try:
                    slot.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
                try:
                    slot.conn.close()
                except OSError:
                    pass
        for slot in self._workers:
            slot.process.join(timeout=5.0)
            if slot.process.is_alive():  # pragma: no cover - hung child
                slot.process.terminate()
                slot.process.join(timeout=1.0)

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass
