"""The demonstrations behind ``python -m repro sched``.

Each workload runs one runtime's real work through a fresh
:class:`~repro.sched.executor.WorkStealingExecutor` and reports in a
**fully deterministic** format: the result lines, the scheduler
statistics, the cache counters, and the canonical event log.  Stdout is
a pure function of (workload, workers, seed) — byte-identical across
processes and ``PYTHONHASHSEED`` values — which is what lets CI diff two
runs and what makes a cached replay verifiable.

With a :class:`~repro.sched.cache.ResultCache` the whole report payload
is content-addressed under ``fingerprint("sched", workload, workers,
seed)``: a warm run returns the stored payload (identical output and
event log) without executing, and the ``cache:`` line shows the hit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import workloads as registry
from repro.sched.cache import ResultCache
from repro.sched.executor import WorkStealingExecutor

__all__ = ["SchedReport", "run_sched_workload", "sched_workload_names"]

# A small fixed corpus for the MapReduce word count (same flavour as the
# chaos corpus: enough repeated words for a non-trivial reduce phase).
_DOCUMENTS = [
    "the fox and the hound raced through the autumn woods",
    "parallel programs share work and the work shares state",
    "the scheduler steals work when a worker runs dry",
    "count the words count the pairs count the reductions",
    "a seed replays the schedule and the schedule replays the run",
    "the hound slept while the fox counted words in the woods",
]


def _wl_mapreduce(executor: WorkStealingExecutor, workers: int,
                  seed: int) -> tuple[str, list[str]]:
    """Word count with both phases dispatched through the scheduler."""
    from repro.mapreduce.engine import MapReduceEngine
    from repro.mapreduce.jobs import word_count_job

    spec = word_count_job()
    records = [(i, doc) for i, doc in enumerate(_DOCUMENTS)]
    engine = MapReduceEngine(n_workers=workers, scheduler=executor)
    result = engine.run(spec, records)
    lines = [f"{word}={count}" for word, count in result.output]
    summary = (
        f"mapreduce wordcount: {len(records)} documents -> "
        f"{len(result.output)} distinct words"
    )
    return summary, lines


def _wl_openmp(executor: WorkStealingExecutor, workers: int,
               seed: int) -> tuple[str, list[str]]:
    """A recursive fib task tree on :class:`repro.openmp.tasks.TaskGroup`."""
    from repro.openmp.runtime import OpenMP
    from repro.openmp.tasks import TaskGroup

    group = TaskGroup(OpenMP(workers), scheduler=executor)

    def fib(n: int) -> int:
        if n < 2:
            return n
        child = group.submit(fib, n - 1)
        other = fib(n - 2)
        return child.result() + other

    n = 14
    value = group.run(fib, n)
    return (
        f"openmp task tree: fib({n}) via fork-join tasks",
        [f"fib({n})={value}"],
    )


def _wl_drugdesign(executor: WorkStealingExecutor, workers: int,
                   seed: int) -> tuple[str, list[str]]:
    """The Assignment-5 scoring sweep, one scheduler task per ligand."""
    from repro.drugdesign.ligands import generate_ligands, generate_protein
    from repro.drugdesign.solvers import solve_sched

    ligands = generate_ligands(n_ligands=24, max_ligand=6, seed=seed)
    protein = generate_protein(length=48, seed=seed + 1)
    result = solve_sched(ligands, protein, executor)
    lines = [
        f"max_score={result.max_score}",
        "best=" + ",".join(result.best_ligands),
        f"total_cells={result.total_cells}",
        "per_worker_cells=" + ",".join(str(c) for c in result.per_thread_cells),
    ]
    summary = f"drugdesign sweep: {len(ligands)} ligands scored"
    return summary, lines


for _name, _fn in (
    ("mapreduce", _wl_mapreduce),
    ("openmp", _wl_openmp),
    ("drugdesign", _wl_drugdesign),
):
    registry.register(_name, sched=_fn)


def sched_workload_names() -> list[str]:
    return registry.names("sched")


@dataclass
class SchedReport:
    """One scheduler demonstration, rendered deterministically."""

    workload: str
    workers: int
    seed: int
    summary: str
    output_lines: tuple[str, ...]
    stats: dict = field(default_factory=dict)
    log_lines: tuple[str, ...] = ()
    cache_hits: int = 0
    cache_misses: int = 0

    def render(self) -> str:
        stat_order = [
            "submitted", "executed", "failed", "cancelled", "retries",
            "rejected", "local_pops", "queue_takes", "steals", "steal_rate",
            "backups_launched", "backups_won", "backup_time_saved_s",
            "steps", "high_water",
        ]
        stats_line = " ".join(
            f"{k}={self.stats[k]:.3f}" if isinstance(self.stats.get(k), float)
            else f"{k}={self.stats.get(k, 0)}"
            for k in stat_order
        )
        lines = [
            f"sched workload={self.workload} workers={self.workers} "
            f"seed={self.seed}",
            self.summary,
            *self.output_lines,
            f"stats: {stats_line}",
            f"cache: hits={self.cache_hits} misses={self.cache_misses}",
            f"-- event log ({len(self.log_lines)} events) --",
            *self.log_lines,
        ]
        return "\n".join(lines)


def run_sched_workload(
    name: str,
    workers: int = 4,
    seed: int = 7,
    cache: ResultCache | None = None,
    mode: str = "threaded",
    speculate: bool = False,
    spec_k: float = 2.0,
) -> SchedReport:
    """Run one workload through a fresh deterministic executor.

    Raises ``KeyError`` for an unknown workload name.  With ``cache``,
    the entire report payload (output, stats, event log) is memoised
    under the content address of (workload, workers, seed), so a warm
    run replays identical output without executing.

    ``mode`` picks the execution vehicle (``"threaded"`` or ``"mp"``);
    the scheduling decisions — and therefore the rendered report — are
    byte-identical either way, which is exactly what lets CI diff the
    two.  The threaded cache key is unchanged from older releases;
    other modes append the mode name so a warm threaded cache cannot
    masquerade as an mp run (the stats payloads differ).

    ``speculate`` installs a straggler policy
    (:class:`~repro.sched.spec.SpecPolicy` with ``k=spec_k``) on the
    executor.  Because the runner's executor is the deterministic
    stepping mode, the canonical winner rule applies: no task is ever
    in flight at an idle probe, zero backups launch, and the rendered
    report stays byte-identical to a non-speculative run — the identity
    CI diffs.  The flag exists precisely to demonstrate (and pin) that
    invariant from the command line.
    """
    entry = registry.get(name)
    if entry.sched is None:
        raise KeyError(name)
    name = entry.name
    fn = entry.sched

    def compute() -> dict:
        executor = WorkStealingExecutor(n_workers=workers, seed=seed,
                                        mode=mode)
        if speculate:
            from repro.sched.spec import SpecPolicy

            executor.speculate(SpecPolicy(k=spec_k))
        try:
            summary, output_lines = fn(executor, workers, seed)
            return {
                "summary": summary,
                "output": tuple(output_lines),
                "stats": executor.stats().as_dict(),
                "log": tuple(executor.log_lines()),
            }
        finally:
            executor.close()        # releases the mode="mp" process pool

    cache_key = ("sched", name, workers, seed)
    if mode != "threaded":
        cache_key = cache_key + (mode,)
    if cache is not None:
        payload, _hit = cache.get_or_compute(cache_key, compute)
        hits, misses = cache.hits, cache.misses
    else:
        payload = compute()
        hits = misses = 0

    return SchedReport(
        workload=name,
        workers=workers,
        seed=seed,
        summary=payload["summary"],
        output_lines=payload["output"],
        stats=payload["stats"],
        log_lines=payload["log"],
        cache_hits=hits,
        cache_misses=misses,
    )
