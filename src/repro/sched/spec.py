"""Scheduler-level speculative execution (backup tasks for stragglers).

The MapReduce paper's answer to stragglers — §3.6's *backup tasks* — is
taught by ``repro.mapreduce.stragglers`` as a course module.  This module
moves the idiom into the dispatch substrate itself so every workload the
:class:`~repro.sched.executor.WorkStealingExecutor` runs (pipeline
drains, megacohort shards, served jobs) gets tail-latency protection
from the same policy:

- :class:`SpecPolicy` — *when* a running task counts as a straggler:
  its age on the injectable clock exceeds ``max(min_age_s, k * median)``
  of the runtimes of completed sibling tasks (a quantile threshold with
  a minimum-age floor, so cold starts never speculate on noise);
- :class:`SpecEngine` — the bookkeeping: per-family (primary + at most
  one backup copy) start stamps, first-completion-wins commit, loser
  accounting, and the sorted runtime samples the threshold reads.

**Invariant (see DESIGN.md): speculation may change latency, never
results or the stepping log.**  First-completion-wins resolves the
primary's handle with whichever copy finishes first — both copies
compute the same pure function, so results are byte-identical to a
non-speculative run.  In stepping mode the canonical winner rule is
structural: the stepping loop runs every acquired task to completion
within its round, so no task is ever *in flight* when an idle worker
could probe for stragglers — zero backups launch, the primary is always
the canonical winner, and the event log stays a pure function of
(workload, workers, seed).

Cooperative cancellation: a deliberately stalling task body (the fault
plans ``repro.faults`` injects, the slow maps the stragglers module
teaches) can observe :func:`obsolete_event` — an event the engine sets
the moment the other copy commits — and stop waiting early.  This is
the in-process analogue of the kill RPC real schedulers send; bodies
that ignore it are still correct, merely slower to release their worker.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.faults.clock import SYSTEM_CLOCK, Clock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.sched.core import Task

__all__ = [
    "SpecPolicy",
    "SpecEngine",
    "SpecFamily",
    "is_backup",
    "obsolete_event",
]

# Thread-local speculation context: set by the executor around a task
# body, read by cooperative bodies (and the stragglers module).
_context = threading.local()


def is_backup() -> bool:
    """True inside a task body running as a speculative backup copy."""
    return bool(getattr(_context, "backup", False))


def obsolete_event() -> Optional[threading.Event]:
    """The current task family's obsolete event, or None.

    Set the instant the *other* copy of this task commits: a stalling
    body that waits on it (through the injectable clock) releases its
    worker as soon as its result can no longer matter.
    """
    family = getattr(_context, "family", None)
    return family.obsolete if family is not None else None


def _set_context(family: "SpecFamily | None", backup: bool) -> None:
    _context.family = family
    _context.backup = backup


def _clear_context() -> None:
    _context.family = None
    _context.backup = False


@dataclass(frozen=True)
class SpecPolicy:
    """When does a running task count as a straggler?

    A task is eligible for a backup copy once its age exceeds
    ``max(min_age_s, k * median_completed_runtime)``; until
    ``min_completed`` siblings have completed there is no median worth
    trusting, so the threshold falls back to ``min_age_s`` alone when
    ``min_completed == 0`` and speculation stays off otherwise.
    """

    k: float = 2.0               # straggler = age > k x median sibling runtime
    min_age_s: float = 0.05      # absolute floor: never speculate younger
    min_completed: int = 3       # samples required before the median is live
    max_backups: int | None = None   # lifetime cap on launched backups

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be > 0, got {self.k}")
        if self.min_age_s < 0:
            raise ValueError(f"min_age_s must be >= 0, got {self.min_age_s}")
        if self.min_completed < 0:
            raise ValueError(
                f"min_completed must be >= 0, got {self.min_completed}"
            )
        if self.max_backups is not None and self.max_backups < 1:
            raise ValueError(     # "no backups at all" is spelled spec=None
                f"max_backups must be >= 1, got {self.max_backups}"
            )


class SpecFamily:
    """One task's copies: the primary, at most one backup, one commit."""

    __slots__ = (
        "primary", "backup", "primary_start", "backup_start",
        "committed", "winner", "obsolete", "commit_s",
        "primary_error", "backup_failed", "open_copies",
    )

    def __init__(self, primary: "Task") -> None:
        self.primary = primary
        self.backup: "Task | None" = None
        self.primary_start = 0.0
        self.backup_start = 0.0
        self.committed = False
        self.winner: str | None = None        # "primary" | "backup"
        self.obsolete = threading.Event()     # set when either copy commits
        self.commit_s = 0.0
        self.primary_error: BaseException | None = None
        self.backup_failed = False
        self.open_copies = 1                  # unresolved copies (primary)


class SpecEngine:
    """Straggler detection + first-completion-wins bookkeeping.

    Owned by the executor; every method except :meth:`now` is called
    with the executor lock held, so plain attributes suffice.  Clock
    reads go through the injectable :class:`~repro.faults.clock.Clock`
    — the fake/scaled clocks the tests and benchmarks use — never
    ``time.monotonic`` directly.
    """

    def __init__(
        self,
        policy: SpecPolicy,
        clock: Clock | None = None,
        listener: Callable[[str, "Task"], None] | None = None,
    ) -> None:
        self.policy = policy
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        #: Optional hook ``listener(event, primary_task)`` with event in
        #: {"launched", "won"} — how the stragglers module keeps its
        #: ``mr.backup.*`` telemetry names without reaching inside.
        self.listener = listener
        self._runtimes: list[float] = []      # sorted completed runtimes
        self._running: dict[int, SpecFamily] = {}   # primary id -> family
        self._families: dict[int, SpecFamily] = {}  # primary id -> family
        self.backups_launched = 0
        self.backups_won = 0
        self.backups_lost = 0       # losing copies observed after a commit
        self.backups_cancelled = 0  # pending backups cancelled by a win
        self.time_saved_s = 0.0     # commit-to-loser-completion, summed

    def now(self) -> float:
        return self.clock.monotonic()

    # -- threshold -----------------------------------------------------------

    def threshold(self) -> float | None:
        """Current straggler age threshold, or None (speculation off)."""
        n = len(self._runtimes)
        if n >= max(1, self.policy.min_completed):
            median = self._runtimes[n // 2]
            return max(self.policy.min_age_s, self.policy.k * median)
        if self.policy.min_completed == 0:
            return self.policy.min_age_s
        return None

    def _record_runtime(self, runtime: float) -> None:
        bisect.insort(self._runtimes, max(0.0, runtime))

    # -- lifecycle callbacks (executor lock held) ----------------------------

    def family_of(self, task: "Task") -> SpecFamily | None:
        primary_id = task.backup_of if task.backup_of is not None else task.task_id
        return self._families.get(primary_id)

    def task_started(self, task: "Task", now: float) -> SpecFamily:
        if task.backup_of is not None:
            family = self._families[task.backup_of]
            family.backup_start = now
            return family
        family = self._families.get(task.task_id)
        if family is None:
            family = SpecFamily(task)
            self._families[task.task_id] = family
        family.primary_start = now
        self._running[task.task_id] = family
        return family

    def task_retried(self, task: "Task") -> None:
        """A primary was re-queued after an injected fault: it is no
        longer running, so it cannot be picked as a straggler until its
        next attempt re-stamps it."""
        if task.backup_of is None:
            self._running.pop(task.task_id, None)

    def pick_straggler(self, now: float) -> "Task | None":
        """The most overdue running primary with no backup yet, if any."""
        limit = self.policy.max_backups
        if limit is not None and self.backups_launched >= limit:
            return None
        threshold = self.threshold()
        if threshold is None:
            return None
        best: "Task | None" = None
        best_age = threshold
        for family in self._running.values():
            if family.backup is not None or family.committed:
                continue
            age = now - family.primary_start
            if age > best_age or (
                age == best_age and best is not None
                and family.primary.task_id < best.task_id
            ):
                best = family.primary
                best_age = age
        return best

    def backup_launched(self, primary: "Task", clone: "Task") -> SpecFamily:
        family = self._families[primary.task_id]
        family.backup = clone
        family.open_copies += 1
        self.backups_launched += 1
        return family

    def backup_cancelled(self, family: SpecFamily) -> None:
        """A pending (never-started) backup was cancelled by a primary win."""
        self.backups_cancelled += 1
        self._resolve_copy(family)

    def loser_cancelled(self, family: SpecFamily) -> None:
        """A re-queued (pending) primary was cancelled by a backup win."""
        self._resolve_copy(family)

    def _resolve_copy(self, family: SpecFamily) -> None:
        family.open_copies -= 1
        if family.open_copies <= 0:
            self._families.pop(family.primary.task_id, None)

    def on_complete(
        self, task: "Task", now: float, failed: bool
    ) -> tuple[str, SpecFamily]:
        """Classify one copy's completion.  Returns (outcome, family):

        - ``"plain"``        — primary with no backup; behave as ever.
        - ``"commit"``       — this copy wins; finish the primary handle.
        - ``"commit-error"`` — both copies failed; finish with the
          primary's stored error.
        - ``"lose"``         — the other copy already committed; ignore.
        - ``"defer"``        — primary failed while its backup is still
          in flight; hold the error, the backup may yet win.
        - ``"backup-failed"``— the backup failed first; the primary
          remains the only live copy.
        """
        backup = task.backup_of is not None
        family = self._families.get(
            task.backup_of if backup else task.task_id
        )
        if family is None:  # pragma: no cover - engine installed mid-run
            family = SpecFamily(task)
            family.committed = False
        if not backup:
            self._running.pop(task.task_id, None)
        if family.committed:
            if backup:               # a losing *primary* is not a lost backup
                self.backups_lost += 1
            self.time_saved_s += max(0.0, now - family.commit_s)
            self._resolve_copy(family)
            return "lose", family
        if failed:
            if backup:
                family.backup_failed = True
                self._resolve_copy(family)
                if family.primary_error is not None:
                    # The primary already failed and deferred; its error
                    # is now the family's final word.
                    family.committed = True
                    family.winner = "primary"
                    family.commit_s = now
                    family.obsolete.set()
                    return "commit-error", family
                return "backup-failed", family
            if family.backup is not None and not family.backup_failed:
                self._resolve_copy(family)
                return "defer", family
            self._resolve_copy(family)
            return "plain", family
        family.committed = True
        family.winner = "backup" if backup else "primary"
        family.commit_s = now
        family.obsolete.set()
        start = family.backup_start if backup else family.primary_start
        self._record_runtime(now - start)
        if backup:
            self.backups_won += 1
        self._resolve_copy(family)
        if family.backup is None:
            return "plain", family
        return "commit", family

    # -- reporting -----------------------------------------------------------

    def counters(self) -> dict[str, Any]:
        return {
            "backups_launched": self.backups_launched,
            "backups_won": self.backups_won,
            "backups_lost": self.backups_lost,
            "backups_cancelled": self.backups_cancelled,
            "backup_time_saved_s": self.time_saved_s,
            "samples": len(self._runtimes),
        }
