"""Scheduler value objects: tasks, handles, events, steal order, deques.

Determinism is the organising principle, the same one :mod:`repro.faults`
uses: every quantity that influences scheduling is derived from explicit
coordinates (the scheduler seed, a worker index, a steal-attempt index,
a task's submission sequence) hashed through stable functions — never
from the salted builtin ``hash``, thread arrival order, or wall-clock
time.  In the executor's deterministic mode that makes the *entire*
event log a pure function of (workload, workers, seed), byte-identical
across processes and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import enum
import random
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "SchedError",
    "BackpressureError",
    "CancelledError",
    "TaskState",
    "Task",
    "Call",
    "TaskHandle",
    "SchedEvent",
    "StealOrder",
    "WorkerDeque",
]


class SchedError(RuntimeError):
    """Scheduler invariant violation or a task that exhausted retries."""


class BackpressureError(SchedError):
    """The bounded job queue rejected a submission (admission control)."""


class CancelledError(SchedError):
    """The task was cancelled before it ran; its result does not exist."""


class TaskState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass
class Task:
    """One schedulable unit of work (a zero-argument callable)."""

    task_id: int
    fn: Callable[[], Any]
    name: str = "task"
    priority: int = 0            # higher runs sooner off the admission queue
    state: TaskState = TaskState.PENDING
    taken: bool = False          # claimed by a worker / inline helper / cancel
    attempts: int = 0
    backup_of: int | None = None # speculative copy of this primary task_id


class Call:
    """A picklable zero-argument callable: ``fn(*args, **kwargs)`` deferred.

    Closures cannot cross a process boundary, so this is the task form
    the multiprocess executor backend ships to pool workers: ``fn`` must
    be a module-level function (picklable by reference) and the
    arguments plain data or NumPy arrays.  Under ``mode="threaded"`` a
    ``Call`` behaves exactly like the equivalent lambda; under
    ``mode="mp"`` it is the *only* task form that escapes the GIL —
    plain closures still run, but inline in the parent process.

    Scheduling never looks inside: shipping a ``Call`` changes where the
    task body executes, not which worker runs it or when.
    """

    __slots__ = ("fn", "args", "kwargs")

    def __init__(self, fn: Callable[..., Any], /, *args: Any,
                 **kwargs: Any) -> None:
        self.fn = fn
        self.args = args
        self.kwargs = kwargs

    def __call__(self) -> Any:
        return self.fn(*self.args, **self.kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"Call({name}, {len(self.args)} args)"


@dataclass
class TaskHandle:
    """The caller's view of a submitted task (a deterministic future)."""

    _executor: Any
    task: Task
    _done: threading.Event = field(default_factory=threading.Event)
    _value: Any = None
    _error: BaseException | None = None
    worker: int | None = None    # worker that completed the task

    @property
    def task_id(self) -> int:
        return self.task.task_id

    def done(self) -> bool:
        return self._done.is_set()

    def cancelled(self) -> bool:
        return self.task.state is TaskState.CANCELLED

    def cancel(self) -> bool:
        """Cancel if still pending; True when the task will never run."""
        return self._executor._cancel(self)

    def result(self, timeout: float | None = None) -> Any:
        """The task's value.

        If the task is still queued, the calling thread claims and runs it
        inline (targeted help — the idiom of
        :meth:`repro.openmp.tasks.TaskHandle.result`), so a parent task
        waiting on its child never deadlocks the scheduler.
        """
        if not self._done.is_set():
            self._executor._help(self, timeout)
        if not self._done.is_set():
            raise SchedError(
                f"task {self.task.task_id} ({self.task.name}) result not "
                f"available in time"
            )
        if self._error is not None:
            raise self._error
        return self._value


@dataclass(frozen=True)
class SchedEvent:
    """One scheduler decision, rendered into the canonical event log.

    ``step`` is the stepping round in deterministic mode and a per-worker
    monotonic counter in threaded mode; ``detail`` is a stable string
    (e.g. ``from=w2`` for a steal).  No timestamps — logs must replay.
    """

    step: int
    worker: int
    kind: str           # submit | pop | queue | steal | done | retry |
                        # fail | cancel | reject
    task_id: int
    detail: str = ""

    def canonical(self) -> str:
        suffix = f"|{self.detail}" if self.detail else ""
        return f"{self.step:05d}|w{self.worker}|{self.kind}|t{self.task_id}{suffix}"


class StealOrder:
    """Seeded victim permutations: which deques a thief probes, in order.

    ``victims(worker, attempt)`` is a pure function of (seed, worker,
    attempt): the RNG is seeded with a *string* (CPython hashes str/bytes
    seeds through SHA-512, stable across processes), never a tuple (tuple
    seeding goes through the salted builtin ``hash``).
    """

    def __init__(self, seed: int, n_workers: int) -> None:
        self.seed = seed
        self.n_workers = n_workers

    def victims(self, worker: int, attempt: int) -> tuple[int, ...]:
        others = [w for w in range(self.n_workers) if w != worker]
        random.Random(f"{self.seed}:{worker}:{attempt}").shuffle(others)
        return tuple(others)


class WorkerDeque:
    """One worker's double-ended task queue.

    The owner pushes and pops at the *bottom* (LIFO — fresh, cache-warm
    work first); thieves steal from the *top* (FIFO — the oldest task,
    the classic Cilk/ABP discipline that minimises owner/thief contention
    and steals the largest remaining subtree in divide-and-conquer
    workloads).  Entries whose task was already taken (cancelled, claimed
    by an inline helper) are skipped lazily.
    """

    def __init__(self, worker: int) -> None:
        self.worker = worker
        self._items: deque[Task] = deque()

    def __len__(self) -> int:
        return sum(1 for t in self._items if not t.taken)

    def push(self, task: Task) -> None:
        self._items.append(task)

    def pop_bottom(self) -> Task | None:
        """Owner side: newest untaken task, or None."""
        while self._items:
            task = self._items.pop()
            if not task.taken:
                return task
        return None

    def steal_top(self) -> Task | None:
        """Thief side: oldest untaken task, or None."""
        while self._items:
            task = self._items.popleft()
            if not task.taken:
                return task
        return None
