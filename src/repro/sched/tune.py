"""Dispatch-overhead-aware chunk sizing for scheduler sweeps.

Submitting one task per item pays the scheduler round-trip — deque
push, steal protocol, handle resolution, and under ``mode="mp"`` a
pickle hop to a child process — once per *item*.  Chunking pays it once
per *chunk* of k items, at the cost of coarser load balancing.  The
right k is not a constant: it is the ratio of the measured dispatch
overhead to the measured per-item compute time.

:func:`autotune_chunk` is the pure arithmetic (unit-testable, no
clocks); :func:`measure_dispatch_overhead_s` feeds it by timing no-op
tasks through a throwaway executor of the same mode — *never* through
the caller's executor, whose canonical event log and statistics must
stay a pure function of the real workload.
"""

from __future__ import annotations

import math
import threading
import time

__all__ = ["autotune_chunk", "measure_dispatch_overhead_s"]

#: Measured per-task overheads, keyed by (mode, n_workers).  Dispatch
#: cost is a property of the machine and the transport, not of any one
#: sweep, so one probe per process is enough.
_OVERHEAD_CACHE: dict[tuple[str, int], float] = {}
_CACHE_LOCK = threading.Lock()


def _noop() -> None:
    """Module-level so ``mode="mp"`` probes can pickle it."""


def autotune_chunk(
    dispatch_overhead_s: float,
    per_item_s: float,
    n_items: int,
    n_workers: int = 1,
    target_overhead: float = 0.1,
) -> int:
    """The smallest chunk size keeping dispatch under ``target_overhead``.

    With chunk k the sweep submits ``ceil(n/k)`` tasks, spending
    ``ceil(n/k) * d`` on dispatch against ``n * p`` of compute; the
    overhead fraction drops below ``t`` once ``k >= d / (t * p)``.  The
    smallest such k is returned — smaller chunks balance load better, so
    there is no reason to exceed the bound.  Two caps apply:

    - ``ceil(n / n_workers)`` — a chunk so large that some workers never
      receive one wastes whole cores, which costs more than any dispatch
      overhead (if even w chunks cannot amortise dispatch, the sweep is
      not worth parallelising at all);
    - ``n_items`` — one chunk is the coarsest possible split.

    Degenerate measurements (zero or negative timings) fall back to
    roughly four chunks per worker: enough slack for work stealing,
    bounded dispatch count.
    """
    if n_items <= 0:
        return 1
    if not 0.0 < target_overhead < 1.0:
        raise ValueError(
            f"target_overhead must be in (0, 1), got {target_overhead}"
        )
    workers = max(1, n_workers)
    if per_item_s <= 0.0 or dispatch_overhead_s <= 0.0:
        return max(1, math.ceil(n_items / (4 * workers)))
    chunk = max(1, math.ceil(dispatch_overhead_s
                             / (target_overhead * per_item_s)))
    cap = max(1, math.ceil(n_items / workers))
    return max(1, min(chunk, cap, n_items))


def measure_dispatch_overhead_s(
    mode: str = "threaded",
    n_workers: int = 2,
    n_probe: int = 64,
) -> float:
    """Measured per-task round-trip cost of the given executor mode.

    Times ``n_probe`` no-op tasks through a fresh throwaway executor;
    a warm-up batch runs first so thread spin-up (and for ``mode="mp"``
    the process-pool fork) stays out of the measurement — that cost is
    paid once per run, not once per task.  Results are cached per
    (mode, n_workers) for the life of the process.
    """
    key = (mode, n_workers)
    with _CACHE_LOCK:
        if key in _OVERHEAD_CACHE:
            return _OVERHEAD_CACHE[key]
    from repro.sched.core import Call
    from repro.sched.executor import WorkStealingExecutor

    executor = WorkStealingExecutor(n_workers=n_workers, mode=mode)
    try:
        executor.submit_batch([Call(_noop) for _ in range(n_workers)],
                              name="tune.warmup")
        executor.drain()
        start = time.perf_counter()
        executor.submit_batch([Call(_noop) for _ in range(n_probe)],
                              name="tune.probe")
        executor.drain()
        per_task = (time.perf_counter() - start) / n_probe
    finally:
        executor.close()
    with _CACHE_LOCK:
        _OVERHEAD_CACHE[key] = per_task
    return per_task
