"""``repro.sched`` — unified scheduling, queuing, and result caching.

PR 1 gave the repo eyes (:mod:`repro.telemetry`), PR 2 a hand on the
chaos dial (:mod:`repro.faults`); this package gives it **one execution
substrate**.  Each runtime used to spin up its own ad-hoc thread pool;
now MapReduce phases, OpenMP-style task groups, and drug-design scoring
sweeps can all dispatch through the same deterministic work-stealing
executor, behind the same admission queue, in front of the same result
cache.

Layers:

- :mod:`repro.sched.core` — tasks, handles, canonical scheduler events,
  the seeded :class:`StealOrder`, and the owner-LIFO/thief-FIFO
  :class:`WorkerDeque`;
- :mod:`repro.sched.queue` — :class:`JobQueue`: priority admission with
  batched submission, bounded backpressure, and cancellation;
- :mod:`repro.sched.executor` — :class:`WorkStealingExecutor`:
  deterministic stepping mode (event log byte-identical across
  processes and ``PYTHONHASHSEED`` values) or threaded mode (wall-clock
  concurrency), with retry of injected faults and an optional
  :class:`~repro.faults.policies.CircuitBreaker` on dispatch;
- :mod:`repro.sched.spec` — :class:`SpecPolicy` / :class:`SpecEngine`:
  scheduler-level speculative execution — idle workers launch backup
  copies of straggling tasks (age > k x median sibling runtime on the
  injectable clock), first completion wins, results and the stepping
  event log byte-identical to a non-speculative run;
- :mod:`repro.sched.cache` — :class:`ResultCache`: content-addressed
  memoisation (``fingerprint(workload, spec, seed)`` → stored result),
  in-memory plus an optional on-disk tier for cross-process warm runs;
- :mod:`repro.sched.workloads` — the demonstrations behind
  ``python -m repro sched``.

Usage::

    from repro import sched

    ex = sched.WorkStealingExecutor(n_workers=4, seed=7)
    results = ex.map([lambda i=i: i * i for i in range(100)])
    ex.stats().steal_rate          # how much balancing happened
    ex.log_lines()                 # canonical, replayable event log
"""

from __future__ import annotations

from repro.sched.cache import ResultCache, canonical_repr, fingerprint
from repro.sched.core import (
    BackpressureError,
    Call,
    CancelledError,
    SchedError,
    SchedEvent,
    StealOrder,
    Task,
    TaskHandle,
    TaskState,
    WorkerDeque,
)
from repro.sched.executor import (
    STEAL_PROBE_BUCKETS,
    SchedStats,
    WorkStealingExecutor,
)
from repro.sched.queue import JobQueue
from repro.sched.spec import SpecEngine, SpecPolicy, is_backup, obsolete_event

__all__ = [
    "SpecEngine",
    "SpecPolicy",
    "is_backup",
    "obsolete_event",
    "BackpressureError",
    "Call",
    "CancelledError",
    "SchedError",
    "SchedEvent",
    "SchedStats",
    "StealOrder",
    "Task",
    "TaskHandle",
    "TaskState",
    "WorkerDeque",
    "JobQueue",
    "WorkStealingExecutor",
    "STEAL_PROBE_BUCKETS",
    "ResultCache",
    "canonical_repr",
    "fingerprint",
]
