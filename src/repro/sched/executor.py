"""The work-stealing executor: one execution substrate for every runtime.

Structure (the classic shape — Cilk, TBB, ForkJoinPool, and the PDC
patternlets' master/worker generalisation):

- an **admission queue** (:class:`~repro.sched.queue.JobQueue`):
  priority-ordered, batch submission, bounded backpressure;
- **per-worker deques**: owners push/pop at the bottom (LIFO), thieves
  steal from the top (FIFO);
- a **seeded steal order** (:class:`~repro.sched.core.StealOrder`): which
  victim an idle worker probes is a pure function of (seed, worker,
  attempt), never of timing or ``hash`` salt.

Two execution modes share all of that machinery:

- ``deterministic=True`` (default) — a single-threaded *stepping* loop:
  each round polls workers in index order; a worker runs one task per
  round (own deque → admission queue → steal).  Scheduling becomes a
  pure function of (workload, workers, seed): the event log replays
  byte-identically across processes and ``PYTHONHASHSEED`` values — the
  property ``python -m repro sched`` demonstrates and the tests pin.
- ``deterministic=False`` — real worker threads for wall-clock
  concurrency (the mode ``benchmarks/bench_sched.py`` measures against
  the per-runtime thread pools).  Same deques, same seeded steal order;
  the log is rendered sorted because arrival order is genuinely racy.

Orthogonal to both scheduling modes is the **execution vehicle**
(``mode``): ``"threaded"`` runs task bodies in-process; ``"mp"`` ships
:class:`~repro.sched.core.Call` task bodies to a per-worker child
process (:class:`repro.procpool.ProcessPool`) so pure-Python work
escapes the GIL, with ``multiprocessing.shared_memory`` handoff for
large NumPy arguments.  Scheduling never changes: the executor decides
(worker, task) exactly as before and then ships the body to *that*
worker's child, so the canonical stepping-mode event log is
byte-identical between ``mode="threaded"`` and ``mode="mp"``.  Plain
closures (which cannot pickle) still run, inline in the parent.

Every dispatch is a :mod:`repro.faults` injection site (``sched.task``);
injected crashes/transients are retried up to ``max_attempts`` by
re-queueing on the executing worker's deque.  An optional
:class:`~repro.faults.policies.CircuitBreaker` guards dispatch: while
open, tasks are rejected without running (admission control under
persistent failure).  Every decision emits :mod:`repro.telemetry`
spans/metrics.
"""

from __future__ import annotations

import bisect
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.config import resolve_sched_mode, resolve_timeout_s
from repro.faults import hooks as faults
from repro.faults.injector import InjectedCrash, TransientFault
from repro.faults.policies import CircuitBreaker, CircuitOpenError
from repro.sched.core import (
    Call,
    CancelledError,
    SchedError,
    SchedEvent,
    StealOrder,
    Task,
    TaskHandle,
    TaskState,
    WorkerDeque,
)
from repro.sched.queue import JobQueue
from repro.sched.spec import SpecEngine, SpecPolicy, _clear_context, _set_context
from repro.telemetry import instrument as telemetry

__all__ = ["SchedStats", "WorkStealingExecutor", "STEAL_PROBE_BUCKETS"]

#: Default ceiling on one drain (same override rule as the runtimes).
DRAIN_TIMEOUT_S = 60.0

#: Bucket upper bounds for the per-worker steal-contention histogram:
#: how many victims a thief probed before a steal landed.  1 means the
#: first victim had work; higher buckets mean other thieves drained the
#: deques first — the collision signature the threaded mode exhibits.
STEAL_PROBE_BUCKETS: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0)


@dataclass(frozen=True)
class SchedStats:
    """Aggregate counters of one executor's lifetime."""

    n_workers: int
    seed: int
    deterministic: bool
    mode: str = "threaded"
    submitted: int = 0
    executed: int = 0
    failed: int = 0
    cancelled: int = 0
    retries: int = 0
    rejected: int = 0
    local_pops: int = 0
    queue_takes: int = 0
    steals: int = 0
    mp_shipped: int = 0   # Call bodies executed in a pool child
    mp_inline: int = 0    # closures a mode="mp" executor ran in-parent
    backups_launched: int = 0    # speculative copies of stragglers
    backups_won: int = 0         # backups that committed first
    backup_time_saved_s: float = 0.0   # commit-to-loser-completion, summed
    steps: int = 0
    high_water: int = 0

    @property
    def steal_rate(self) -> float:
        """Fraction of task acquisitions that crossed worker deques."""
        acquisitions = self.local_pops + self.queue_takes + self.steals
        return self.steals / acquisitions if acquisitions else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "n_workers": self.n_workers,
            "seed": self.seed,
            "deterministic": self.deterministic,
            "mode": self.mode,
            "mp_shipped": self.mp_shipped,
            "mp_inline": self.mp_inline,
            "submitted": self.submitted,
            "executed": self.executed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "retries": self.retries,
            "rejected": self.rejected,
            "local_pops": self.local_pops,
            "queue_takes": self.queue_takes,
            "steals": self.steals,
            "steal_rate": round(self.steal_rate, 6),
            "backups_launched": self.backups_launched,
            "backups_won": self.backups_won,
            "backup_time_saved_s": round(self.backup_time_saved_s, 6),
            "steps": self.steps,
            "high_water": self.high_water,
        }


class WorkStealingExecutor:
    """Deterministic (or threaded) work-stealing task executor."""

    def __init__(
        self,
        n_workers: int = 4,
        seed: int = 0,
        deterministic: bool = True,
        max_attempts: int = 3,
        max_pending: int | None = None,
        breaker: CircuitBreaker | None = None,
        mode: str = "threaded",
        spec: SpecPolicy | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.n_workers = n_workers
        self.seed = seed
        self.deterministic = deterministic
        self.max_attempts = max_attempts
        self.breaker = breaker
        self.spec_engine: SpecEngine | None = (
            SpecEngine(spec) if spec is not None else None
        )
        self.mode = resolve_sched_mode(mode)
        self._pool = None            # created lazily at first drain
        self.queue = JobQueue(max_pending=max_pending)
        self.steal_order = StealOrder(seed, n_workers)
        # Seeded placement of admitted tasks onto deques.  A string seed
        # (SHA-512 path in CPython) keeps the deal independent of
        # PYTHONHASHSEED; drawing per task makes placement — and hence
        # the whole steal schedule — a function of the scheduler seed.
        self._deal_rng = random.Random(f"{seed}:deal")
        self.events: list[SchedEvent] = []
        self._deques = [WorkerDeque(w) for w in range(n_workers)]
        self._lock = threading.RLock()
        self._local = threading.local()
        self._next_task_id = 0
        self._handles: dict[int, TaskHandle] = {}
        self._outstanding = 0        # submitted but not finished
        self._pending = 0            # admitted but not yet acquired
        self._step = 0
        self._steal_attempts = [0] * n_workers
        self._worker_seq = [0] * n_workers
        # Steal-contention accounting: per-worker histogram of probes
        # per successful steal (buckets per STEAL_PROBE_BUCKETS plus an
        # overflow bin) and a count of dry sweeps (every victim empty).
        self._probe_hist = [
            [0] * (len(STEAL_PROBE_BUCKETS) + 1) for _ in range(n_workers)
        ]
        self._dry_sweeps = [0] * n_workers
        self._counts = {
            "submitted": 0, "executed": 0, "failed": 0, "cancelled": 0,
            "retries": 0, "rejected": 0, "local_pops": 0, "queue_takes": 0,
            "steals": 0, "mp_shipped": 0, "mp_inline": 0,
        }
        self._high_water = 0
        # Long-lived serving (start()/shutdown()): worker threads that
        # outlive any single drain, for the repro.serve job service.
        self._serve_threads: list[threading.Thread] = []
        self._stop_serving = threading.Event()

    # -- events --------------------------------------------------------------

    def _event_step(self, worker: int) -> int:
        if self.deterministic:
            return self._step
        if 0 <= worker < self.n_workers:
            self._worker_seq[worker] += 1
            return self._worker_seq[worker]
        return 0

    def _record(self, worker: int, kind: str, task_id: int, detail: str = "") -> None:
        with self._lock:
            self.events.append(
                SchedEvent(self._event_step(worker), worker, kind, task_id, detail)
            )

    def log_lines(self) -> list[str]:
        """The canonical event log.

        Deterministic mode: in execution order — a pure function of
        (workload, workers, seed), byte-identical across processes and
        hash seeds.  Threaded mode: sorted (arrival order is racy; the
        sorted multiset of decisions is still comparable run to run).
        """
        with self._lock:
            lines = [event.canonical() for event in self.events]
        return lines if self.deterministic else sorted(lines)

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        fn: Callable[[], Any],
        name: str = "task",
        priority: int = 0,
    ) -> TaskHandle:
        """Admit one task; see :meth:`submit_batch` for semantics."""
        return self.submit_batch([fn], name=name, priority=priority)[0]

    def submit_batch(
        self,
        fns: Sequence[Callable[[], Any]],
        name: str = "task",
        priority: int = 0,
    ) -> list[TaskHandle]:
        """Admit a batch atomically (all or :class:`BackpressureError`).

        Submissions from *inside* a running task bypass the admission
        queue onto the submitting worker's own deque — nested work is
        already admitted, and bouncing it through backpressure could
        deadlock a fork-join decomposition against its own children.
        """
        worker = getattr(self._local, "worker", None)
        with self._lock:
            handles: list[TaskHandle] = []
            tasks: list[Task] = []
            for i, fn in enumerate(fns):
                task = Task(
                    task_id=self._next_task_id,
                    fn=fn,
                    name=name if len(fns) == 1 else f"{name}[{i}]",
                    priority=priority,
                )
                self._next_task_id += 1
                tasks.append(task)
                handles.append(TaskHandle(_executor=self, task=task))
            if worker is None:
                self.queue.push_batch(tasks)      # may raise BackpressureError
            else:
                for task in tasks:
                    self._deques[worker].push(task)
            for handle in handles:
                self._handles[handle.task_id] = handle
            self._outstanding += len(tasks)
            self._pending += len(tasks)
            self._high_water = max(self._high_water, self._pending)
            self._counts["submitted"] += len(tasks)
            origin = -1 if worker is None else worker
            for task in tasks:
                self.events.append(SchedEvent(
                    self._event_step(origin), origin, "submit", task.task_id
                ))
        if telemetry.enabled():
            telemetry.inc("sched.tasks.submitted", len(tasks))
            telemetry.counter_event("sched.queue.depth", self._pending)
        return handles

    def pending(self) -> int:
        with self._lock:
            return self._pending

    # -- cancellation --------------------------------------------------------

    def _cancel(self, handle: TaskHandle) -> bool:
        task = handle.task
        with self._lock:
            if task.taken or task.state is not TaskState.PENDING:
                return task.state is TaskState.CANCELLED
            task.taken = True
            task.state = TaskState.CANCELLED
            self._outstanding -= 1
            self._pending -= 1
            self._counts["cancelled"] += 1
            self.events.append(SchedEvent(
                self._event_step(-1), -1, "cancel", task.task_id
            ))
        handle._error = CancelledError(
            f"task {task.task_id} ({task.name}) was cancelled"
        )
        handle._done.set()
        telemetry.instant("sched.task.cancelled", task=task.task_id)
        telemetry.inc("sched.tasks.cancelled")
        return True

    # -- speculation ---------------------------------------------------------

    def speculate(self, policy, clock=None, listener=None) -> None:
        """Install (``SpecPolicy``) or remove (``None``) straggler
        speculation.  ``clock`` is the injectable clock ages are measured
        on; ``listener(event, primary_task)`` observes backup launches
        and wins (how :mod:`repro.mapreduce.stragglers` keeps its
        ``mr.backup.*`` telemetry names).

        Speculation never changes results — first-completion-wins
        resolves the primary's handle with whichever copy commits first
        — and never changes the stepping event log: the stepping loop
        runs every acquired task to completion within its round, so no
        task is in flight when a worker goes idle and the primary is
        always the canonical winner (zero backups launch).
        """
        with self._lock:
            self.spec_engine = (
                SpecEngine(policy, clock=clock, listener=listener)
                if policy is not None else None
            )

    def _maybe_backup(self, worker: int) -> bool:
        """An idle worker probes for a straggling primary and, if one is
        overdue, launches a backup copy onto its own deque.  Threaded and
        serve modes only — the stepping loop never idles with work in
        flight, which is the canonical-winner rule."""
        engine = self.spec_engine
        if engine is None or self.deterministic:
            return False
        with self._lock:
            now = engine.now()
            primary = engine.pick_straggler(now)
            if primary is None:
                return False
            clone = Task(
                task_id=self._next_task_id, fn=primary.fn,
                name=f"{primary.name}~backup", priority=primary.priority,
                backup_of=primary.task_id,
            )
            self._next_task_id += 1
            engine.backup_launched(primary, clone)
            self._deques[worker].push(clone)
            self._pending += 1
            self._high_water = max(self._high_water, self._pending)
            self.events.append(SchedEvent(
                self._event_step(worker), worker, "backup", clone.task_id,
                f"of=t{primary.task_id}",
            ))
        telemetry.instant("sched.spec.backup", task=primary.task_id,
                          backup=clone.task_id, worker=worker)
        telemetry.inc("sched.spec.backups_launched")
        if engine.listener is not None:
            engine.listener("launched", primary)
        return True

    # -- acquisition ---------------------------------------------------------

    def _deal_locked(self) -> None:
        """Move every queued task onto a seeded-random worker deque.

        The queue yields priority-descending; dealing in *ascending*
        order leaves the highest priority bottom-most on its deque, so
        owners (LIFO) run priorities first while thieves (FIFO) take the
        back of the line.
        """
        batch: list[Task] = []
        while (task := self.queue.pop()) is not None:
            batch.append(task)
        for task in reversed(batch):
            worker = self._deal_rng.randrange(self.n_workers)
            task.taken = False            # re-armed now that it has a home
            self._deques[worker].push(task)
            self.events.append(SchedEvent(
                self._event_step(worker), worker, "deal", task.task_id
            ))

    def _acquire_locked(self, worker: int) -> tuple[Task, str, str] | None:
        """One acquisition attempt for ``worker`` (caller holds the lock):
        own deque, then the admission queue, then a seeded steal sweep."""
        task = self._deques[worker].pop_bottom()
        if task is not None:
            task.taken = True
            self._counts["local_pops"] += 1
            return task, "pop", ""
        task = self.queue.pop()                   # marks taken itself
        if task is not None:
            self._counts["queue_takes"] += 1
            return task, "queue", ""
        attempt = self._steal_attempts[worker]
        self._steal_attempts[worker] += 1
        probes = 0
        for victim in self.steal_order.victims(worker, attempt):
            probes += 1
            task = self._deques[victim].steal_top()
            if task is not None:
                task.taken = True
                self._counts["steals"] += 1
                self._observe_probes(worker, probes)
                return task, "steal", f"from=w{victim}"
        if probes:
            self._dry_sweeps[worker] += 1
        return None

    def _observe_probes(self, worker: int, probes: int) -> None:
        """Record one successful steal's probe count (caller holds lock)."""
        index = bisect.bisect_left(STEAL_PROBE_BUCKETS, float(probes))
        self._probe_hist[worker][index] += 1
        telemetry.observe(f"sched.steal.probes.w{worker}", probes,
                          boundaries=STEAL_PROBE_BUCKETS)

    def steal_contention(self) -> dict[int, dict[str, Any]]:
        """Per-worker steal-contention histogram.

        ``buckets`` counts successful steals by how many victims the
        thief probed first (upper bounds :data:`STEAL_PROBE_BUCKETS`,
        last bin is overflow); ``dry_sweeps`` counts full sweeps that
        found every victim empty.  In threaded mode this is where
        thieves collide: a healthy run steals from the first victim
        probed, a contended run climbs into the higher buckets.
        """
        with self._lock:
            return {
                worker: {
                    "boundaries": STEAL_PROBE_BUCKETS,
                    "buckets": tuple(self._probe_hist[worker]),
                    "steals": sum(self._probe_hist[worker]),
                    "dry_sweeps": self._dry_sweeps[worker],
                }
                for worker in range(self.n_workers)
            }

    # -- execution -----------------------------------------------------------

    def _run(self, task: Task, worker: int, kind: str, detail: str) -> None:
        """Execute one acquired task on ``worker`` (outside the lock)."""
        self._record(worker, kind, task.task_id, detail)
        if kind == "steal":
            telemetry.instant("sched.steal", thief=worker, task=task.task_id,
                              victim=detail)
            telemetry.inc("sched.steals")
        engine = self.spec_engine
        is_backup = task.backup_of is not None
        family = None
        with self._lock:
            self._pending -= 1
            attempt = task.attempts
            task.attempts += 1
            task.state = TaskState.RUNNING
            if engine is not None:
                family = engine.task_started(task, engine.now())
        if self.breaker is not None and not self.breaker.allow():
            with self._lock:
                self._counts["rejected"] += 1
            self._record(worker, "reject", task.task_id, f"a{attempt}")
            telemetry.instant("sched.task.rejected", task=task.task_id,
                              worker=worker)
            telemetry.inc("sched.tasks.rejected")
            if is_backup:
                # A rejected backup is dropped, never the primary's fate:
                # the primary stays the only live copy of the family.
                with self._lock:
                    engine.on_complete(task, engine.now(), failed=True)
                return
            self._complete(task, worker, attempt, error=CircuitOpenError(
                f"task {task.task_id} ({task.name}) rejected: breaker open"
            ))
            return
        previous_worker = getattr(self._local, "worker", None)
        self._local.worker = worker
        if engine is not None:
            _set_context(family, is_backup)
        try:
            faults.fire("sched.task", key=f"t{task.task_id}",
                        task=task.task_id, worker=worker, attempt=attempt)
            with telemetry.span("sched.task", category="task",
                                task=task.task_id, task_name=task.name,
                                worker=worker, attempt=attempt):
                value = self._execute_body(task, worker)
        except (InjectedCrash, TransientFault) as exc:
            if self.breaker is not None:
                self.breaker.record_failure()
            if not is_backup and attempt + 1 < self.max_attempts:
                with self._lock:
                    task.taken = False
                    task.state = TaskState.PENDING
                    self._deques[worker].push(task)
                    self._pending += 1
                    self._counts["retries"] += 1
                    if engine is not None:
                        engine.task_retried(task)
                self._record(worker, "retry", task.task_id, f"a{attempt}")
                telemetry.instant("sched.task.retry", task=task.task_id,
                                  attempt=attempt)
                telemetry.inc("sched.retries")
            else:
                self._complete(task, worker, attempt, error=SchedError(
                    f"task {task.task_id} ({task.name}) failed after "
                    f"{attempt + 1} attempt(s)"
                ), cause=exc)
        except BaseException as exc:  # noqa: BLE001 - stored on the handle
            if self.breaker is not None:
                self.breaker.record_failure()
            self._complete(task, worker, attempt, error=exc)
        else:
            if self.breaker is not None:
                self.breaker.record_success()
            self._complete(task, worker, attempt, value=value)
        finally:
            self._local.worker = previous_worker
            if engine is not None:
                _clear_context()

    def _complete(
        self,
        task: Task,
        worker: int,
        attempt: int,
        value: Any = None,
        error: BaseException | None = None,
        cause: BaseException | None = None,
    ) -> None:
        """Resolve one finished copy of a task.

        Without speculation this is the classic done/fail path.  With a
        :class:`SpecEngine` installed it applies first-completion-wins:
        the first copy of a family to complete commits the primary's
        handle; the loser is recorded (``lose``) and only counted, and a
        backup still pending when its primary wins is cancelled in the
        same locked section so it can never start afterwards.
        """
        engine = self.spec_engine
        is_backup = task.backup_of is not None
        if error is not None and cause is not None:
            error.__cause__ = cause
        if engine is None:
            if error is not None:
                self._record(worker, "fail", task.task_id, f"a{attempt}")
                self._finish(task, worker, error=error)
            else:
                self._record(worker, "done", task.task_id, f"a{attempt}")
                self._finish(task, worker, value=value)
            return
        suffix = f"|of=t{task.backup_of}" if is_backup else ""
        cancelled_backup: Task | None = None
        with self._lock:
            outcome, family = engine.on_complete(
                task, engine.now(), failed=error is not None
            )
            if outcome == "defer":
                family.primary_error = error
            if outcome == "commit" and not is_backup:
                b = family.backup
                if (b is not None and not b.taken
                        and b.state is TaskState.PENDING):
                    b.taken = True
                    b.state = TaskState.CANCELLED
                    self._pending -= 1
                    engine.backup_cancelled(family)
                    cancelled_backup = b
            if outcome == "commit" and is_backup:
                # A primary re-queued by an injected fault may still be
                # pending when its backup commits; cancel it so a later
                # drain never re-runs a superseded copy.
                p = family.primary
                if not p.taken and p.state is TaskState.PENDING:
                    p.taken = True
                    self._pending -= 1
                    engine.loser_cancelled(family)
                    cancelled_backup = p
        if outcome == "lose":
            self._record(worker, "lose", task.task_id,
                         f"a{attempt}|winner={family.winner}{suffix}")
            telemetry.instant("sched.spec.lose", task=task.task_id,
                              winner=family.winner)
            telemetry.inc("sched.spec.losses")
            return
        if outcome == "defer":
            # The primary failed but its backup is still in flight and
            # may yet produce the value; hold the handle open.
            self._record(worker, "fail", task.task_id,
                         f"a{attempt}|deferred")
            return
        if outcome == "backup-failed":
            self._record(worker, "fail", task.task_id, f"a{attempt}{suffix}")
            return
        if outcome == "commit-error":
            # Both copies failed; the primary's stored error is final.
            self._record(worker, "fail", task.task_id, f"a{attempt}{suffix}")
            self._finish(family.primary, worker, error=family.primary_error)
            return
        # "plain" or "commit": this copy is the family's result.
        if error is not None:
            self._record(worker, "fail", task.task_id, f"a{attempt}{suffix}")
            self._finish(family.primary, worker, error=error)
            return
        self._record(worker, "done", task.task_id, f"a{attempt}{suffix}")
        self._finish(family.primary, worker, value=value)
        if cancelled_backup is not None:
            self._record(worker, "backup-cancel", cancelled_backup.task_id,
                         f"of=t{task.task_id}")
            telemetry.inc("sched.spec.backups_cancelled")
        if is_backup:
            telemetry.instant("sched.spec.win", task=task.backup_of,
                              backup=task.task_id, worker=worker)
            telemetry.inc("sched.spec.backups_won")
            if engine.listener is not None:
                engine.listener("won", family.primary)

    def _execute_body(self, task: Task, worker: int) -> Any:
        """Run the task body where ``mode`` dictates.

        Only :class:`Call` payloads can cross the process boundary; a
        plain closure under ``mode="mp"`` runs inline in the parent
        (counted as ``mp_inline``) so every existing workload still
        works — it just doesn't escape the GIL.  Faults and telemetry
        fired above stay parent-side either way, which is what keeps
        chaos replay and the event log mode-independent.
        """
        if self._pool is not None and isinstance(task.fn, Call):
            with self._lock:
                self._counts["mp_shipped"] += 1
            return self._pool.run(worker, task.fn)
        if self.mode == "mp":
            with self._lock:
                self._counts["mp_inline"] += 1
        return task.fn()

    def _ensure_pool(self) -> None:
        """Create the process pool (mode="mp" only), sized one child per
        worker so the task→process mapping is fixed.  Called before any
        drain thread starts, which is what makes ``fork`` safe."""
        if self.mode != "mp" or self._pool is not None:
            return
        from repro.procpool import ProcessPool

        self._pool = ProcessPool(
            self.n_workers,
            timeout_s=resolve_timeout_s(None, DRAIN_TIMEOUT_S),
        )

    def close(self) -> None:
        """Release the process pool, if one was created.  Idempotent."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "WorkStealingExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _finish(
        self,
        task: Task,
        worker: int,
        value: Any = None,
        error: BaseException | None = None,
        cause: BaseException | None = None,
    ) -> None:
        if error is not None and cause is not None:
            error.__cause__ = cause
        with self._lock:
            task.state = TaskState.FAILED if error is not None else TaskState.DONE
            self._outstanding -= 1
            self._counts["failed" if error is not None else "executed"] += 1
            handle = self._handles.pop(task.task_id, None)
        if handle is not None:
            handle._value = value
            handle._error = error
            handle.worker = worker
            handle._done.set()
        telemetry.inc("sched.tasks.executed")

    # -- inline help (for TaskHandle.result) ---------------------------------

    def _help(self, handle: TaskHandle, timeout: float | None) -> None:
        task = handle.task
        with self._lock:
            claim = not task.taken and task.state is TaskState.PENDING
            if claim:
                task.taken = True
        if claim:
            worker = getattr(self._local, "worker", None)
            self._run(task, worker if worker is not None else 0,
                      "pop", "inline")
            return
        handle._done.wait(resolve_timeout_s(timeout, DRAIN_TIMEOUT_S))

    # -- draining ------------------------------------------------------------

    def drain(self, timeout: float | None = None) -> None:
        """Run until every submitted task has finished."""
        if self._serve_threads:
            raise SchedError(
                "executor is serving; submissions run as they arrive "
                "(use shutdown() to stop, not drain())"
            )
        budget = resolve_timeout_s(timeout, DRAIN_TIMEOUT_S)
        self._ensure_pool()
        with telemetry.span("sched.drain", category="sched",
                            n_workers=self.n_workers, seed=self.seed,
                            deterministic=self.deterministic):
            if self.deterministic:
                self._drain_stepping(budget)
            else:
                self._drain_threaded(budget)
        if telemetry.enabled():
            telemetry.counter_event("sched.queue.depth", self._pending)

    def _drain_stepping(self, budget: float) -> None:
        """Single-threaded deterministic rounds: worker 0..W-1 each run at
        most one task per round.  Work exists whenever tasks are pending,
        so an empty round with outstanding work is an invariant breach."""
        started = time.monotonic()
        while True:
            with self._lock:
                if self._outstanding == 0:
                    return
            if time.monotonic() - started > budget:
                raise SchedError(f"drain exceeded {budget}s")
            progressed = False
            with self._lock:
                self._deal_locked()
            for worker in range(self.n_workers):
                with self._lock:
                    acquired = self._acquire_locked(worker)
                if acquired is not None:
                    progressed = True
                    self._run(acquired[0], worker, acquired[1], acquired[2])
            with self._lock:
                self._step += 1
                if not progressed and self._outstanding > 0:
                    raise SchedError(
                        f"scheduler stalled: {self._outstanding} task(s) "
                        f"outstanding but none acquirable"
                    )

    def _drain_threaded(self, budget: float) -> None:
        with self._lock:
            self._deal_locked()

        def loop(worker: int) -> None:
            telemetry.ensure_thread("sched", f"sched-worker-{worker}")
            while True:
                with self._lock:
                    if self._outstanding == 0:
                        return
                    acquired = self._acquire_locked(worker)
                if acquired is None:
                    if self._maybe_backup(worker):
                        continue
                    time.sleep(0.0002)
                    continue
                self._run(acquired[0], worker, acquired[1], acquired[2])

        threads = [
            threading.Thread(target=loop, args=(w,), name=f"sched-worker-{w}")
            for w in range(self.n_workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=budget)
            if t.is_alive():
                raise SchedError(f"{t.name} did not finish within {budget}s")

    # -- long-lived serving ---------------------------------------------------

    def start(self) -> None:
        """Begin serving: worker threads that run tasks as they arrive.

        Unlike :meth:`drain` — which exits as soon as the current batch
        finishes — serving keeps the workers alive until
        :meth:`shutdown`, which is what a long-lived job service needs:
        submissions trickle in from many clients and must start without
        a caller standing in ``drain``.  Requires ``deterministic=False``
        (a stepping loop has no meaning for an open-ended task stream).
        """
        if self.deterministic:
            raise SchedError("serving requires deterministic=False")
        if self.mode == "mp":
            raise SchedError(
                "serving requires mode='threaded': serve jobs are "
                "closures, which cannot cross the process boundary"
            )
        if self._serve_threads:
            raise SchedError("executor is already serving")
        self._stop_serving.clear()
        for worker in range(self.n_workers):
            thread = threading.Thread(
                target=self._serve_loop, args=(worker,),
                name=f"sched-serve-{worker}", daemon=True,
            )
            self._serve_threads.append(thread)
            thread.start()

    def serving(self) -> bool:
        return bool(self._serve_threads)

    def _serve_loop(self, worker: int) -> None:
        telemetry.ensure_thread("sched", f"sched-serve-{worker}")
        while True:
            with self._lock:
                acquired = self._acquire_locked(worker)
            if acquired is None:
                if self._stop_serving.is_set():
                    return
                if self._maybe_backup(worker):
                    continue
                time.sleep(0.001)
                continue
            self._run(acquired[0], worker, acquired[1], acquired[2])

    def shutdown(
        self, cancel_pending: bool = True, timeout: float | None = None
    ) -> int:
        """Stop serving; returns how many queued tasks were cancelled.

        In-flight tasks always finish (workers complete their current
        task before exiting).  With ``cancel_pending`` (the graceful-
        shutdown default) queued-but-unstarted tasks are cancelled — each
        handle resolves with :class:`CancelledError` — so the drain is
        bounded by the work already running; with ``cancel_pending=False``
        the workers first empty the backlog.  Idempotent; raises
        :class:`SchedError` if a worker fails to stop within the budget.
        """
        if not self._serve_threads:
            return 0
        cancelled = 0
        if cancel_pending:
            with self._lock:
                pending = [
                    handle for handle in self._handles.values()
                    if not handle.task.taken
                    and handle.task.state is TaskState.PENDING
                ]
            for handle in pending:
                if self._cancel(handle):
                    cancelled += 1
        self._stop_serving.set()
        budget = resolve_timeout_s(timeout, DRAIN_TIMEOUT_S)
        deadline = time.monotonic() + budget
        for thread in self._serve_threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
            if thread.is_alive():
                raise SchedError(
                    f"{thread.name} did not stop within {budget}s"
                )
        self._serve_threads = []
        return cancelled

    def map(
        self,
        fns: Sequence[Callable[[], Any]],
        name: str = "task",
        priority: int = 0,
        timeout: float | None = None,
    ) -> list[Any]:
        """Batch-submit, drain, and return results in submission order.

        The dispatch-layer entry point the runtimes use (MapReduce phases,
        drug-design sweeps): one call, deterministic result order."""
        handles = self.submit_batch(fns, name=name, priority=priority)
        self.drain(timeout=timeout)
        return [handle.result(timeout=timeout) for handle in handles]

    def map_chunked(
        self,
        items: Sequence[Any],
        batch_fn: Callable[[list[Any]], Sequence[Any]],
        chunk_size: int,
        name: str = "chunk",
        priority: int = 0,
        timeout: float | None = None,
    ) -> list[Any]:
        """Batched dispatch: one task per ``chunk_size`` items.

        ``batch_fn(chunk)`` must return one result per item of the
        chunk; the flattened per-item results come back in submission
        order.  This is the amortization lever for fine-grained work:
        the scheduler's per-task bookkeeping (admission, deal, events,
        handle) is paid once per chunk while ``batch_fn`` runs a
        vectorized kernel over the whole chunk — the shape
        ``solve_sched(..., chunk=k)`` dispatches.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        chunks = [
            list(items[i : i + chunk_size])
            for i in range(0, len(items), chunk_size)
        ]
        results = self.map(
            [lambda c=c: list(batch_fn(c)) for c in chunks],
            name=name, priority=priority, timeout=timeout,
        )
        flat: list[Any] = []
        for chunk, values in zip(chunks, results):
            if len(values) != len(chunk):
                raise SchedError(
                    f"batch_fn returned {len(values)} results for a chunk "
                    f"of {len(chunk)} items"
                )
            flat.extend(values)
        return flat

    # -- reporting -----------------------------------------------------------

    def stats(self) -> SchedStats:
        with self._lock:
            engine = self.spec_engine
            return SchedStats(
                n_workers=self.n_workers,
                seed=self.seed,
                deterministic=self.deterministic,
                mode=self.mode,
                steps=self._step,
                high_water=self._high_water,
                backups_launched=engine.backups_launched if engine else 0,
                backups_won=engine.backups_won if engine else 0,
                backup_time_saved_s=engine.time_saved_s if engine else 0.0,
                **self._counts,
            )
