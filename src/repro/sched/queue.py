"""The admission layer: a priority job queue with bounded backpressure.

Work stealing balances load *after* admission; this queue decides what
is admitted at all.  Tasks enter here (singly or in batches), wait in
priority order (higher first, FIFO within a priority level), and are
pulled by idle workers.  A bounded queue refuses work beyond
``max_pending`` with :class:`~repro.sched.core.BackpressureError` —
callers shed or retry, the scheduler never grows an unbounded backlog
(the admission-control half of the serving story).
"""

from __future__ import annotations

import heapq
import threading

from repro.sched.core import BackpressureError, Task, TaskState

__all__ = ["JobQueue"]


class JobQueue:
    """Priority queue of :class:`Task` with optional bounded capacity."""

    def __init__(self, max_pending: int | None = None) -> None:
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = max_pending
        self._lock = threading.Lock()
        # Heap entries: (-priority, sequence, Task) — min-heap, so the
        # highest priority pops first and ties break by submission order.
        self._heap: list[tuple[int, int, Task]] = []
        self._seq = 0
        self.high_water = 0       # peak pending count (backlog telemetry)
        self.rejected = 0         # submissions refused by backpressure

    def __len__(self) -> int:
        with self._lock:
            return self._pending_locked()

    def _pending_locked(self) -> int:
        return sum(1 for _, _, t in self._heap if not t.taken)

    def push(self, task: Task) -> None:
        """Admit one task; raises :class:`BackpressureError` when full."""
        self.push_batch([task])

    def push_batch(self, tasks: list[Task]) -> None:
        """Admit a batch atomically: all admitted, or none (and a
        :class:`BackpressureError`) — a half-admitted batch would leave
        the caller with a job it can neither run nor retry wholesale."""
        with self._lock:
            pending = self._pending_locked()
            if (
                self.max_pending is not None
                and pending + len(tasks) > self.max_pending
            ):
                self.rejected += len(tasks)
                raise BackpressureError(
                    f"job queue full: {pending} pending + {len(tasks)} "
                    f"submitted > max_pending={self.max_pending}"
                )
            for task in tasks:
                heapq.heappush(self._heap, (-task.priority, self._seq, task))
                self._seq += 1
            self.high_water = max(self.high_water, pending + len(tasks))

    def pop(self) -> Task | None:
        """Highest-priority untaken task (marks it taken), or None."""
        with self._lock:
            while self._heap:
                _, _, task = heapq.heappop(self._heap)
                if not task.taken:
                    task.taken = True
                    return task
            return None

    def cancel(self, task: Task) -> bool:
        """Cancel a queued task: True if it had not been claimed yet."""
        with self._lock:
            if task.taken or task.state is not TaskState.PENDING:
                return False
            task.taken = True
            task.state = TaskState.CANCELLED
            return True
