"""The speculative-execution benchmark behind ``python -m repro bench spec``.

The question this suite answers is the tentpole's: do backup tasks
actually cut the tail?  A batch of small, pure tasks runs twice through
the *same* threaded executor configuration — once plain, once with a
:class:`~repro.sched.spec.SpecPolicy` installed — against a **seeded
stall plan**: a ``random.Random(f"{seed}:spec-stalls")`` draw picks a
few task indices and pins them behind a long stall.  A stalled body
does not burn CPU; it waits on its family's *obsolete* event through
the injectable clock (:func:`repro.sched.spec.obsolete_event`), exactly
the in-process analogue of a task stuck on a slow machine.  In the
plain arm the event never fires, so the stall runs its full course and
the batch's p99 task latency *is* the stall.  In the speculative arm
the straggler policy launches a backup on an idle worker, the backup
commits in microseconds, the losing primary is woken and discarded —
and the p99 collapses toward the healthy-task latency.

Three gates, because a fast wrong answer is worse than a slow right one:

- **tail** — speculative p99 task latency strictly below the plain
  arm's, with at least one backup launched and won;
- **results** — every committed value identical across arms (each task
  is a pure function of its index, so speculation cannot change a bit);
- **stepping log** — the drug-design stepping report rendered with and
  without ``speculate=True`` must match byte for byte (the canonical
  winner rule: in stepping mode no task is ever in flight at an idle
  probe, so zero backups launch and the log stays a pure function of
  ``(workload, workers, seed)``).

The stall is a wait, not compute, so the gate applies on any core
count — ``gate_applied`` is always true for this suite.  Tests pass a
:class:`~repro.faults.clock.ScaledClock` so CI never real-sleeps the
full stall; the committed ``BENCH_spec.json`` uses the real clock.
"""

from __future__ import annotations

import json
import math
import random
import threading
import time
from typing import Any

from repro.faults.clock import SYSTEM_CLOCK
from repro.sched.core import Call
from repro.sched.executor import WorkStealingExecutor
from repro.sched.spec import SpecPolicy, is_backup, obsolete_event

__all__ = ["render_point", "run_spec_bench", "stall_plan"]

#: Executor width for both arms (threads; stalls release the GIL).
_WORKERS = 4


def stall_plan(seed: int, n_tasks: int, n_stalls: int,
               stall_s: float) -> dict[int, float]:
    """The seeded map of task index → stall seconds (same for both arms)."""
    rng = random.Random(f"{seed}:spec-stalls")
    indices = rng.sample(range(n_tasks), n_stalls)
    return {index: stall_s for index in sorted(indices)}


def _task_value(index: int) -> int:
    """The pure payload: what every copy of task ``index`` must return."""
    return sum((index * j + 1) % 97 for j in range(50))


def _spec_task(index: int, stall_s: float, clock: Any) -> tuple[int, float]:
    """One task body: optionally stall, then compute; stamp completion.

    The stall models a slow *machine*, not slow work, so a backup copy
    (dispatched to a healthy worker) skips it.  A stalled primary waits
    on the family's obsolete event through ``clock`` — its backup
    committing elsewhere wakes it immediately, the in-process analogue
    of killing a straggler on a slow machine.  In a non-speculative run
    (or for a healthy task) the event never fires and the wait runs its
    full course.
    """
    if stall_s > 0.0 and not is_backup():
        kill = obsolete_event() or threading.Event()
        clock.wait(kill, stall_s)
    return _task_value(index), clock.monotonic()


def _percentile(latencies: list[float], q: float) -> float:
    """The ``q``-quantile by rank (nearest-rank, ``q`` in [0, 1])."""
    ordered = sorted(latencies)
    rank = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[rank]


def _run_arm(
    speculate: bool,
    n_tasks: int,
    stalls: dict[int, float],
    clock: Any,
    spec_k: float,
    min_age_s: float,
) -> dict[str, Any]:
    """One pass over the stall plan; returns values, latencies, counters."""
    executor = WorkStealingExecutor(
        n_workers=_WORKERS, seed=7, deterministic=False
    )
    if speculate:
        executor.speculate(
            SpecPolicy(k=spec_k, min_age_s=min_age_s), clock=clock
        )
    try:
        tasks = [
            Call(_spec_task, index, stalls.get(index, 0.0), clock)
            for index in range(n_tasks)
        ]
        start = clock.monotonic()
        handles = executor.submit_batch(tasks, name="specbench.task")
        executor.drain()
        outcomes = [handle.result() for handle in handles]
        wall_s = clock.monotonic() - start
        stats = executor.stats()
    finally:
        executor.close()
    values = [value for value, _ in outcomes]
    latencies = [max(0.0, stamp - start) for _, stamp in outcomes]
    return {
        "values": values,
        "latencies": latencies,
        "wall_s": wall_s,
        "backups_launched": stats.backups_launched,
        "backups_won": stats.backups_won,
        "backup_time_saved_s": stats.backup_time_saved_s,
    }


def _stepping_logs_identical(workers: int, seed: int) -> bool:
    """Drug-design stepping report, plain vs speculative, byte for byte."""
    from repro.sched.workloads import run_sched_workload

    renders = [
        run_sched_workload("drugdesign", workers=workers, seed=seed,
                           speculate=speculate).render()
        for speculate in (False, True)
    ]
    return renders[0] == renders[1]


def run_spec_bench(
    quick: bool = False,
    out_path: str | None = "BENCH_spec.json",
    clock: Any = None,
    seed: int = 7,
) -> dict[str, Any]:
    """Run the speculation benchmark; write and return the point.

    ``quick`` shrinks the batch and the stall for the CI smoke step.
    ``clock`` (tests) swaps in a scaled clock so the stall is nominal
    seconds, not wall seconds — latencies are reported in the clock's
    own units either way, and the gate compares like with like.
    """
    clock = clock if clock is not None else SYSTEM_CLOCK
    n_tasks = 24 if quick else 48
    n_stalls = 2 if quick else 3
    stall_s = 0.35 if quick else 0.8
    stalls = stall_plan(seed, n_tasks, n_stalls, stall_s)
    arms = {
        label: _run_arm(speculate, n_tasks, stalls, clock,
                        spec_k=2.0, min_age_s=0.05)
        for label, speculate in (("base", False), ("spec", True))
    }
    point: dict[str, Any] = {
        "bench": "spec",
        "quick": quick,
        "workers": _WORKERS,
        "seed": seed,
        "n_tasks": n_tasks,
        "n_stalls": n_stalls,
        "stall_s": stall_s,
    }
    for label, arm in arms.items():
        point[f"{label}_wall_s"] = arm["wall_s"]
        point[f"{label}_p50_s"] = _percentile(arm["latencies"], 0.50)
        point[f"{label}_p99_s"] = _percentile(arm["latencies"], 0.99)
    point["backups_launched"] = arms["spec"]["backups_launched"]
    point["backups_won"] = arms["spec"]["backups_won"]
    point["backup_time_saved_s"] = arms["spec"]["backup_time_saved_s"]
    point["base_backups_launched"] = arms["base"]["backups_launched"]
    point["results_identical"] = arms["base"]["values"] == arms["spec"]["values"]
    point["stepping_log_identical"] = _stepping_logs_identical(
        workers=4, seed=seed
    )
    for key, value in list(point.items()):
        if isinstance(value, float):
            point[key] = round(value, 6)
    tail_cut = bool(
        point["spec_p99_s"] < point["base_p99_s"]
        and point["backups_launched"] >= 1
        and point["backups_won"] >= 1
        and point["base_backups_launched"] == 0
    )
    identical = bool(
        point["results_identical"] and point["stepping_log_identical"]
    )
    # A wait-driven stall needs no parallel hardware: the gate always
    # applies, on any core count.
    point["gate_applied"] = True
    point["ok"] = identical and tail_cut
    point["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(point, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return point


def render_point(point: dict[str, Any]) -> str:
    """The benchmark point as the aligned table the CLI prints."""
    lines = [
        f"spec bench (quick={point['quick']}): workers={point['workers']} "
        f"tasks={point['n_tasks']} stalls={point['n_stalls']}"
        f"x{point['stall_s']}s ok={point['ok']}",
        f"  results identical: values={point['results_identical']} "
        f"stepping_log={point['stepping_log_identical']}",
        f"  backups: launched={point['backups_launched']} "
        f"won={point['backups_won']} "
        f"time_saved={point['backup_time_saved_s']:.3f}s",
    ]
    for label, title in (("base", "plain"), ("spec", "speculative")):
        lines.append(
            f"  {title:34s} p50 {point[f'{label}_p50_s'] * 1e3:9.2f} ms  "
            f"p99 {point[f'{label}_p99_s'] * 1e3:9.2f} ms  "
            f"wall {point[f'{label}_wall_s'] * 1e3:9.2f} ms"
        )
    return "\n".join(lines)
