"""Content-addressed result cache: hash(workload + spec + seed) → result.

The memoisation layer of the serving path: a job whose inputs are
byte-identical to a previous run returns the stored result instead of
re-executing (the warm-run speedup ``python -m repro sched --cache``
demonstrates).  Keys are SHA-256 over a *canonical* rendering of the
key parts — dicts and sets are sorted, so the fingerprint is stable
across processes and ``PYTHONHASHSEED`` values, the same discipline as
:func:`repro.mapreduce.engine.stable_partition`.

Two tiers: an in-memory dict (always), and an optional directory of
pickle files so hits survive across processes — that is what makes the
second CLI invocation warm.  Hit/miss counters feed both the CLI report
and ``repro.telemetry`` (``sched.cache.hits`` / ``sched.cache.misses``).

The disk tier is **LRU-capped**: ``max_disk_entries`` / ``max_disk_bytes``
bound it, recency is the entry file's mtime (refreshed on every disk
hit), and :meth:`ResultCache.evict` removes oldest-first until the caps
hold — automatically after each ``put``, or on demand via the
``python -m repro sched --cache-evict`` maintenance path.  Without caps
the tier grows without bound, exactly the failure mode the ROADMAP
called out.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from typing import Any, Mapping, Sequence

from repro.telemetry import instrument as telemetry

__all__ = ["canonical_repr", "fingerprint", "ResultCache"]

_MISSING = object()


def canonical_repr(obj: Any) -> str:
    """A repr that is independent of dict/set iteration order."""
    if isinstance(obj, Mapping):
        items = sorted(
            (canonical_repr(k), canonical_repr(v)) for k, v in obj.items()
        )
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(obj, (set, frozenset)):
        return "{" + ",".join(sorted(canonical_repr(x) for x in obj)) + "}"
    if isinstance(obj, (list, tuple)):
        inner = ",".join(canonical_repr(x) for x in obj)
        return ("[%s]" if isinstance(obj, list) else "(%s)") % inner
    return repr(obj)


def fingerprint(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical rendering of ``parts``."""
    blob = canonical_repr(parts).encode("utf-8", "backslashreplace")
    return hashlib.sha256(blob).hexdigest()


class ResultCache:
    """Keyed result store with hit/miss accounting.

    ``directory=None`` keeps results in memory only; with a directory,
    every entry is also written as ``<key>.pkl`` (atomic rename) and
    read back on a memory miss — the cross-process tier.
    """

    def __init__(
        self,
        directory: str | None = None,
        max_disk_entries: int | None = None,
        max_disk_bytes: int | None = None,
    ) -> None:
        if max_disk_entries is not None and max_disk_entries < 1:
            raise ValueError(
                f"max_disk_entries must be >= 1, got {max_disk_entries}"
            )
        if max_disk_bytes is not None and max_disk_bytes < 1:
            raise ValueError(
                f"max_disk_bytes must be >= 1, got {max_disk_bytes}"
            )
        self.directory = directory
        self.max_disk_entries = max_disk_entries
        self.max_disk_bytes = max_disk_bytes
        self._lock = threading.Lock()
        self._memory: dict[str, Any] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    def _path(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, f"{key}.pkl")

    def get(self, key: str, default: Any = None) -> Any:
        """Look up ``key``; counts a hit or a miss either way."""
        value = _MISSING
        with self._lock:
            if key in self._memory:
                value = self._memory[key]
        if value is _MISSING and self.directory is not None:
            try:
                with open(self._path(key), "rb") as fh:
                    value = pickle.load(fh)
            except (OSError, pickle.UnpicklingError, EOFError):
                value = _MISSING
            else:
                with self._lock:
                    self._memory[key] = value
                try:
                    # Refresh mtime so the disk tier's LRU order tracks use.
                    os.utime(self._path(key))
                except OSError:
                    pass
        with self._lock:
            if value is _MISSING:
                self.misses += 1
            else:
                self.hits += 1
        if value is _MISSING:
            telemetry.inc("sched.cache.misses")
            return default
        telemetry.instant("sched.cache.hit", key=key[:16])
        telemetry.inc("sched.cache.hits")
        return value

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._memory[key] = value
        if self.directory is not None:
            # Write-then-rename so a concurrent reader never sees a torn file.
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh)
                os.replace(tmp, self._path(key))
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            if self.max_disk_entries is not None or self.max_disk_bytes is not None:
                self.evict()

    # -- disk-tier maintenance (LRU) -----------------------------------------

    def _disk_entries(self) -> list[tuple[float, int, str]]:
        """(mtime, size, path) for every disk entry; skips vanished files."""
        assert self.directory is not None
        entries = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        for name in names:
            if not name.endswith(".pkl"):
                continue
            path = os.path.join(self.directory, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def disk_stats(self) -> dict[str, int]:
        """Size of the on-disk tier: ``{"entries": n, "bytes": total}``."""
        if self.directory is None:
            return {"entries": 0, "bytes": 0}
        entries = self._disk_entries()
        return {
            "entries": len(entries),
            "bytes": sum(size for _, size, _ in entries),
        }

    def evict(
        self,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ) -> list[str]:
        """Remove least-recently-used disk entries until the caps hold.

        Explicit arguments override the instance caps (the CLI
        maintenance path passes them); with neither, the instance caps
        apply.  Returns the removed keys, oldest first.  Evicted entries
        are also dropped from the memory tier so a stale value cannot
        outlive its disk eviction within this process.
        """
        if self.directory is None:
            return []
        cap_entries = max_entries if max_entries is not None else self.max_disk_entries
        cap_bytes = max_bytes if max_bytes is not None else self.max_disk_bytes
        if cap_entries is None and cap_bytes is None:
            return []
        entries = sorted(self._disk_entries())          # oldest mtime first
        total_bytes = sum(size for _, size, _ in entries)
        removed: list[str] = []
        index = 0
        while index < len(entries) and (
            (cap_entries is not None and len(entries) - index > cap_entries)
            or (cap_bytes is not None and total_bytes > cap_bytes)
        ):
            _mtime, size, path = entries[index]
            index += 1
            try:
                os.unlink(path)
            except OSError:
                continue
            total_bytes -= size
            key = os.path.splitext(os.path.basename(path))[0]
            removed.append(key)
            with self._lock:
                self._memory.pop(key, None)
                self.evictions += 1
        if removed:
            telemetry.inc("sched.cache.evictions", len(removed))
        return removed

    def get_or_compute(self, key_parts: Sequence[Any], compute) -> tuple[Any, bool]:
        """``(value, was_hit)`` for ``fingerprint(*key_parts)``."""
        key = fingerprint(*key_parts)
        value = self.get(key, _MISSING)
        if value is not _MISSING:
            return value, True
        value = compute()
        self.put(key, value)
        return value, False

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._memory),
                "evictions": self.evictions,
            }

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
