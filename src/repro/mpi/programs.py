"""The Getting-Started-with-MPI programs.

Four small programs in the style of CSinParallel's MPI module (the
material the paper plans to adopt) and the mpi4py tutorial:

- :func:`hello_world` — every rank reports "rank N of M";
- :func:`ring_pass` — a token accumulates a visit from every rank around
  a ring (point-to-point, non-trivial ordering);
- :func:`pi_integration` — midpoint-rule estimate of pi with a
  cyclic-distributed loop and an allreduce (the tutorial's cpi.py);
- :func:`parallel_max` — each rank finds a local max, reduce(max) at root.
"""

from __future__ import annotations

from typing import Sequence

from repro.mpi.comm import Communicator, mpi_run

__all__ = ["hello_world", "ring_pass", "pi_integration", "parallel_max"]


def hello_world(n_ranks: int = 4) -> list[str]:
    """Run the SPMD hello program; returns the greetings by rank."""

    def program(comm: Communicator) -> str:
        return f"Hello from rank {comm.rank} of {comm.size}"

    return mpi_run(n_ranks, program)


def ring_pass(n_ranks: int = 4) -> list[int]:
    """Pass a token around a ring; each rank adds its rank number.

    Rank 0 starts the token at 0 and receives it back after a full trip;
    the returned list is the token value each rank observed.  The final
    value equals ``sum(range(n_ranks))``.
    """

    def program(comm: Communicator) -> int:
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        if comm.size == 1:
            return 0
        if comm.rank == 0:
            comm.send(0, dest=right, tag=7)
            token = comm.recv(source=left, tag=7)
            return token
        token = comm.recv(source=left, tag=7)
        token += comm.rank
        comm.send(token, dest=right, tag=7)
        return token

    return mpi_run(n_ranks, program)


def pi_integration(n_ranks: int = 4, n_intervals: int = 10_000) -> float:
    """Estimate pi by midpoint integration of 4/(1+x^2) over [0, 1].

    Work is distributed cyclically (``for i in range(rank, N, size)``),
    exactly as in the mpi4py tutorial's cpi example, and combined with an
    allreduce so every rank returns the same estimate.
    """
    if n_intervals < 1:
        raise ValueError(f"n_intervals must be >= 1, got {n_intervals}")

    def program(comm: Communicator) -> float:
        n = comm.bcast(n_intervals, root=0)
        h = 1.0 / n
        local = 0.0
        for i in range(comm.rank, n, comm.size):
            x = h * (i + 0.5)
            local += 4.0 / (1.0 + x * x)
        return comm.allreduce(local * h, op=lambda a, b: a + b)

    results = mpi_run(n_ranks, program)
    # Every rank holds the same value after the allreduce.
    return results[0]


def parallel_max(values: Sequence[float], n_ranks: int = 4) -> float:
    """Find the maximum of ``values`` with block distribution + reduce(max)."""
    if not values:
        raise ValueError("parallel_max of an empty sequence")

    data = list(values)

    def program(comm: Communicator) -> float:
        if comm.rank == 0:
            n = len(data)
            block = (n + comm.size - 1) // comm.size
            blocks = [data[i * block : (i + 1) * block] for i in range(comm.size)]
        else:
            blocks = None
        mine = comm.scatter(blocks, root=0)
        local = max(mine) if mine else float("-inf")
        result = comm.reduce(local, op=max, root=0)
        return comm.bcast(result, root=0)

    return mpi_run(n_ranks, program)[0]
