"""The ``stencil_sched`` workload: MPI rank programs as executor tasks.

:func:`repro.mpi.stencil.heat_mpi` runs the 1-D heat stencil on its own
simulated communicator with one thread per rank — the last per-runtime
pool in the repo.  :func:`heat_sched` runs the *same* block decomposition
through the shared :class:`~repro.sched.executor.WorkStealingExecutor`
as a bulk-synchronous program: each time step, one task per non-empty
rank applies :func:`repro.kernels.heat_block_step` to its block, reading
its neighbours' previous-step edge cells as ghosts (the halo exchange,
by shared memory instead of ``sendrecv``), and the drain between steps
is the barrier.  The arithmetic — block bounds, ghost values, update
order inside a block — mirrors ``heat_mpi`` exactly, so the result
matches :func:`~repro.mpi.stencil.heat_sequential` float for float.

Tasks are submitted as picklable :class:`~repro.sched.core.Call` objects
(module-level :func:`rank_step`, plain-data arguments), so the workload
also runs under ``mode="mp"``.  Each rank-step task fires the
:data:`FAULT_SITE` injection point (sub-keyed per (step, rank)); the
chaos scenario crashes one rank mid-sweep and injects a transient on
another, and the executor's retry re-runs just those rank programs —
the merged rod must come out byte-identical to the fault-free reference.
"""

from __future__ import annotations

from typing import Sequence

from repro import kernels
from repro import workloads as registry
from repro.faults import hooks as faults
from repro.faults.plan import FaultKind, FaultPlan, FaultRule
from repro.mpi.stencil import heat_sequential

__all__ = ["FAULT_SITE", "heat_sched", "rank_step"]

#: Injection site fired once per (step, rank) task body.
FAULT_SITE = "stencil_sched.rank"


def rank_step(
    block: list[float],
    ghost_left: float | None,
    ghost_right: float | None,
    alpha: float,
    start: int,
    n: int,
    step: int,
    rank: int,
) -> list[float]:
    """One rank's program for one time step (module-level: picklable)."""
    faults.fire(FAULT_SITE, key=f"s{step}r{rank}", step=step, rank=rank)
    return kernels.heat_block_step(block, ghost_left, ghost_right,
                                   alpha, start, n)


def heat_sched(
    u0: Sequence[float],
    alpha: float = 0.25,
    steps: int = 100,
    n_ranks: int = 4,
    executor=None,
) -> list[float]:
    """Heat diffusion with the rank programs dispatched as tasks.

    ``executor`` is any :class:`WorkStealingExecutor`; by default a
    fresh deterministic stepping executor sized one worker per rank.
    One :meth:`~repro.sched.executor.WorkStealingExecutor.map` call per
    time step is the bulk-synchronous barrier: every rank's step ``t``
    completes before any rank reads ghosts for ``t + 1``.
    """
    from repro.sched.core import Call
    from repro.sched.executor import WorkStealingExecutor

    if len(u0) < 3:
        raise ValueError("need at least 3 cells")
    if not 0.0 < alpha <= 0.5:
        raise ValueError(f"alpha must be in (0, 0.5] for stability, got {alpha}")
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")

    data = list(map(float, u0))
    n = len(data)
    base, remainder = divmod(n, n_ranks)
    lengths = [base + (1 if r < remainder else 0) for r in range(n_ranks)]
    starts = [sum(lengths[:r]) for r in range(n_ranks)]
    blocks = [data[starts[r] : starts[r] + lengths[r]] for r in range(n_ranks)]
    live = [r for r in range(n_ranks) if lengths[r] > 0]

    # Nearest non-empty neighbour per rank (ranks > cells leaves empties).
    def nearest(ranks) -> int | None:
        for r in ranks:
            if lengths[r] > 0:
                return r
        return None

    left = {r: nearest(range(r - 1, -1, -1)) for r in live}
    right = {r: nearest(range(r + 1, n_ranks)) for r in live}

    owns_executor = executor is None
    if owns_executor:
        executor = WorkStealingExecutor(n_workers=n_ranks, seed=0)
    try:
        for step in range(steps):
            calls = []
            for r in live:
                gl = blocks[left[r]][-1] if left[r] is not None else None
                gr = blocks[right[r]][0] if right[r] is not None else None
                calls.append(Call(rank_step, blocks[r], gl, gr, alpha,
                                  starts[r], n, step, r))
            updated = executor.map(calls, name=f"stencil.s{step}")
            for r, block in zip(live, updated):
                blocks[r] = block
    finally:
        if owns_executor:
            executor.close()
    return [cell for block in blocks for cell in block]


# -- registry runners ---------------------------------------------------------

#: Problem size for the trace/sched/chaos demonstrations: enough cells
#: and steps for every rank to matter, small enough for CI.
_CELLS = 33
_STEPS = 12


def _rod(seed: int) -> list[float]:
    """A deterministic initial rod: hot left edge, seeded interior bumps."""
    import random

    rng = random.Random(f"stencil_sched:{seed}")
    rod = [round(rng.uniform(0.0, 10.0), 6) for _ in range(_CELLS)]
    rod[0], rod[-1] = 100.0, 50.0
    return rod


def _wl_stencil_sched(executor, workers: int, seed: int) -> tuple[str, list[str]]:
    """The stencil sweep through the caller's deterministic executor."""
    rod = _rod(seed)
    result = heat_sched(rod, alpha=0.25, steps=_STEPS, n_ranks=workers,
                        executor=executor)
    expected = heat_sequential(rod, alpha=0.25, steps=_STEPS)
    lines = [
        f"cells={len(rod)} steps={_STEPS} ranks={workers}",
        f"matches_sequential={result == expected}",
        f"u_mid={result[len(result) // 2]:.6f}",
        f"sum={sum(result):.6f}",
    ]
    summary = (
        f"stencil fan-out: {workers} rank programs x {_STEPS} steps "
        f"as scheduler tasks (drain = barrier)"
    )
    return summary, lines


def _tr_stencil_sched(threads: int) -> str:
    result = heat_sched(_rod(7), alpha=0.25, steps=_STEPS,
                        n_ranks=max(1, threads))
    return (
        f"stencil_sched: {_CELLS} cells x {_STEPS} steps over "
        f"{max(1, threads)} ranks, u_mid={result[len(result) // 2]:.6f}"
    )


def _stencil_sched_plan(seed: int) -> FaultPlan:
    return FaultPlan(name="stencil_sched", seed=seed, rules=(
        # Rank 1 crashes mid-sweep; the executor re-queues the task and
        # the rank program re-runs against the same step-t ghosts.
        FaultRule(FAULT_SITE, FaultKind.CRASH, at=(0,),
                  where={"step": 2, "rank": 1}, note="rank 1 crash at step 2"),
        # A transient on another rank later in the sweep.
        FaultRule(FAULT_SITE, FaultKind.EXCEPTION, at=(0,),
                  where={"step": 7, "rank": 2}, note="rank 2 transient at step 7"),
    ))


def _run_stencil_sched(injector, seed: int, threads: int) -> tuple[int, list[str], bool]:
    from repro.sched.executor import WorkStealingExecutor

    ranks = max(1, threads)
    rod = _rod(seed)
    expected = heat_sequential(rod, alpha=0.25, steps=_STEPS)
    executor = WorkStealingExecutor(n_workers=ranks, seed=seed)
    try:
        result = heat_sched(rod, alpha=0.25, steps=_STEPS, n_ranks=ranks,
                            executor=executor)
        recovered = executor.stats().retries
    finally:
        executor.close()
    identical = result == expected
    detail = [
        f"{ranks} ranks x {_STEPS} steps, 1 crash + 1 transient injected: "
        f"{recovered} executor retry(ies) re-ran the lost rank programs",
        f"final rod byte-identical to sequential reference: {identical}",
    ]
    ok = identical and recovered >= 2
    return recovered, detail, ok


registry.register(
    "stencil_sched",
    description="MPI heat-stencil rank programs as scheduler tasks",
    trace=_tr_stencil_sched,
    sched=_wl_stencil_sched,
    chaos=_run_stencil_sched,
    chaos_plan=_stencil_sched_plan,
)
