"""1-D heat diffusion with halo exchange — the canonical MPI stencil.

The distributed-memory counterpart of the shared-memory loops in
Assignments 3–4, and the program every "getting started with MPI" course
builds next: the rod is block-decomposed across ranks, each step updates
``u[i] = u[i] + alpha * (u[i-1] - 2 u[i] + u[i+1])`` locally, and the
block edges are exchanged with neighbours (the *halo*) before each step
using ``sendrecv`` so the shift never deadlocks.

:func:`heat_sequential` is the reference; :func:`heat_mpi` must match it
exactly (float-for-float, since both apply the same update in the same
order — property-tested).  Both dispatch the cell update through
:mod:`repro.kernels` — slice arithmetic on the ``numpy`` backend, the
original per-cell loop on ``python`` — and the two backends are
themselves bit-identical, so the cross-backend property holds for every
combination.
"""

from __future__ import annotations

from typing import Sequence

from repro import kernels
from repro.mpi.comm import Communicator, mpi_run
from repro.telemetry import instrument as telemetry

__all__ = ["heat_sequential", "heat_mpi"]


def _validate(u0: Sequence[float], alpha: float, steps: int) -> None:
    if len(u0) < 3:
        raise ValueError("need at least 3 cells")
    if not 0.0 < alpha <= 0.5:
        raise ValueError(f"alpha must be in (0, 0.5] for stability, got {alpha}")
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")


def heat_sequential(
    u0: Sequence[float], alpha: float = 0.25, steps: int = 100
) -> list[float]:
    """Explicit heat diffusion with fixed (Dirichlet) boundary cells."""
    _validate(u0, alpha, steps)
    return kernels.heat_steps(list(map(float, u0)), alpha, steps)


def heat_mpi(
    u0: Sequence[float],
    alpha: float = 0.25,
    steps: int = 100,
    n_ranks: int = 4,
    timeout_s: float | None = None,
) -> list[float]:
    """The same diffusion, block-decomposed with halo exchange.

    Each rank owns a contiguous block; before every step it trades its
    edge cells with its neighbours via ``sendrecv`` (ghost cells), then
    updates its interior.  Rank 0 gathers the blocks back at the end.
    ``timeout_s`` bounds every blocking operation (a small value turns a
    lost halo message into a prompt ``MPIError`` instead of a long hang
    — what the ``stencil`` chaos scenario relies on for detection).
    """
    _validate(u0, alpha, steps)
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
    data = list(map(float, u0))
    n = len(data)

    def program(comm: Communicator) -> list[float] | None:
        size, rank = comm.size, comm.rank
        # Block bounds (first `remainder` ranks get one extra cell).
        base, remainder = divmod(n, size)
        lengths = [base + (1 if r < remainder else 0) for r in range(size)]
        start = sum(lengths[:rank])
        block = data[start : start + lengths[rank]]

        # Halo neighbours skip empty blocks (possible when ranks > cells):
        # the neighbour is the nearest rank that actually owns cells.
        def nearest(ranks) -> int | None:
            for r in ranks:
                if lengths[r] > 0:
                    return r
            return None

        left = nearest(range(rank - 1, -1, -1))
        right = nearest(range(rank + 1, size))

        for step in range(steps):
            # Halo exchange.  Two phases of sendrecv (rightward shift then
            # leftward shift); boundary ranks fall back to plain send/recv.
            ghost_left: float | None = None
            ghost_right: float | None = None
            if block:
                with telemetry.span("mpi.halo_exchange", category="halo",
                                    rank=rank, step=step,
                                    left=left, right=right):
                    if left is not None and right is not None:
                        ghost_left = comm.sendrecv(
                            block[-1], dest=right, source=left, sendtag=1, recvtag=1
                        )
                        ghost_right = comm.sendrecv(
                            block[0], dest=left, source=right, sendtag=2, recvtag=2
                        )
                    elif left is not None:       # rightmost non-empty rank
                        comm.send(block[0], dest=left, tag=2)
                        ghost_left = comm.recv(source=left, tag=1)
                    elif right is not None:      # leftmost non-empty rank
                        comm.send(block[-1], dest=right, tag=1)
                        ghost_right = comm.recv(source=right, tag=2)
                telemetry.inc("mpi.halo.exchanges")
                telemetry.inc("mpi.halo.ghost_cells",
                              (left is not None) + (right is not None))

            if block:
                block = kernels.heat_block_step(
                    block, ghost_left, ghost_right, alpha, start, n
                )

        gathered = comm.gather(block, root=0)
        if rank == 0:
            return [cell for chunk in gathered for cell in chunk]
        return None

    results = mpi_run(n_ranks, program, timeout=timeout_s)
    return results[0]
